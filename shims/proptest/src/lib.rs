//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], and the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! inputs via the assertion message but is not minimised), and the case seed
//! is derived deterministically from the test name rather than from an
//! entropy source, so failures always reproduce. The case count defaults to
//! 256 and honours the `PROPTEST_CASES` environment variable.

// The shims stay `unsafe`-free like the product crates (the `crate-header`
// lint rule checks this); the missing-docs policy applies to product crates
// only — shim APIs mirror their upstream crates.
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each `proptest!` test runs (`PROPTEST_CASES`
/// overrides; default 256).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Deterministic per-test RNG, seeded from the test's name.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each produced value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            Self { lo, hi }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The customary glob import, mirroring `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`]`()` random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                // A tuple of strategies is itself a strategy; building it
                // once hoists strategy construction out of the case loop.
                let strategies = ($(($strategy),)*);
                for _case in 0..$crate::cases() {
                    let ($($pat,)*) = $crate::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the property tests import (no shrinking, so this
/// is a plain assertion).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// `assert_eq!` under a name the property tests import.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u8..2, 1u32..5),
            v in collection::vec(0u64..100, 2..6),
        ) {
            prop_assert!(a < 2);
            prop_assert!((1..5).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn flat_map_threads_dependent_sizes() {
        let strategy = (2usize..6)
            .prop_flat_map(|n| (collection::vec(0u32..10, n..=n), 0..n))
            .prop_map(|(v, i)| (v.len(), i));
        let mut rng = crate::test_rng("flat_map");
        for _ in 0..200 {
            let (len, i) = crate::Strategy::generate(&strategy, &mut rng);
            assert!((2..6).contains(&len));
            assert!(i < len);
        }
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = crate::test_rng("just");
        assert_eq!(crate::Strategy::generate(&Just(7), &mut rng), 7);
    }
}
