//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronisation primitives behind `parking_lot`'s
//! poison-free API: `lock()`/`read()`/`write()` return guards directly and
//! `into_inner()` returns the value directly. Poisoned std locks are
//! recovered transparently, matching `parking_lot`'s no-poisoning semantics.
//! Swapping back to the real crate is a manifest-only change.

// The shims stay `unsafe`-free like the product crates (the `crate-header`
// lint rule checks this); the missing-docs policy applies to product crates
// only — shim APIs mirror their upstream crates.
#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Re-export of the std guard type; `parking_lot`'s guard has the same
/// deref-based interface.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers–writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
