//! Offline stand-in for `serde`.
//!
//! Provides the two trait names the workspace imports (`Serialize`,
//! `Deserialize`) and re-exports the no-op derives from the `serde_derive`
//! shim under the same names, exactly as the real facade crate does. Blanket
//! impls make every type satisfy the traits so downstream bounds hold.
//!
//! The workspace only ever *derives* these traits (its on-disk formats are a
//! hand-rolled CSV codec in `consume-local-trace`), so no serialisation
//! machinery is needed. Replacing this shim with the real serde is a
//! manifest-only change.

// The shims stay `unsafe`-free like the product crates (the `crate-header`
// lint rule checks this); the missing-docs policy applies to product crates
// only — shim APIs mirror their upstream crates.
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
