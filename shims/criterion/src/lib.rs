//! Offline stand-in for `criterion`.
//!
//! Reproduces the subset of the criterion API the workspace benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `sample_size` and [`black_box`] — over a
//! deliberately small wall-clock harness: each benchmark runs its closure
//! `sample_size` times and reports the mean iteration time. No warm-up,
//! outlier analysis or HTML reports. Swapping back to the real criterion is
//! a manifest-only change.

// The shims stay `unsafe`-free like the product crates (the `crate-header`
// lint rule checks this); the missing-docs policy applies to product crates
// only — shim APIs mirror their upstream crates.
#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque value barrier; defeats constant-folding of benchmark inputs.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver: collects named benchmarks and times them.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs (builder form,
    /// used from `criterion_group!`'s `config = ...`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            total_nanos: 0.0,
        };
        f(&mut b);
        report(&id.into(), &b);
        self
    }

    /// Opens a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total_nanos: f64,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations and records the
    /// elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos() as f64;
    }
}

/// A group of benchmarks with its own sample size, mirroring criterion's
/// `BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    // Held only so the group borrows the driver for its lifetime, as the
    // real criterion's group does.
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's iteration count (scoped to the group, like the real
    /// criterion — it does not leak into the parent driver).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            iters: self.sample_size as u64,
            total_nanos: 0.0,
        };
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn report(id: &str, b: &Bencher) {
    let per_iter = b.total_nanos / b.iters.max(1) as f64;
    let (value, unit) = if per_iter >= 1e9 {
        (per_iter / 1e9, "s")
    } else if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "µs")
    } else {
        (per_iter, "ns")
    };
    println!(
        "bench {id:<48} {value:>10.3} {unit}/iter ({} iters)",
        b.iters
    );
}

/// Declares a benchmark group function, in either the positional or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut runs = 0usize;
        let mut c = Criterion::default().sample_size(7);
        c.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 7);
    }

    #[test]
    fn group_config_is_scoped_to_the_group() {
        let mut c = Criterion::default().sample_size(3);
        let mut group_runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2)
                .bench_function("inner", |b| b.iter(|| group_runs += 1));
            g.finish();
        }
        assert_eq!(group_runs, 2);
        // The group's sample size must not leak into the parent driver.
        let mut later_runs = 0usize;
        c.bench_function("after", |b| b.iter(|| later_runs += 1));
        assert_eq!(later_runs, 3);
    }
}
