//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! but never serialises anything through serde at runtime (trace I/O is a
//! hand-rolled CSV codec). This proc-macro crate lets those derives compile
//! without network access to crates.io: each derive parses nothing and emits
//! an empty token stream, leaving the marker-trait blanket impls in the
//! sibling `serde` shim to satisfy any `T: Serialize` bounds.
//!
//! Swapping the workspace back to the real serde is a manifest-only change;
//! no source file names this crate directly.

// The shims stay `unsafe`-free like the product crates (the `crate-header`
// lint rule checks this); the missing-docs policy applies to product crates
// only — shim APIs mirror their upstream crates.
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and any `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and any `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
