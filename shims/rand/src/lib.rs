//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! Implements [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`] and [`seq::SliceRandom`] (`shuffle`)
//! on top of a xoshiro256++ generator seeded through splitmix64 — the
//! standard seeding recipe, giving high-quality, reproducible streams.
//!
//! Draw values differ from the real `rand::rngs::StdRng` (which is
//! ChaCha12-based); the workspace only relies on determinism and statistical
//! quality, never on specific draw values, so the two are interchangeable
//! here. Swapping back to the real crate is a manifest-only change.

// The shims stay `unsafe`-free like the product crates (the `crate-header`
// lint rule checks this); the missing-docs policy applies to product crates
// only — shim APIs mirror their upstream crates.
#![forbid(unsafe_code)]

/// A source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Typed sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's full range (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, B: UniformRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0` (as the real `rand` does), so invalid
    /// probabilities surface instead of silently skewing draws.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is outside [0.0, 1.0]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their natural domain (`rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi]` (both ends included).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws uniformly from `[lo, hi)` (upper bound excluded).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Multiply-shift bounded sampling; the bias over a u64 draw
                // is at most span/2^64, far below anything observable.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_inclusive(rng, lo, hi - 1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let v = float_affine(lo, hi, $t::sample_standard(rng));
                // Guard against rounding past the upper bound.
                if v > hi {
                    hi
                } else {
                    v
                }
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // The unit draw is < 1, so the affine map stays below hi in
                // exact arithmetic; only rounding can land on hi. Step down
                // to the previous representable value in that case so `a..b`
                // never yields its excluded bound (matching the real rand).
                let v = float_affine(lo, hi, $t::sample_standard(rng));
                if v >= hi {
                    prev_down(hi, lo)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Maps a unit draw `u ∈ [0, 1)` affinely onto `[lo, hi)`, staying finite
/// even when `hi - lo` overflows to infinity (e.g. `-MAX..=MAX`): the wide
/// case is computed around the midpoint with halved scale.
fn float_affine<T: Float>(lo: T, hi: T, u: T) -> T {
    let span = hi - lo;
    if span.is_finite() {
        lo + span * u
    } else {
        let mid = lo.half() + hi.half();
        let half_span = hi.half() - lo.half();
        mid + half_span * u.two_u_minus_one()
    }
}

/// The largest representable value below `hi` (but never below `lo`).
fn prev_down<T: Float>(hi: T, lo: T) -> T {
    let stepped = hi.next_toward_neg_infinity();
    if stepped < lo {
        lo
    } else {
        stepped
    }
}

/// Float helpers for range sampling (`f64::next_down` needs a newer
/// toolchain than this workspace's pinned `rust-version`, so the bit-step is
/// hand-rolled).
trait Float:
    Copy
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
{
    fn next_toward_neg_infinity(self) -> Self;
    fn is_finite(self) -> bool;
    fn half(self) -> Self;
    /// `2·self − 1`, mapping a unit draw onto `[-1, 1)`.
    fn two_u_minus_one(self) -> Self;
}

impl Float for f64 {
    fn next_toward_neg_infinity(self) -> Self {
        if self == 0.0 {
            // Both zeros step to the smallest-magnitude negative value.
            return f64::from_bits(0x8000_0000_0000_0001);
        }
        let bits = self.to_bits();
        let next = if self > 0.0 { bits - 1 } else { bits + 1 };
        f64::from_bits(next)
    }

    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    fn half(self) -> Self {
        self * 0.5
    }

    fn two_u_minus_one(self) -> Self {
        2.0 * self - 1.0
    }
}

impl Float for f32 {
    fn next_toward_neg_infinity(self) -> Self {
        if self == 0.0 {
            return f32::from_bits(0x8000_0001);
        }
        let bits = self.to_bits();
        let next = if self > 0.0 { bits - 1 } else { bits + 1 };
        f32::from_bits(next)
    }

    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    fn half(self) -> Self {
        self * 0.5
    }

    fn two_u_minus_one(self) -> Self {
        2.0 * self - 1.0
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait UniformRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> UniformRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> UniformRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

pub mod rngs {
    //! Concrete generators.

    /// A deterministic, seedable generator (xoshiro256++).
    ///
    /// Mirrors `rand::rngs::StdRng`'s role: fast, high-quality and
    /// reproducible from a seed. The draw stream differs from the real
    /// ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with splitmix64, the reference seeding scheme
            // for the xoshiro family.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use crate::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_and_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never fixes all points"
        );
    }

    #[test]
    fn exclusive_float_ranges_never_yield_their_upper_bound() {
        let mut rng = StdRng::seed_from_u64(6);
        // A range whose width equals the ulp of its bounds: naive rounding
        // of lo + (hi-lo)·u lands on hi roughly half the time.
        let lo = 1.0e16f64;
        let hi = lo + 2.0;
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "draw {v} escaped [{lo}, {hi})");
        }
        // One-ulp-wide range: the only value strictly below hi is lo.
        let hi1 = f64::from_bits(lo.to_bits() + 1);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(lo..hi1), lo);
        }
    }

    #[test]
    fn overflow_wide_float_ranges_stay_finite_and_uniform() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut below_zero = 0usize;
        for _ in 0..10_000 {
            let v = rng.gen_range(-f64::MAX..=f64::MAX);
            assert!(v.is_finite(), "draw {v} is not finite");
            if v < 0.0 {
                below_zero += 1;
            }
        }
        // Roughly half the mass on each side of zero.
        assert!(
            (4_000..=6_000).contains(&below_zero),
            "below zero: {below_zero}"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0.0, 1.0]")]
    fn gen_bool_rejects_invalid_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
