//! Property tests: the columnar [`SessionStore`] must be a lossless,
//! canonically ordered transposition of row-record sessions — whatever the
//! records look like.

use proptest::prelude::*;

use consume_local::topology::{ExchangeId, IspId, PopId, UserLocation};
use consume_local::trace::device::DeviceClass;
use consume_local::trace::{ContentId, SessionRecord, SessionStore, SimTime, UserId};

const HORIZON: u64 = 30 * 86_400;
const USERS: usize = 500;

/// A fully ordered key over *every* record field, so permutation equality
/// can be checked without relying on tie order.
#[allow(clippy::type_complexity)]
fn full_key(s: &SessionRecord) -> (u64, u32, u32, u32, u32, u8, u32, u32) {
    (
        s.start.as_secs(),
        s.user.0,
        s.content.0,
        s.duration_secs,
        s.bitrate_bps(),
        s.isp.0,
        s.location.exchange().0,
        s.location.pop().0,
    )
}

fn record(
    (start, user, content, duration, device, isp, exchange): (u64, u32, u32, u32, usize, u8, u32),
) -> SessionRecord {
    SessionRecord {
        user: UserId(user),
        content: ContentId(content),
        start: SimTime(start),
        duration_secs: duration,
        device: DeviceClass::MIX[device].0,
        isp: IspId(isp),
        location: UserLocation::from_raw_parts(ExchangeId(exchange), PopId(exchange / 4)),
    }
}

fn records_strategy() -> impl Strategy<Value = Vec<SessionRecord>> {
    proptest::collection::vec(
        (
            0..HORIZON,
            0..USERS as u32,
            0u32..40,
            60u32..7_200,
            0usize..DeviceClass::MIX.len(),
            0u8..5,
            0u32..24,
        )
            .prop_map(record),
        0..200,
    )
}

proptest! {
    #[test]
    fn store_round_trips_records_losslessly(records in records_strategy()) {
        let store = SessionStore::from_records(&records, HORIZON, USERS);
        prop_assert_eq!(store.len(), records.len());
        let out = store.to_records();

        // Lossless: the round trip is a permutation of the input.
        let mut input_sorted = records.clone();
        input_sorted.sort_by_key(full_key);
        let mut out_sorted = out.clone();
        out_sorted.sort_by_key(full_key);
        prop_assert_eq!(&input_sorted, &out_sorted);

        // Canonical: output is ordered by (start, user, content).
        let canon = |s: &SessionRecord| (s.start.as_secs(), s.user.0, s.content.0);
        prop_assert!(out.windows(2).all(|w| canon(&w[0]) <= canon(&w[1])));

        // Idempotent: columnarising the round-tripped rows reproduces the
        // store bit for bit.
        prop_assert_eq!(&SessionStore::from_records(&out, HORIZON, USERS), &store);
    }

    #[test]
    fn store_columns_agree_with_records(records in records_strategy(), probe in 0..2 * HORIZON) {
        let store = SessionStore::from_records(&records, HORIZON, USERS);
        for i in 0..store.len() {
            let r = store.record(i);
            prop_assert_eq!(store.start_secs()[i], r.start.as_secs());
            prop_assert_eq!(store.duration_secs()[i], r.duration_secs);
            prop_assert_eq!(store.user()[i], r.user.0);
            prop_assert_eq!(store.content()[i], r.content.0);
            prop_assert_eq!(store.isp()[i], r.isp);
            prop_assert_eq!(store.location()[i], r.location);
            prop_assert_eq!(store.end_secs(i), r.end().as_secs());
            prop_assert_eq!(store.bitrate_bps(i), r.bitrate_bps());
        }

        // The per-start-window cursor index agrees with a full binary search.
        let expect = store.start_secs().partition_point(|&s| s < probe);
        prop_assert_eq!(store.first_at_or_after(probe), expect);
    }
}
