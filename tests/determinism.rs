//! Determinism suite: the trace generator, the simulation engine and the
//! sweep runner must produce bit-identical results regardless of how many
//! worker threads the work is sharded across, and identical sweep JSON
//! across repeated runs with a fixed seed.

use consume_local::prelude::*;
use consume_local::sweep::{SweepConfig, SweepGrid, SweepRunner};
use consume_local::trace::SessionStore;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn shared_trace() -> Trace {
    TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0005).unwrap(), 99)
        .generate()
        .unwrap()
}

#[test]
fn parallel_trace_generation_bit_identical_to_serial() {
    let config = TraceConfig::london_sep2013().scaled(0.0005).unwrap();
    let reference = TraceGenerator::new(config.clone(), 99).generate().unwrap();
    assert!(!reference.sessions().is_empty());
    for &workers in &THREAD_COUNTS[1..] {
        let parallel = TraceGenerator::new(config.clone(), 99)
            .workers(workers)
            .generate()
            .unwrap();
        assert_eq!(
            reference.sessions(),
            parallel.sessions(),
            "trace must not depend on {workers} generation workers"
        );
        assert_eq!(reference.catalogue(), parallel.catalogue());
        assert_eq!(reference.population(), parallel.population());
    }
}

#[test]
fn parallel_merge_bit_identical_on_small_preset() {
    // The merge phase (hour-bucketed scatter + per-bucket sorts) fans its
    // bucket sorts across workers: the small preset at every worker count
    // must reproduce the serial trace byte for byte — both through the
    // public merge entry point and through the full generator.
    use consume_local::trace::{merge_session_batches, SessionRecord};

    let config = ScalePreset::Small.apply(TraceConfig::london_sep2013());
    let reference = TraceGenerator::new(config.clone(), 2018)
        .generate()
        .unwrap();
    assert!(!reference.sessions().is_empty());

    let mut per_item: Vec<Vec<SessionRecord>> = vec![Vec::new(); reference.catalogue().len()];
    for s in reference.sessions() {
        per_item[s.content.0 as usize].push(*s);
    }
    for &workers in &THREAD_COUNTS {
        assert_eq!(
            merge_session_batches(&per_item, workers).as_slice(),
            reference.sessions(),
            "merge must not depend on {workers} workers"
        );
        let generated = TraceGenerator::new(config.clone(), 2018)
            .workers(workers)
            .generate()
            .unwrap();
        assert_eq!(
            generated.sessions(),
            reference.sessions(),
            "generated trace must not depend on {workers} workers"
        );
    }
}

#[test]
fn engine_on_shared_store_matches_per_run_columnarisation() {
    let trace = shared_trace();
    let store = SessionStore::from_trace(&trace);
    let sim = Simulator::new(SimConfig::default());
    let from_trace = sim.simulate(&trace);
    let from_store = sim.simulate(&store);
    assert_eq!(from_trace, from_store);
}

#[test]
fn simulator_reports_bit_identical_across_thread_counts() {
    let trace = shared_trace();
    for matcher in [MatcherKind::Hierarchical, MatcherKind::Random] {
        let reference = Simulator::new(SimConfig {
            threads: THREAD_COUNTS[0],
            matcher,
            ..Default::default()
        })
        .simulate(&trace);
        reference.check_conservation().unwrap();
        assert!(reference.total.demand_bytes > 0);
        for threads in &THREAD_COUNTS[1..] {
            let report = Simulator::new(SimConfig {
                threads: *threads,
                matcher,
                ..Default::default()
            })
            .simulate(&trace);
            assert_eq!(
                reference, report,
                "{matcher:?} report must not depend on thread count {threads}"
            );
        }
    }
}

#[test]
fn sweep_runner_identical_across_worker_counts() {
    let run_with = |workers: usize| {
        SweepRunner::new(SweepConfig {
            grid: SweepGrid::ci_quick(),
            seed: 77,
            workers,
            sim_threads: 1,
            trace_workers: Some(workers),
            segmented: false,
            spill: true,
        })
        .unwrap()
        .run()
    };
    let reference = run_with(THREAD_COUNTS[0]);
    let reference_json = reference.to_json_deterministic().render();
    for &workers in &THREAD_COUNTS[1..] {
        let report = run_with(workers);
        // Whole outcomes match except wall-times, which are measurements.
        for (a, b) in reference.outcomes.iter().zip(&report.outcomes) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.demand_bytes, b.demand_bytes);
            assert_eq!(a.peer_bytes_by_layer, b.peer_bytes_by_layer);
            assert_eq!(a.server_bytes, b.server_bytes);
            assert_eq!(a.savings_valancius, b.savings_valancius);
            assert_eq!(a.savings_baliga, b.savings_baliga);
        }
        assert_eq!(
            reference_json,
            report.to_json_deterministic().render(),
            "sweep JSON must not depend on worker count {workers}"
        );
    }
}

#[test]
fn sweep_json_byte_identical_across_runs_with_fixed_seed() {
    let run = || {
        SweepRunner::new(SweepConfig {
            grid: SweepGrid::ci_quick(),
            seed: 2018,
            workers: 4,
            sim_threads: 2,
            trace_workers: None,
            segmented: false,
            spill: true,
        })
        .unwrap()
        .run()
        .to_json_deterministic()
        .render()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(first.contains("consume-local/sweep-v1"));
}

#[test]
fn sim_threads_inside_sweep_do_not_change_results() {
    let run_with = |sim_threads: usize| {
        SweepRunner::new(SweepConfig {
            grid: SweepGrid::paper_point(),
            seed: 5,
            workers: 2,
            sim_threads,
            trace_workers: None,
            segmented: false,
            spill: true,
        })
        .unwrap()
        .run()
        .to_json_deterministic()
        .render()
    };
    assert_eq!(run_with(1), run_with(8));
}

#[test]
fn segmented_trace_generation_bit_identical_to_monolithic() {
    // The segmented emitter draws from the same persistent per-item
    // streams as the monolithic day loop, so the concatenated segments
    // must be byte-identical to the generated trace — at every worker
    // count.
    let config = TraceConfig::london_sep2013().scaled(0.0005).unwrap();
    let reference = TraceGenerator::new(config.clone(), 99).generate().unwrap();
    for &workers in &THREAD_COUNTS {
        let segmented = TraceGenerator::new(config.clone(), 99)
            .workers(workers)
            .generate_segmented()
            .unwrap();
        assert_eq!(
            segmented.to_records().as_slice(),
            reference.sessions(),
            "segmented emit must not depend on {workers} workers"
        );
    }
}

#[test]
fn segmented_engine_bit_identical_across_thread_counts_and_to_monolithic() {
    use consume_local::trace::SegmentedStore;

    let trace = shared_trace();
    let store = SessionStore::from_trace(&trace);
    let segmented = SegmentedStore::from_trace(&trace);
    for matcher in [MatcherKind::Hierarchical, MatcherKind::Random] {
        let reference = Simulator::new(SimConfig {
            threads: THREAD_COUNTS[0],
            matcher,
            ..Default::default()
        })
        .simulate(&store);
        for &threads in &THREAD_COUNTS {
            let report = Simulator::new(SimConfig {
                threads,
                matcher,
                ..Default::default()
            })
            .simulate(&segmented);
            assert_eq!(
                reference, report,
                "{matcher:?} segmented report must match monolithic at {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_user_scatter_bit_identical_across_thread_counts() {
    // The engine-side merge fans the per-user traffic scatter over
    // disjoint user-id ranges (`parallel_map_slices`); the per-user
    // vectors — and with them the whole report — must be byte-identical at
    // 1/2/8 workers. (`SimConfig::threads` drives the scatter width, so
    // this pins the scatter specifically via the users vector.)
    let trace = shared_trace();
    let store = SessionStore::from_trace(&trace);
    let reference = Simulator::new(SimConfig {
        threads: THREAD_COUNTS[0],
        ..Default::default()
    })
    .simulate(&store);
    assert!(reference.users.iter().any(|u| u.uploaded_bytes > 0));
    for &threads in &THREAD_COUNTS[1..] {
        let report = Simulator::new(SimConfig {
            threads,
            ..Default::default()
        })
        .simulate(&store);
        assert_eq!(
            reference.users, report.users,
            "user scatter must not depend on {threads} workers"
        );
        assert_eq!(reference, report);
    }
}

#[test]
fn segmented_sweep_mode_identical_across_worker_counts_and_modes() {
    let run_with = |workers: usize, segmented: bool| {
        SweepRunner::new(SweepConfig {
            grid: SweepGrid::ci_quick(),
            seed: 77,
            workers,
            sim_threads: 1,
            trace_workers: Some(workers),
            segmented,
            spill: true,
        })
        .unwrap()
        .run()
        .to_json_deterministic()
        .render()
    };
    let reference = run_with(THREAD_COUNTS[0], false);
    for &workers in &THREAD_COUNTS {
        assert_eq!(
            reference,
            run_with(workers, true),
            "segmented sweep must match the shared-store sweep at {workers} workers"
        );
    }
}

/// A scaled config with every churn feature on: fragmentation, rejoins and
/// a flash-crowd day. Used to pin worker-count and path identity *with*
/// the fault-injection layer active.
fn churned_config() -> TraceConfig {
    use consume_local::trace::{ChurnConfig, FlashCrowd};
    let mut config = TraceConfig::london_sep2013().scaled(0.0005).unwrap();
    config.churn = ChurnConfig {
        departure_rate_per_hour: 2.0,
        rejoin_probability: 0.6,
        mean_rejoin_delay_secs: 900.0,
        flash_crowds: vec![FlashCrowd {
            day: 10,
            multiplier: 2.5,
        }],
    };
    config
}

#[test]
fn churned_trace_bit_identical_across_workers_and_paths() {
    let config = churned_config();
    let reference = TraceGenerator::new(config.clone(), 99).generate().unwrap();
    assert!(!reference.sessions().is_empty());
    // Fragmentation actually happened: more records than the churn-off run.
    let baseline = shared_trace();
    assert!(reference.sessions().len() > baseline.sessions().len());
    for &workers in &THREAD_COUNTS {
        let parallel = TraceGenerator::new(config.clone(), 99)
            .workers(workers)
            .generate()
            .unwrap();
        assert_eq!(
            reference.sessions(),
            parallel.sessions(),
            "churned trace must not depend on {workers} workers"
        );
        let segmented = TraceGenerator::new(config.clone(), 99)
            .workers(workers)
            .generate_segmented()
            .unwrap();
        assert_eq!(
            segmented.to_records().as_slice(),
            reference.sessions(),
            "churned segmented emit must match monolithic at {workers} workers"
        );
    }
}

#[test]
fn churned_engine_bit_identical_across_threads_segments_and_online() {
    use consume_local::sim::online::{replay, ReplayConfig};
    use consume_local::trace::SegmentedStore;

    let trace = TraceGenerator::new(churned_config(), 99)
        .generate()
        .unwrap();
    let store = SessionStore::from_trace(&trace);
    let segmented = SegmentedStore::from_trace(&trace);
    let config = SimConfig {
        cooperation_rate: 0.7,
        ..Default::default()
    };
    let reference = Simulator::new(SimConfig {
        threads: THREAD_COUNTS[0],
        ..config.clone()
    })
    .simulate(&store);
    reference.check_conservation().unwrap();
    // Defection actually bit: the degradation metrics are live.
    assert!(reference.degradation.failed_transfer_bytes > 0);
    assert!(reference.offload_loss().unwrap() > 0.0);
    for &threads in &THREAD_COUNTS {
        let sim = Simulator::new(SimConfig {
            threads,
            ..config.clone()
        });
        assert_eq!(
            reference,
            sim.simulate(&store),
            "churned report must not depend on {threads} threads"
        );
        assert_eq!(
            reference,
            sim.simulate(&segmented),
            "churned segmented report must match monolithic at {threads} threads"
        );
    }
    // The live online path sees the same sessions and must agree too.
    let sim = Simulator::new(config);
    let (online_report, stats) = replay(&sim, &store, &ReplayConfig::default());
    assert_eq!(reference, online_report);
    assert_eq!(stats.events, store.len() as u64);
}

/// FNV-1a 64-bit over `bytes` — a stable, toolchain-independent digest for
/// the seed-report byte-identity pins below.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of every session record of a trace, in order.
fn digest_sessions(trace: &Trace) -> u64 {
    use std::fmt::Write;
    let mut s = String::new();
    for r in trace.sessions() {
        write!(s, "{r:?};").unwrap();
    }
    fnv1a(s.as_bytes())
}

/// Digest of the fields a [`SimReport`] carried before the churn layer was
/// added. Deliberately enumerates fields instead of using the struct's
/// `Debug` output so that *adding* report fields (degradation metrics)
/// cannot disturb the pin — only changes to pre-existing numbers can.
fn digest_report_seed_fields(report: &SimReport) -> u64 {
    use std::fmt::Write;
    let mut t = String::new();
    write!(t, "{}|{}|", report.horizon_secs, report.window_secs).unwrap();
    for sw in &report.swarms {
        write!(
            t,
            "{};{:?};{};{:?};{:?};{:?};",
            sw.key, sw.ledger, sw.sessions, sw.capacity, sw.time_avg_capacity, sw.upload_ratio
        )
        .unwrap();
        for d in &sw.daily {
            write!(t, "{},{:?},{};", d.day, d.capacity, d.demand_bytes).unwrap();
        }
    }
    for u in &report.users {
        write!(t, "{}.{};", u.watched_bytes, u.uploaded_bytes).unwrap();
    }
    for c in &report.daily {
        write!(t, "{}|{:?}|{:?};", c.day, c.isp, c.ledger).unwrap();
    }
    write!(t, "{:?}|{:?}", report.total, report.warnings).unwrap();
    fnv1a(t.as_bytes())
}

/// Digests captured from the tree immediately before the churn layer
/// landed. With `ChurnConfig::default()` (churn disabled) both the trace
/// and the default-config report must stay byte-identical to the seed.
const SEED_TRACE_DIGEST: u64 = 0x3db6_4181_f164_412b;
const SEED_REPORT_DIGEST: u64 = 0x1389_1be1_d42e_37d0;

#[test]
fn churn_off_trace_and_report_match_seed_pin() {
    let trace = shared_trace();
    assert_eq!(
        digest_sessions(&trace),
        SEED_TRACE_DIGEST,
        "churn-off trace drifted from the pre-churn seed"
    );
    let store = SessionStore::from_trace(&trace);
    let report = Simulator::new(SimConfig::default()).simulate(&store);
    assert_eq!(
        digest_report_seed_fields(&report),
        SEED_REPORT_DIGEST,
        "churn-off report drifted from the pre-churn seed"
    );
}

/// Digests captured from the tree immediately before the metro-scale
/// changes (sort-key re-pack, swarm-state spill, sharding) landed: the
/// Medium-preset trace (seed 2018, 8 generation workers) and its
/// default-policy report (8 threads) must stay byte-identical through them.
const MEDIUM_TRACE_DIGEST: u64 = 0xa606_17ee_7689_9716;
const MEDIUM_REPORT_DIGEST: u64 = 0x0267_b6ff_ac7e_632b;

#[test]
fn medium_trace_and_report_match_pre_metro_pin() {
    let config = ScalePreset::Medium.apply(TraceConfig::london_sep2013());
    let trace = TraceGenerator::new(config, 2018)
        .workers(8)
        .generate()
        .unwrap();
    assert_eq!(trace.sessions().len(), 117_705);
    assert_eq!(
        digest_sessions(&trace),
        MEDIUM_TRACE_DIGEST,
        "medium trace drifted from the pre-metro pin"
    );
    let store = SessionStore::from_trace(&trace);
    let report = Simulator::new(SimConfig {
        threads: 8,
        ..Default::default()
    })
    .simulate(&store);
    assert_eq!(
        digest_report_seed_fields(&report),
        MEDIUM_REPORT_DIGEST,
        "medium report drifted from the pre-metro pin"
    );
}

#[test]
fn metro_sharded_runs_byte_identical_to_union_at_every_thread_count() {
    use consume_local::trace::metro::{MetroConfig, MetroTrace};

    let metro = MetroTrace::new(
        MetroConfig::five_city()
            .with_cities(3)
            .city_scaled(0.0005)
            .unwrap(),
        2018,
    )
    .unwrap();
    let reference = Simulator::new(SimConfig {
        threads: THREAD_COUNTS[0],
        ..Default::default()
    })
    .simulate(&mut metro.stream().unwrap());
    reference.check_conservation().unwrap();
    assert!(reference.warnings.is_empty(), "metro presets must not warn");
    for &threads in &THREAD_COUNTS {
        let sim = Simulator::new(SimConfig {
            threads,
            ..Default::default()
        });
        assert_eq!(
            reference,
            sim.simulate(&mut metro.stream().unwrap()),
            "metro union run must not depend on {threads} threads"
        );
        let sharded = sim
            .simulate_sharded(metro.shard_streams().unwrap().iter_mut().map(|s| &mut *s))
            .unwrap();
        assert_eq!(
            reference, sharded,
            "sharded metro run must match the union at {threads} threads"
        );
    }
}

#[test]
fn spill_toggle_byte_identical_at_every_thread_count() {
    let trace = shared_trace();
    let store = SessionStore::from_trace(&trace);
    let segmented = SegmentedStore::from_trace(&trace);
    let reference = Simulator::new(SimConfig {
        threads: THREAD_COUNTS[0],
        spill: false,
        ..Default::default()
    })
    .simulate(&store);
    reference.check_conservation().unwrap();
    for &threads in &THREAD_COUNTS {
        for spill in [false, true] {
            let sim = Simulator::new(SimConfig {
                threads,
                spill,
                ..Default::default()
            });
            assert_eq!(
                reference,
                sim.simulate(&store),
                "spill={spill} must not change the report at {threads} threads"
            );
            assert_eq!(
                reference,
                sim.simulate(&segmented),
                "spill={spill} segmented run must match at {threads} threads"
            );
        }
    }
}

#[test]
fn ten_million_user_shapes_stay_on_the_fast_path() {
    use consume_local::topology::ExchangeId;
    use consume_local::trace::device::DeviceClass;
    use consume_local::trace::generator::{
        merge_session_batches, merge_session_batches_wide, sort_key_fallback_required,
    };
    use consume_local::trace::metro::MetroConfig;
    use consume_local::trace::session::SessionRecord;
    use consume_local::trace::time::SimTime;
    use consume_local::trace::{ContentId, UserId};

    // The 10 M-user preset's measured maxima fit the compact 64-bit key:
    // the wide record-sort fallback is retired for this shape.
    let metro = MetroConfig::ten_million();
    assert!(metro.users() > 10_000_000);
    let (max_start, max_user, max_content) = metro.sort_key_maxima();
    assert!(!sort_key_fallback_required((
        max_start,
        max_user,
        max_content
    )));

    // Doctored sessions pinned at the preset maxima: the compact merge and
    // the forced-wide legacy path must agree byte for byte, and the engine
    // must emit no SortKeyFallback warning.
    let topology = IspTopology::london_table3().unwrap();
    let rec = |start: u64, user: u32, content: u32| SessionRecord {
        user: UserId(user),
        content: ContentId(content),
        start: SimTime(start),
        duration_secs: 60,
        device: DeviceClass::Desktop,
        isp: IspId(0),
        location: topology.location_of(ExchangeId(0)),
    };
    let records = vec![
        rec(max_start, max_user, max_content),
        rec(max_start, 0, 1),
        rec(0, max_user, 0),
        rec(0, 1, max_content),
        rec(12_345, 10_000_001, 7),
        rec(12_345, 10_000_001, 3),
    ];
    let (a, b) = records.split_at(records.len() / 2);
    let batches = [a.to_vec(), b.to_vec()];
    for &workers in &THREAD_COUNTS {
        let merged = merge_session_batches(&batches, workers);
        assert_eq!(
            merge_session_batches_wide(&batches, workers),
            merged,
            "forced-wide sort must match the compact path at {workers} workers"
        );
    }
    let store = SessionStore::from_records(&records, max_start + 1, max_user as usize + 1);
    let report = Simulator::new(SimConfig::default()).simulate(&store);
    assert!(
        report.warnings.is_empty(),
        "10 M-user shape must not warn: {:?}",
        report.warnings
    );
}
