//! Tiny end-to-end smoke test: the full trace → simulation → report →
//! energy/carbon pipeline at ~100 users, so `cargo test -q` exercises the
//! whole `Experiment` orchestration path and not only the per-crate units
//! (the larger-scale runs live in `pipeline.rs` and the benches).

use consume_local::carbon::CreditReport;
use consume_local::prelude::*;

/// ~100 users: 0.00003 × the 3.6 M-user September-2013 London population.
const SMOKE_SCALE: f64 = 0.00003;

#[test]
fn experiment_runs_end_to_end_at_tiny_scale() {
    let exp = Experiment::builder()
        .scale(SMOKE_SCALE)
        .seed(2018)
        .build()
        .expect("tiny smoke config is valid");

    // The generated world is the expected size.
    let users = exp.trace().population().len();
    assert!(
        (80..=140).contains(&users),
        "expected ~108 users at scale {SMOKE_SCALE}, got {users}"
    );
    assert!(
        !exp.trace().sessions().is_empty(),
        "smoke trace must contain sessions"
    );

    // The simulation accounted every byte.
    let report = exp.report();
    report
        .check_conservation()
        .expect("bytes conserve at smoke scale");
    assert!(report.total.demand_bytes > 0);

    // Both published energy models price the run to a sane savings share.
    for params in EnergyParams::published() {
        let savings = report.total_savings(&params).expect("demand is non-zero");
        assert!(
            (0.0..1.0).contains(&savings),
            "savings {savings} out of range for {}",
            params.name()
        );
    }

    // Per-user carbon statements cover exactly the active population.
    let params = EnergyParams::valancius();
    let credits = CreditReport::from_traffic(
        report
            .active_users()
            .map(|(_, t)| (t.watched_bytes, t.uploaded_bytes)),
        &params,
    );
    assert_eq!(credits.users(), report.active_users().count() as u64);
    assert_eq!(
        credits.users(),
        credits.carbon_positive() + credits.carbon_neutral() + credits.carbon_negative()
    );
}

#[test]
fn smoke_experiment_is_deterministic_and_reconfigurable() {
    let a = Experiment::builder()
        .scale(SMOKE_SCALE)
        .seed(5)
        .build()
        .unwrap();
    let b = Experiment::builder()
        .scale(SMOKE_SCALE)
        .seed(5)
        .build()
        .unwrap();
    assert_eq!(a.report(), b.report(), "same seed, same world, same report");

    // Re-simulating the same trace with a halved upload ratio never offloads
    // more than the original run.
    let half = a
        .resimulate(SimConfig::with_ratio(0.5))
        .expect("resimulation with a valid config succeeds");
    half.check_conservation()
        .expect("resimulated bytes conserve");
    assert!(half.total.offload_share() <= a.report().total.offload_share() + 1e-12);
}
