//! Scale-invariant claims of the paper, checked end to end:
//! model orderings, carbon-credit arithmetic, and the headline directions.

use consume_local::figures::{fig5, fig6};
use consume_local::prelude::*;

fn experiment() -> Experiment {
    Experiment::builder().scale(0.003).seed(8).build().unwrap()
}

#[test]
fn valancius_always_saves_more_than_baliga() {
    // The Valancius parameters make CDN delivery far more expensive per bit
    // (7×150 nJ/bit network path), so peer assistance saves more under them
    // — the consistent gap between the paper's figure rows.
    let exp = experiment();
    let v = exp
        .report()
        .total_savings(&EnergyParams::valancius())
        .unwrap();
    let b = exp.report().total_savings(&EnergyParams::baliga()).unwrap();
    assert!(v > b, "Valancius {v} vs Baliga {b}");
    // And per ISP as well.
    for isp in 0..5u8 {
        let ledger = exp.report().isp_ledger(Some(IspId(isp)));
        if ledger.demand_bytes == 0 {
            continue;
        }
        let v = ledger.savings(&EnergyParams::valancius()).unwrap();
        let b = ledger.savings(&EnergyParams::baliga()).unwrap();
        assert!(v >= b, "ISP-{}: {v} vs {b}", isp + 1);
    }
}

#[test]
fn larger_isps_save_more() {
    // Bigger market share ⇒ bigger sub-swarms ⇒ more savings: the ISP
    // ordering of Figs. 2 and 4.
    let exp = experiment();
    let share_of = |isp: u8| -> f64 {
        let ledger = exp.report().isp_ledger(Some(IspId(isp)));
        ledger.savings(&EnergyParams::valancius()).unwrap_or(0.0)
    };
    assert!(
        share_of(0) > share_of(4),
        "ISP-1 {} vs ISP-5 {}",
        share_of(0),
        share_of(4)
    );
}

#[test]
fn carbon_credit_arithmetic_matches_closed_form() {
    // Per-user CCT computed from simulated ledgers must obey Eq. 13 with
    // the user's own upload share standing in for G.
    let exp = experiment();
    let params = EnergyParams::baliga();
    let credits = CreditModel::new(params);
    for (_, traffic) in exp.report().active_users().take(500) {
        let st = CarbonStatement::new(traffic.watched_bytes, traffic.uploaded_bytes, &params)
            .expect("active user");
        let g = traffic.uploaded_bytes as f64 / traffic.watched_bytes as f64;
        assert!((st.cct - credits.cct(g)).abs() < 1e-6);
        assert!(st.cct >= -1.0);
        assert!(st.cct <= credits.asymptotic_cct() + 1e-9);
    }
}

#[test]
fn fig5_curves_cross_where_section5_says() {
    let curves = fig5(200);
    for c in &curves {
        // End-to-end stays within (0, 1); CDN = −user everywhere.
        for i in 0..c.capacities.len() {
            assert!(c.end_to_end[i] >= -1e-12 && c.end_to_end[i] < 1.0);
            assert!((c.cdn[i] + c.user[i]).abs() < 1e-12);
        }
    }
    // Neutrality capacities: Baliga crosses earlier than Valancius.
    let v = curves[0].neutrality_capacity().unwrap();
    let b = curves[1].neutrality_capacity().unwrap();
    assert!(b < v);
    // Valancius needs G ≈ 0.73 ⇒ capacity in the few-to-tens range.
    assert!(v > 1.0 && v < 50.0, "Valancius neutrality at {v}");
    assert!(b > 0.1 && b < 10.0, "Baliga neutrality at {b}");
}

#[test]
fn fig6_shares_ordered_and_users_partitioned() {
    let exp = experiment();
    let f6 = fig6(exp.report(), 64);
    let v = f6.positive_share(consume_local::energy::ModelKind::Valancius);
    let b = f6.positive_share(consume_local::energy::ModelKind::Baliga);
    assert!(b > v, "Baliga {b} vs Valancius {v}");
    for (_, report) in &f6.reports {
        assert_eq!(
            report.carbon_positive() + report.carbon_neutral() + report.carbon_negative(),
            report.users()
        );
        // Some users remain carbon negative (niche viewers) in any world.
        assert!(report.carbon_negative() > 0);
    }
}

#[test]
fn offload_share_bounded_by_upload_ratio() {
    // G ≤ ρ always (peers cannot contribute more than q/β of demand).
    for ratio in [0.3, 0.7, 1.0] {
        let exp = Experiment::builder()
            .scale(0.001)
            .seed(14)
            .upload_ratio(ratio)
            .build()
            .unwrap();
        let g = exp.report().total.offload_share();
        assert!(g <= ratio + 1e-9, "ratio {ratio}: offload {g}");
    }
}

#[test]
fn table_reproductions_are_exact() {
    // Tables III and IV are parameter tables — they must match the paper
    // digit for digit.
    let t3 = consume_local::figures::tables::table3();
    assert_eq!(t3[0].count, 345);
    assert_eq!(t3[1].count, 9);
    assert_eq!(t3[2].count, 1);
    let t4 = consume_local::figures::tables::table4();
    let row = |sym: &str| t4.iter().find(|r| r.symbol == sym).unwrap();
    assert_eq!(row("gamma_s").valancius, 211.1);
    assert_eq!(row("gamma_s").baliga, 281.3);
    assert_eq!(row("gamma_cdn").valancius, 1050.0);
    assert_eq!(row("gamma_core").baliga, 245.74);
    assert_eq!(row("PUE").valancius, 1.2);
    assert_eq!(row("l").baliga, 1.07);
}
