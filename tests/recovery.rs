//! Crash-recovery integration suite: a run killed at *any* batch boundary
//! and resumed from its last crash-safe snapshot must finish with a
//! `SimReport` byte-identical to the uninterrupted run — at 1, 2 and 8
//! worker threads, at day-aligned and mid-day watermarks, and for random
//! traces under random engine configurations. Snapshots that were
//! corrupted, truncated, or written by a future format version must be
//! rejected with typed errors, never mis-restored.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use consume_local::prelude::*;
use consume_local::sim::checkpoint::{self, CheckpointError};
use consume_local::sim::online::faults::{batch_schedule, crash_and_recover, CrashPlan};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const DAY: u64 = 86_400;

static SCRATCH_ORDINAL: AtomicU64 = AtomicU64::new(0);

/// A collision-free scratch checkpoint path (tests run concurrently; the
/// name mixes the pid with a process-wide ordinal, never wall-clock time).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("consume-local-test-recovery");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{name}-{}-{}.ckpt",
        std::process::id(),
        SCRATCH_ORDINAL.fetch_add(1, Ordering::Relaxed)
    ))
}

fn clean(path: &Path) {
    for suffix in ["", ".tmp", ".prev"] {
        let mut os = path.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(os));
    }
}

/// The first `days` days of a scaled London trace: small enough that the
/// kill-at-every-boundary sweeps stay fast, busy enough that swarms span
/// the checkpoint cuts.
fn short_store(scale: f64, seed: u64, days: u64) -> SessionStore {
    let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(scale).unwrap(), seed)
        .generate()
        .unwrap();
    let horizon = days * DAY;
    let records: Vec<_> = trace
        .sessions()
        .iter()
        .copied()
        .filter(|r| r.start.as_secs() < horizon)
        .collect();
    SessionStore::from_records(&records, horizon, trace.population().len())
}

fn simulator(threads: usize) -> Simulator {
    Simulator::new(SimConfig {
        threads,
        ..Default::default()
    })
}

#[test]
fn kill_at_every_day_close_recovers_byte_identically() {
    let store = short_store(0.0003, 23, 3);
    assert!(!store.is_empty());
    for &threads in &THREAD_COUNTS {
        let sim = simulator(threads);
        let expect = sim.simulate(&store);
        let batches = batch_schedule(&store, DAY).len() as u64;
        for crash_after in 0..=batches {
            let path = scratch("day-close");
            let plan = CrashPlan {
                crash_after_batches: crash_after,
                tick_secs: DAY,
                policy: CheckpointPolicy::every_day_closes(1, &path),
            };
            let outcome = crash_and_recover(&sim, &store, &plan).unwrap();
            assert_eq!(
                outcome.report, expect,
                "crash after batch {crash_after} at {threads} threads"
            );
            assert!(outcome.resumed_from <= crash_after * DAY);
            clean(&path);
        }
    }
}

#[test]
fn kill_at_every_mid_day_watermark_recovers_byte_identically() {
    // 9 000 s ticks never divide the day, so every checkpoint lands
    // mid-day: live swarms, carried sessions and partially accumulated
    // daily ledgers all cross the cut.
    let tick = 9_000;
    let store = short_store(0.0002, 41, 2);
    assert!(!store.is_empty());
    for &threads in &THREAD_COUNTS {
        let sim = simulator(threads);
        let expect = sim.simulate(&store);
        let batches = batch_schedule(&store, tick).len() as u64;
        for crash_after in 0..=batches {
            let path = scratch("mid-day");
            let plan = CrashPlan {
                crash_after_batches: crash_after,
                tick_secs: tick,
                policy: CheckpointPolicy::every_watermarks(1, &path),
            };
            let outcome = crash_and_recover(&sim, &store, &plan).unwrap();
            assert_eq!(
                outcome.report, expect,
                "crash after batch {crash_after} at {threads} threads"
            );
            clean(&path);
        }
    }
}

#[test]
fn sparse_checkpoint_cadences_still_recover_exactly() {
    // With a checkpoint only every 3 watermarks the crash loses up to two
    // batches of progress; recovery must re-feed them, not skip them.
    let store = short_store(0.0003, 59, 3);
    let sim = simulator(2);
    let expect = sim.simulate(&store);
    for crash_after in [1, 4, 7] {
        let path = scratch("sparse");
        let plan = CrashPlan {
            crash_after_batches: crash_after,
            tick_secs: DAY / 2,
            policy: CheckpointPolicy::every_watermarks(3, &path),
        };
        let outcome = crash_and_recover(&sim, &store, &plan).unwrap();
        assert_eq!(outcome.report, expect, "crash after batch {crash_after}");
        let kept = (crash_after / 3) * 3 * (DAY / 2);
        assert_eq!(outcome.resumed_from, kept);
        clean(&path);
    }
}

/// Builds a run mid-flight and snapshots it to `path`, returning its
/// watermark.
fn write_mid_run_snapshot(sim: &Simulator, store: &SessionStore, path: &Path) -> u64 {
    let schedule = batch_schedule(store, DAY);
    let mut run = sim.begin(store.horizon_secs(), store.population_len());
    for (batch, watermark) in &schedule[..2] {
        run.push_batch(batch, *watermark);
    }
    checkpoint::write_snapshot_file(&run, path).unwrap();
    run.watermark()
}

#[test]
fn corrupted_snapshots_are_rejected_with_typed_errors() {
    let store = short_store(0.0002, 7, 3);
    let sim = simulator(1);
    let path = scratch("tamper");
    clean(&path);
    write_mid_run_snapshot(&sim, &store, &path);
    let pristine = std::fs::read(&path).unwrap();

    // Version bump: the envelope is rejected before anything is decoded.
    let mut bytes = pristine.clone();
    bytes[8] = 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        checkpoint::resume_latest(&path),
        Err(CheckpointError::UnsupportedVersion { supported: 2, .. })
    ));

    // Bad magic.
    let mut bytes = pristine.clone();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        checkpoint::resume_latest(&path),
        Err(CheckpointError::BadMagic { .. })
    ));

    // A single flipped payload bit trips the FNV digest.
    let mut bytes = pristine.clone();
    let mid = 20 + (pristine.len() - 28) / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        checkpoint::resume_latest(&path),
        Err(CheckpointError::DigestMismatch { .. })
    ));

    // Truncation anywhere — inside the envelope, the payload, or the
    // digest trailer — is caught as such.
    for cut in [4, 10, pristine.len() / 2, pristine.len() - 3] {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            matches!(
                checkpoint::resume_latest(&path),
                Err(CheckpointError::Truncated { .. })
            ),
            "truncation at {cut} of {} must be typed",
            pristine.len()
        );
    }

    // The pristine bytes still restore (the guards above weren't spurious).
    std::fs::write(&path, &pristine).unwrap();
    let run = checkpoint::resume_latest(&path).unwrap();
    assert_eq!(run.watermark(), 2 * DAY);
    clean(&path);
}

#[test]
fn resume_latest_falls_back_to_the_previous_snapshot() {
    let store = short_store(0.0002, 13, 3);
    let sim = simulator(1);
    let path = scratch("fallback");
    clean(&path);
    // Two checkpoints: the atomic-write protocol keeps the first as
    // `<path>.prev` when the second lands.
    let schedule = batch_schedule(&store, DAY);
    let mut run = sim.begin(store.horizon_secs(), store.population_len());
    run.push_batch(&schedule[0].0, schedule[0].1);
    checkpoint::write_snapshot_file(&run, &path).unwrap();
    run.push_batch(&schedule[1].0, schedule[1].1);
    checkpoint::write_snapshot_file(&run, &path).unwrap();

    // Corrupt the current snapshot: resume falls back to the previous one.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    let resumed = checkpoint::resume_latest(&path).unwrap();
    assert_eq!(resumed.watermark(), DAY, "the .prev snapshot wins");

    // With both gone the primary (current-file) error is reported.
    clean(&path);
    match checkpoint::resume_latest(&path) {
        Err(CheckpointError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
}

fn record(
    (start, user, content, duration, device, isp, exchange): (u64, u32, u32, u32, usize, u8, u32),
) -> consume_local::trace::SessionRecord {
    use consume_local::topology::{ExchangeId, IspId, PopId, UserLocation};
    use consume_local::trace::device::DeviceClass;
    use consume_local::trace::{ContentId, SessionRecord, SimTime, UserId};
    SessionRecord {
        user: UserId(user),
        content: ContentId(content),
        start: SimTime(start),
        duration_secs: duration,
        device: DeviceClass::MIX[device].0,
        isp: IspId(isp),
        location: UserLocation::from_raw_parts(ExchangeId(exchange), PopId(exchange / 4)),
    }
}

const PROP_HORIZON: u64 = 4 * DAY;
const PROP_USERS: usize = 64;

fn records_strategy() -> impl Strategy<Value = Vec<consume_local::trace::SessionRecord>> {
    use consume_local::trace::device::DeviceClass;
    proptest::collection::vec(
        (
            0..PROP_HORIZON,
            0..PROP_USERS as u32,
            0u32..12,
            60u32..14_400,
            0usize..DeviceClass::MIX.len(),
            0u8..5,
            0u32..16,
        )
            .prop_map(record),
        0..120,
    )
}

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (0u64..1_000_000, 0u8..2, 0usize..3, 0usize..2, 0usize..2).prop_map(
        |(seed, random, threads, participation, cooperation)| SimConfig {
            seed,
            matcher: if random == 1 {
                MatcherKind::Random
            } else {
                MatcherKind::Hierarchical
            },
            threads: [1, 2, 8][threads],
            participation_rate: [1.0, 0.9][participation],
            cooperation_rate: [1.0, 0.85][cooperation],
            ..Default::default()
        },
    )
}

proptest! {
    /// For random traces × random configs × a random cut point, a snapshot
    /// taken mid-run restores into a run that finishes byte-identically —
    /// and taking it never perturbs the donor.
    #[test]
    fn snapshot_roundtrip_is_exact_for_random_runs(
        records in records_strategy(),
        config in config_strategy(),
        tick in (0usize..3).prop_map(|i| [9_000u64, 43_200, 86_400][i]),
        cut_fraction in 0.0f64..1.0,
    ) {
        let store = SessionStore::from_records(&records, PROP_HORIZON, PROP_USERS);
        let sim = Simulator::new(config);
        let expect = sim.simulate(&store);
        let schedule = batch_schedule(&store, tick);
        let cut = ((schedule.len() as f64) * cut_fraction) as usize;

        let mut run = sim.begin(store.horizon_secs(), store.population_len());
        for (batch, watermark) in &schedule[..cut] {
            run.push_batch(batch, *watermark);
        }
        let mut snapshot = Vec::new();
        run.checkpoint(&mut snapshot).unwrap();
        let mut resumed = Simulator::resume(&mut snapshot.as_slice()).unwrap();
        prop_assert_eq!(resumed.watermark(), run.watermark());

        for (batch, watermark) in &schedule[cut..] {
            run.push_batch(batch, *watermark);
            resumed.push_batch(batch, *watermark);
        }
        prop_assert_eq!(resumed.finish(), expect.clone());
        prop_assert_eq!(run.finish(), expect);
    }
}
