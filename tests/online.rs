//! Online-vs-batch byte-identity suite: the event-stream ingest path must
//! reproduce the batch engine's `SimReport` exactly — at every replay
//! speed, every worker count, every channel capacity and every watermark
//! cadence — and the bounded channel must never drop or reorder events no
//! matter how slow the consumer is.

use consume_local::prelude::*;
use consume_local::sim::online::{self, ReplayConfig, ReplaySpeed};
use consume_local::sim::par::parallel_join;
use consume_local::trace::{SegmentedStore, SessionStore};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn shared_store() -> SessionStore {
    let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0005).unwrap(), 99)
        .generate()
        .unwrap();
    SessionStore::from_trace(&trace)
}

fn simulator(threads: usize) -> Simulator {
    Simulator::new(SimConfig {
        threads,
        ..Default::default()
    })
}

#[test]
fn replay_byte_identical_across_speeds_and_thread_counts() {
    let store = shared_store();
    for &threads in &THREAD_COUNTS {
        let sim = simulator(threads);
        let expect = sim.simulate(&store);
        assert!(expect.total.demand_bytes > 0);
        // Paced speeds go through `replay_with` with a recording pacer so
        // the suite never actually sleeps; the pacing maths is pinned by
        // the unit tests in `consume_local_sim::online`.
        for factor in [1.0, 16.0] {
            let config = ReplayConfig {
                speed: ReplaySpeed::Times(factor),
                ..ReplayConfig::default()
            };
            let mut paces = 0u64;
            let (report, stats) =
                online::replay_with(&sim, &store, &config, |_| paces += 1, |_| {});
            assert_eq!(
                report, expect,
                "{factor}x replay must match the batch report at {threads} threads"
            );
            assert_eq!(stats.events, store.len() as u64);
            assert_eq!(paces, stats.watermarks, "one pace per tick at {factor}x");
        }
        let (report, stats) = online::replay(&sim, &store, &ReplayConfig::default());
        assert_eq!(
            report, expect,
            "max-throughput replay must match the batch report at {threads} threads"
        );
        assert_eq!(stats.events, store.len() as u64);
        // The retired wrapper is pinned to the same bytes mid-migration.
        #[allow(deprecated)]
        // lint:allow(deprecated-sim-entry) pins online against the legacy entry point
        let legacy = sim.run_store(&store);
        assert_eq!(report, legacy);
    }
}

#[test]
fn backpressured_channel_never_drops_or_reorders() {
    let store = shared_store();
    let day = SegmentedStore::SEGMENT_SECS;
    let sim = simulator(2);
    let expect = sim.simulate(&store);
    // Capacity 0 is a rendezvous channel — every send waits for the
    // consumer — and capacity 2 forces thousands of blocking sends; both
    // must only ever slow the producer down, never lose or reorder work.
    for capacity in [0, 2] {
        let records = store.to_records();
        let (mut tx, source) =
            online::channel(store.horizon_secs(), store.population_len(), capacity);
        let (_, fed) = parallel_join(
            move || {
                let mut next_seal = day;
                for r in &records {
                    while r.start.as_secs() >= next_seal {
                        tx.advance_watermark(next_seal).unwrap();
                        next_seal += day;
                    }
                    tx.send_session(*r).unwrap();
                }
            },
            || {
                let mut fed = Vec::new();
                let mut last_watermark = 0;
                source.for_each_batch(&mut |batch, watermark| {
                    assert!(
                        watermark > last_watermark,
                        "watermarks advance monotonically"
                    );
                    last_watermark = watermark;
                    fed.extend(batch.to_records());
                });
                fed
            },
        );
        assert_eq!(
            fed,
            store.to_records(),
            "capacity {capacity}: every event arrives exactly once, in canonical order"
        );
        // And the same stream shape drives the engine to identical bytes.
        let records = store.to_records();
        let (mut tx, source) =
            online::channel(store.horizon_secs(), store.population_len(), capacity);
        let (_, report) = parallel_join(
            move || {
                let mut next_seal = day;
                for r in &records {
                    while r.start.as_secs() >= next_seal {
                        tx.advance_watermark(next_seal).unwrap();
                        next_seal += day;
                    }
                    tx.send_session(*r).unwrap();
                }
            },
            || sim.simulate(source),
        );
        assert_eq!(
            report, expect,
            "capacity {capacity}: backpressure must not change the report"
        );
    }
}

#[test]
fn odd_watermark_cadences_match_the_batch_report() {
    let store = shared_store();
    let sim = simulator(2);
    let expect = sim.simulate(&store);
    // Ticks that do not divide the day (or the hour) exercise batches that
    // straddle day boundaries; the engine's day-close logic must not care.
    for tick_secs in [1_000, 5_000, 100_000] {
        let config = ReplayConfig {
            tick_secs,
            ..ReplayConfig::default()
        };
        let (report, stats) = online::replay(&sim, &store, &config);
        assert_eq!(
            report, expect,
            "tick {tick_secs}s must match the batch report"
        );
        assert_eq!(stats.watermarks, store.horizon_secs().div_ceil(tick_secs));
        assert_eq!(
            stats.days_closed,
            store.horizon_secs().div_ceil(SegmentedStore::SEGMENT_SECS)
        );
    }
}

#[test]
fn online_day_closes_match_the_batch_day_closes() {
    let store = shared_store();
    let sim = simulator(2);
    let mut batch_days = Vec::new();
    let batch_report = sim.simulate_days(&store, |close| batch_days.push(close));
    let mut online_days = Vec::new();
    let (online_report, _) = online::replay_with(
        &sim,
        &store,
        &ReplayConfig::default(),
        |_| {},
        |close| online_days.push(close),
    );
    assert_eq!(online_report, batch_report);
    assert_eq!(
        online_days, batch_days,
        "per-day ledgers must be identical whether days close live or in batch"
    );
    assert_eq!(
        online_days.len() as u64,
        store.horizon_secs().div_ceil(SegmentedStore::SEGMENT_SECS)
    );
    assert!(online_days.iter().any(|c| c.ledger.demand_bytes > 0));
}
