//! End-to-end pipeline tests: trace generation → simulation → reports,
//! checking determinism and byte/energy conservation across crate borders.

use consume_local::prelude::*;

fn experiment(scale: f64, seed: u64) -> Experiment {
    Experiment::builder()
        .scale(scale)
        .seed(seed)
        .build()
        .expect("valid experiment")
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = experiment(0.0005, 11);
    let b = experiment(0.0005, 11);
    assert_eq!(a.trace().sessions(), b.trace().sessions());
    assert_eq!(a.report(), b.report());
    // A different seed produces a genuinely different world.
    let c = experiment(0.0005, 12);
    assert_ne!(a.trace().sessions(), c.trace().sessions());
}

#[test]
fn conservation_holds_at_scale() {
    let exp = experiment(0.002, 3);
    let report = exp.report();
    report
        .check_conservation()
        .expect("bytes conserve end-to-end");
    // Ledger totals equal the sum of per-swarm ledgers.
    let mut demand = 0u64;
    let mut server = 0u64;
    let mut peers = 0u64;
    for s in &report.swarms {
        demand += s.ledger.demand_bytes;
        server += s.ledger.server_bytes;
        peers += s.ledger.peer_bytes();
    }
    assert_eq!(demand, report.total.demand_bytes);
    assert_eq!(server, report.total.server_bytes);
    assert_eq!(peers, report.total.peer_bytes());
    // Daily cells partition the total demand too.
    let daily_demand: u64 = report.daily.iter().map(|c| c.ledger.demand_bytes).sum();
    assert_eq!(daily_demand, report.total.demand_bytes);
}

#[test]
fn energy_accounting_is_order_independent() {
    // Savings computed from the total ledger must equal savings recomputed
    // from the per-swarm ledgers merged in any order.
    let exp = experiment(0.001, 9);
    let report = exp.report();
    for params in EnergyParams::published() {
        let direct = report.total_savings(&params).unwrap();
        let mut merged = consume_local::sim::ByteLedger::new();
        let mut reversed: Vec<_> = report.swarms.iter().collect();
        reversed.reverse();
        for s in reversed {
            merged.merge(&s.ledger);
        }
        let recomputed = merged.savings(&params).unwrap();
        assert!((direct - recomputed).abs() < 1e-12, "{}", params.name());
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.001).unwrap(), 21)
        .generate()
        .unwrap();
    let one = SimConfig {
        threads: 1,
        ..Default::default()
    };
    let many = SimConfig {
        threads: 8,
        ..Default::default()
    };
    let r1 = Simulator::new(one).simulate(&trace);
    let r8 = Simulator::new(many).simulate(&trace);
    assert_eq!(r1, r8);
}

#[test]
fn users_in_report_match_population() {
    let exp = experiment(0.0008, 5);
    assert_eq!(exp.report().users.len(), exp.trace().population().len());
    // Every active user in the report actually has sessions in the trace.
    let mut has_sessions = vec![false; exp.trace().population().len()];
    for s in exp.trace().sessions() {
        has_sessions[s.user.0 as usize] = true;
    }
    for (uid, traffic) in exp.report().active_users() {
        assert!(
            has_sessions[uid as usize],
            "user {uid} has traffic but no sessions"
        );
        assert!(traffic.watched_bytes > 0);
    }
}

#[test]
fn savings_within_unit_interval_under_both_models() {
    let exp = experiment(0.002, 17);
    for params in EnergyParams::published() {
        let s = exp.report().total_savings(&params).unwrap();
        assert!((0.0..1.0).contains(&s), "{}: {s}", params.name());
        for swarm in &exp.report().swarms {
            if let Some(sv) = swarm.savings(&params) {
                assert!(
                    (-1e-9..1.0).contains(&sv),
                    "swarm {} under {}: {sv}",
                    swarm.key,
                    params.name()
                );
            }
        }
    }
}
