//! Ablation invariants: the design choices DESIGN.md calls out must move
//! results in the direction the paper argues.

use consume_local::prelude::*;

fn base_experiment() -> Experiment {
    Experiment::builder().scale(0.002).seed(29).build().unwrap()
}

#[test]
fn isp_friendly_swarming_is_a_lower_bound() {
    // The paper: restricting swarms to one ISP "can provide a lower bound on
    // achievable savings". Cross-ISP matching must offload at least as much.
    let exp = base_experiment();
    let mut cross = exp.sim_config().clone();
    cross.policy = SwarmPolicy::cross_isp();
    let cross_report = exp.resimulate(cross).unwrap();
    assert!(
        cross_report.total.offload_share() >= exp.report().total.offload_share(),
        "cross-ISP offload {} < ISP-friendly {}",
        cross_report.total.offload_share(),
        exp.report().total.offload_share()
    );
}

#[test]
fn bitrate_split_costs_offload() {
    let exp = base_experiment();
    let mut mixed = exp.sim_config().clone();
    mixed.policy = SwarmPolicy::mixed_bitrate();
    let mixed_report = exp.resimulate(mixed).unwrap();
    assert!(
        mixed_report.total.offload_share() >= exp.report().total.offload_share(),
        "merging bitrate classes cannot reduce sharing opportunities"
    );
}

#[test]
fn random_matching_wastes_locality_not_volume() {
    let exp = base_experiment();
    let mut random = exp.sim_config().clone();
    random.matcher = MatcherKind::Random;
    let random_report = exp.resimulate(random).unwrap();
    // Same transfer volume...
    assert_eq!(
        random_report.total.peer_bytes(),
        exp.report().total.peer_bytes()
    );
    // ...but less of it local, so no more energy saved.
    assert!(
        random_report.total.peer_bytes_by_layer[0] <= exp.report().total.peer_bytes_by_layer[0]
    );
    for params in EnergyParams::published() {
        let hier = exp.report().total_savings(&params).unwrap();
        let rand = random_report.total_savings(&params).unwrap();
        assert!(
            rand <= hier + 1e-12,
            "{}: random {rand} vs hierarchical {hier}",
            params.name()
        );
    }
}

#[test]
fn window_size_is_a_second_order_effect() {
    // Δτ ∈ {5 s, 10 s, 60 s} changes quantisation, not the physics: savings
    // move by at most a couple of points.
    let exp = base_experiment();
    let savings_at = |window: u64| -> f64 {
        let mut cfg = exp.sim_config().clone();
        cfg.window_secs = window;
        exp.resimulate(cfg)
            .unwrap()
            .total_savings(&EnergyParams::valancius())
            .unwrap()
    };
    let s5 = savings_at(5);
    let s10 = savings_at(10);
    let s60 = savings_at(60);
    assert!((s5 - s10).abs() < 0.02, "Δτ=5 {s5} vs Δτ=10 {s10}");
    assert!((s60 - s10).abs() < 0.03, "Δτ=60 {s60} vs Δτ=10 {s10}");
}

#[test]
fn absolute_upload_model_matches_equivalent_ratio() {
    // A 1.5 Mb/s swarm under AbsoluteBps(1.5 Mb/s) behaves like Ratio(1.0).
    let exp = base_experiment();
    let mut abs = exp.sim_config().clone();
    abs.upload = UploadModel::AbsoluteBps(10_000_000); // ≥ every bitrate ⇒ ratio capped at 1
    let abs_report = exp.resimulate(abs).unwrap();
    let base_offload = exp.report().total.offload_share();
    let abs_offload = abs_report.total.offload_share();
    assert!(
        abs_offload >= base_offload - 1e-9,
        "ample absolute uplink ({abs_offload}) must offload at least as much as ratio 1 ({base_offload})"
    );
}

#[test]
fn flat_diurnal_profile_reduces_prime_time_swarming() {
    // The evening peak concentrates viewers; flattening it spreads the same
    // demand thin and lowers sharing.
    let mut config = TraceConfig::london_sep2013().scaled(0.002).unwrap();
    let peaked = TraceGenerator::new(config.clone(), 40).generate().unwrap();
    config.diurnal = consume_local::trace::arrival::DiurnalProfile::flat();
    let flat = TraceGenerator::new(config, 40).generate().unwrap();
    let sim = Simulator::new(SimConfig::default());
    let peaked_offload = sim.simulate(&peaked).total.offload_share();
    let flat_offload = sim.simulate(&flat).total.offload_share();
    assert!(
        peaked_offload > flat_offload,
        "prime-time concentration must increase sharing: {peaked_offload} vs {flat_offload}"
    );
}
