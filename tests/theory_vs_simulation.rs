//! The paper's central validation (Fig. 2): the closed-form Eq. 12 must
//! track the trace-driven simulation across capacities, upload ratios,
//! energy models and ISPs.

use consume_local::figures::{fig2, Fig2Options, PopularityTier};
use consume_local::prelude::*;
use consume_local::trace::Popularity;

fn exemplar_trace(seed: u64) -> Trace {
    let mut config = TraceConfig::london_sep2013();
    config.catalogue_size = 3;
    config.popularity = Popularity::Zipf { exponent: 3.35 };
    config.sessions_target = 60_000;
    config.users = 25_000;
    TraceGenerator::new(config, seed).generate().unwrap()
}

#[test]
fn simulation_dots_track_theory_curves() {
    let trace = exemplar_trace(77);
    let opts = Fig2Options {
        ratios: vec![0.4, 1.0],
        curve_points: 8,
    };
    let panels = fig2(&trace, &SimConfig::default(), &opts);
    assert_eq!(panels.len(), 6);
    for panel in &panels {
        if panel.dots.len() < 5 {
            continue;
        }
        // Demand-weighted agreement: swarms with meaningful capacity agree
        // within a few points of a percent (the paper's "generally in good
        // agreement").
        let significant: Vec<_> = panel.dots.iter().filter(|d| d.capacity > 0.5).collect();
        if significant.is_empty() {
            continue;
        }
        let gap = significant
            .iter()
            .map(|d| (d.sim - d.theory).abs())
            .sum::<f64>()
            / significant.len() as f64;
        assert!(
            gap < 0.05,
            "{:?}/{:?}: mean |sim − theory| = {gap:.4} over {} dots",
            panel.model,
            panel.tier,
            significant.len()
        );
    }
}

#[test]
fn savings_scale_with_popularity_tier() {
    let trace = exemplar_trace(5);
    let opts = Fig2Options {
        ratios: vec![1.0],
        curve_points: 4,
    };
    let panels = fig2(&trace, &SimConfig::default(), &opts);
    let mean_sim = |tier: PopularityTier| -> f64 {
        let p = panels
            .iter()
            .find(|p| p.tier == tier && p.model == consume_local::energy::ModelKind::Valancius)
            .unwrap();
        if p.dots.is_empty() {
            return 0.0;
        }
        // Weight by capacity (≈ demand) as the aggregate would.
        let num: f64 = p.dots.iter().map(|d| d.sim * d.capacity).sum();
        let den: f64 = p.dots.iter().map(|d| d.capacity).sum();
        num / den.max(1e-12)
    };
    let popular = mean_sim(PopularityTier::Popular);
    let medium = mean_sim(PopularityTier::Medium);
    let unpopular = mean_sim(PopularityTier::Unpopular);
    // The popular tier must dominate both others. Medium vs unpopular can
    // occasionally invert on a single seed: a fresh low-view episode whose
    // audience concentrates on broadcast night can out-swarm a flat
    // back-catalogue item with more total views — temporal concentration
    // matters as much as volume (cf. the scatter in the paper's Fig. 2).
    assert!(
        popular > medium && popular > unpopular,
        "popular tier must dominate: {popular} / {medium} / {unpopular}"
    );
    // The popular tier lands in the paper's teens-to-high-forties band.
    assert!(popular > 0.10, "popular-tier savings too low: {popular}");
}

#[test]
fn upload_ratio_sweep_scales_savings_linearly_at_low_capacity() {
    // Eq. 12 is linear in ρ for fixed capacity; simulated savings across the
    // ratio sweep must preserve that proportionality approximately.
    let trace = exemplar_trace(13);
    let opts = Fig2Options {
        ratios: vec![0.2, 0.4, 0.8],
        curve_points: 4,
    };
    let panels = fig2(&trace, &SimConfig::default(), &opts);
    let panel = panels
        .iter()
        .find(|p| {
            p.tier == PopularityTier::Popular
                && p.model == consume_local::energy::ModelKind::Valancius
        })
        .unwrap();
    let mean_for = |ratio: f64| -> f64 {
        let dots: Vec<_> = panel
            .dots
            .iter()
            .filter(|d| (d.ratio - ratio).abs() < 1e-9)
            .collect();
        dots.iter().map(|d| d.sim * d.capacity).sum::<f64>()
            / dots.iter().map(|d| d.capacity).sum::<f64>().max(1e-12)
    };
    let s02 = mean_for(0.2);
    let s04 = mean_for(0.4);
    let s08 = mean_for(0.8);
    assert!(
        (s04 / s02 - 2.0).abs() < 0.25,
        "0.4/0.2 ratio: {}",
        s04 / s02
    );
    assert!(
        (s08 / s04 - 2.0).abs() < 0.25,
        "0.8/0.4 ratio: {}",
        s08 / s04
    );
}

#[test]
fn fig4_theory_matches_simulation_on_full_catalogue() {
    let exp = Experiment::builder().scale(0.002).seed(31).build().unwrap();
    let registry = exp.trace().config().registry.clone();
    let series = consume_local::figures::fig4(exp.report(), &registry, &[IspId(0), IspId(4)]);
    for s in &series {
        let theory: std::collections::HashMap<u32, f64> = s.theory.iter().copied().collect();
        let mut gaps = Vec::new();
        for &(day, sim) in &s.sim {
            if let Some(&th) = theory.get(&day) {
                gaps.push((sim - th).abs());
            }
        }
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        assert!(
            mean_gap < 0.06,
            "{}/{:?}: daily theory gap {mean_gap}",
            s.isp,
            s.model
        );
    }
}
