//! Property tests for the streaming per-day store pipeline: a
//! [`SegmentedStore`] must be a lossless day-partition of the monolithic
//! [`SessionStore`], and the segment-sequential engine must replay it to a
//! **byte-identical** report — whatever the records look like, and in
//! particular when sessions straddle segment (day) boundaries.

use proptest::prelude::*;

use consume_local::prelude::*;
use consume_local::topology::{ExchangeId, IspId, PopId, UserLocation};
use consume_local::trace::device::DeviceClass;
use consume_local::trace::{
    ContentId, SegmentedStore, SessionRecord, SessionStore, SimTime, UserId,
};

/// Three days: enough for first/middle/last-segment behaviour.
const HORIZON: u64 = 3 * 86_400;
const USERS: usize = 60;

fn record(
    (start, user, content, duration, device, isp, exchange): (u64, u32, u32, u32, usize, u8, u32),
) -> SessionRecord {
    SessionRecord {
        user: UserId(user),
        content: ContentId(content),
        start: SimTime(start),
        duration_secs: duration,
        device: DeviceClass::MIX[device].0,
        isp: IspId(isp),
        location: UserLocation::from_raw_parts(ExchangeId(exchange), PopId(exchange / 4)),
    }
}

/// Random records over a tiny world. Durations run up to two days, so many
/// sessions cross one or even two segment boundaries; starts cover the
/// whole horizon including the final day (whose sessions may end beyond
/// the horizon).
fn records_strategy() -> impl Strategy<Value = Vec<SessionRecord>> {
    proptest::collection::vec(
        (
            0..HORIZON,
            0..USERS as u32,
            0u32..6,
            60u32..2 * 86_400,
            0usize..DeviceClass::MIX.len(),
            0u8..3,
            0u32..12,
        )
            .prop_map(record),
        1..80,
    )
}

/// Records clustered tightly around the day-1 boundary: every session
/// starts within ±30 minutes of midnight and lasts up to 2 hours, so
/// almost every window run is interrupted by the segment cut.
fn boundary_straddler_strategy() -> impl Strategy<Value = Vec<SessionRecord>> {
    proptest::collection::vec(
        (
            86_400u64 - 1_800..86_400 + 1_800,
            0..USERS as u32,
            0u32..3,
            60u32..7_200,
            0usize..DeviceClass::MIX.len(),
            0u8..2,
            0u32..6,
        )
            .prop_map(record),
        1..40,
    )
}

proptest! {
    #[test]
    fn segmented_store_round_trips_like_the_monolithic_store(
        records in records_strategy(),
    ) {
        let mono = SessionStore::from_records(&records, HORIZON, USERS);
        let seg = SegmentedStore::from_records(&records, HORIZON, USERS);
        prop_assert_eq!(seg.len(), mono.len());

        // Concatenated per-segment records equal the monolithic round trip
        // (canonical order included), and each segment holds exactly its
        // day's sessions.
        let mut concatenated = Vec::with_capacity(seg.len());
        for (day, segment) in seg.segments().iter().enumerate() {
            let lo = day as u64 * SegmentedStore::SEGMENT_SECS;
            for r in segment.to_records() {
                prop_assert!(r.start.as_secs() >= lo);
                prop_assert!(r.start.as_secs() < lo + SegmentedStore::SEGMENT_SECS);
                concatenated.push(r);
            }
        }
        prop_assert_eq!(&concatenated, &mono.to_records());
        prop_assert_eq!(&seg.to_records(), &concatenated);

        // Global record/index lookups agree with the monolithic store.
        for i in 0..seg.len() {
            prop_assert_eq!(seg.record(i), mono.record(i));
        }
        for probe in [0, 3_599, 86_400, 86_401, 2 * 86_400 + 7, HORIZON, HORIZON + 9_999] {
            prop_assert_eq!(seg.first_at_or_after(probe), mono.first_at_or_after(probe));
        }
        for w in 0..(HORIZON / 3_600) as usize + 2 {
            prop_assert_eq!(seg.window_range(w), mono.window_range(w));
        }

        // Rebuilding from the round-tripped records reproduces the store.
        prop_assert_eq!(
            &SegmentedStore::from_records(&concatenated, HORIZON, USERS),
            &seg
        );
    }

    #[test]
    fn segmented_engine_matches_monolithic_on_random_traces(
        records in records_strategy(),
        matcher_pick in 0u8..2,
        window_secs in 5u64..600,
        participation_pct in 30u64..=100,
    ) {
        let mono = SessionStore::from_records(&records, HORIZON, USERS);
        let seg = SegmentedStore::from_records(&records, HORIZON, USERS);
        let cfg = SimConfig {
            matcher: if matcher_pick == 1 {
                MatcherKind::Random
            } else {
                MatcherKind::Hierarchical
            },
            window_secs,
            participation_rate: participation_pct as f64 / 100.0,
            ..Default::default()
        };
        let sim = Simulator::new(cfg);
        prop_assert_eq!(sim.simulate(&seg), sim.simulate(&mono));
    }

    #[test]
    fn segment_boundary_straddlers_replay_identically(
        records in boundary_straddler_strategy(),
        window_secs in 5u64..3_600,
        preload_tenths in 0u64..5,
    ) {
        let mono = SessionStore::from_records(&records, HORIZON, USERS);
        let seg = SegmentedStore::from_records(&records, HORIZON, USERS);
        let cfg = SimConfig {
            window_secs,
            preload_fraction: preload_tenths as f64 / 10.0,
            ..Default::default()
        };
        let sim = Simulator::new(cfg);
        prop_assert_eq!(sim.simulate(&seg), sim.simulate(&mono));
    }
}

#[test]
fn generated_trace_segments_and_stream_replay_identically() {
    // End to end on a real generated trace: the segmented store built from
    // the trace, the segmented store emitted by the generator, and the
    // bounded-memory generate-and-simulate stream all reproduce the
    // monolithic report byte for byte.
    let config = TraceConfig::london_sep2013().scaled(0.0005).unwrap();
    let generator = TraceGenerator::new(config, 41);
    let trace = generator.generate().unwrap();
    let sim = Simulator::new(SimConfig::default());
    let monolithic = sim.simulate(&trace);

    let from_trace = SegmentedStore::from_trace(&trace);
    assert_eq!(sim.simulate(&from_trace), monolithic);

    let emitted = generator.generate_segmented().unwrap();
    assert_eq!(emitted, from_trace);
    assert_eq!(sim.simulate(&emitted), monolithic);

    let mut stream = generator.segments().unwrap();
    assert_eq!(sim.simulate(&mut stream), monolithic);
}
