//! Trace CSV round-trips must preserve simulation results exactly: a trace
//! exported and re-imported (e.g. a real operator trace converted into the
//! simulator's schema) produces an identical report.

use consume_local::prelude::*;
use consume_local::trace::io;

#[test]
fn csv_roundtrip_preserves_simulation() {
    let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0005).unwrap(), 55)
        .generate()
        .unwrap();

    let mut csv = Vec::new();
    io::write_sessions(&mut csv, trace.sessions()).unwrap();
    let sessions = io::read_sessions(csv.as_slice()).unwrap();
    assert_eq!(sessions, trace.sessions());

    let rebuilt = Trace::from_parts(
        trace.config().clone(),
        trace.catalogue().clone(),
        trace.population().clone(),
        sessions,
    );
    let original = Simulator::new(SimConfig::default()).simulate(&trace);
    let roundtripped = Simulator::new(SimConfig::default()).simulate(&rebuilt);
    assert_eq!(original, roundtripped);
}

#[test]
fn csv_is_line_stable() {
    // The export format is a documented interchange schema: header plus one
    // line per session, no trailing surprises.
    let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0002).unwrap(), 4)
        .generate()
        .unwrap();
    let mut csv = Vec::new();
    io::write_sessions(&mut csv, trace.sessions()).unwrap();
    let text = String::from_utf8(csv).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], io::HEADER);
    assert_eq!(lines.len(), trace.sessions().len() + 1);
    assert!(lines[1..].iter().all(|l| l.split(',').count() == 8));
}

#[test]
fn corrupted_csv_is_rejected_with_line_numbers() {
    let good = format!("{}\n1,2,3,90,mobile,0,1,2\n", io::HEADER);
    assert_eq!(io::read_sessions(good.as_bytes()).unwrap().len(), 1);

    let bad_device = format!(
        "{}\n1,2,3,90,mobile,0,1,2\n1,2,3,90,fax,0,1,2\n",
        io::HEADER
    );
    let err = io::read_sessions(bad_device.as_bytes())
        .unwrap_err()
        .to_string();
    assert!(err.contains("line 3"), "{err}");

    let bad_fields = format!("{}\n1,2,3\n", io::HEADER);
    let err = io::read_sessions(bad_fields.as_bytes())
        .unwrap_err()
        .to_string();
    assert!(err.contains("expected 8 fields"), "{err}");
}
