//! Carbon, not just energy: pricing the system's electricity against the UK
//! grid's carbon intensity, including the night-is-greener effect that
//! complicates the preloading story.
//!
//! ```sh
//! cargo run --release --example green_scheduling
//! ```

use consume_local::ascii;
use consume_local::carbon::GridIntensity;
use consume_local::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== green scheduling: energy → CO₂ ==\n");
    let grid = GridIntensity::uk_2013_diurnal();
    println!(
        "UK grid 2013: mean {} gCO₂/kWh, cleanest hour {:02}:00\n",
        grid.mean_g_per_kwh(),
        grid.cleanest_hour()
    );

    // 1. A month of London streaming, in tonnes of CO₂.
    let exp = Experiment::builder().scale(0.01).seed(3).build()?;
    let report = exp.report();
    let mut rows = Vec::new();
    for params in EnergyParams::published() {
        let hybrid = report.total.hybrid_energy(&params);
        let baseline = report.total.baseline_energy(&params);
        let scale_up = 1.0 / exp.scale(); // project to full London
        rows.push(vec![
            params.name().to_string(),
            format!("{:.1} t", grid.grams_for(baseline) * scale_up / 1e6),
            format!("{:.1} t", grid.grams_for(hybrid) * scale_up / 1e6),
            format!(
                "{:.1} t",
                grid.grams_for(baseline - hybrid) * scale_up / 1e6
            ),
        ]);
    }
    println!("projected full-London monthly footprint (tonnes CO₂):");
    println!(
        "{}",
        ascii::table(&["model", "CDN-only", "hybrid P2P", "saved"], &rows)
    );

    // 2. The preloading trade-off in carbon terms: prefetching at 03:00
    //    foregoes peer sharing but buys the night grid discount.
    println!("preloading carbon ledger (per GB shifted from 20:00 viewing):");
    let params = EnergyParams::valancius();
    let cost = consume_local::energy::CostModel::new(params);
    let one_gb = consume_local::energy::Traffic::from_bytes(1_000_000_000);
    let server_energy = cost.server_energy(one_gb);
    // Night grid benefit of the same CDN bytes:
    let night_gain = grid.shift_saving(server_energy, 20, 3);
    // What peer delivery would have saved at prime time instead:
    let peer_energy = cost.peer_energy(one_gb, Layer::ExchangePoint);
    let p2p_gain = grid.grams_at_hour(server_energy - peer_energy, 20);
    let mut rows = vec![
        vec![
            "prefetch at 03:00".to_string(),
            format!("{night_gain:.2} g saved/GB (grid timing)"),
        ],
        vec![
            "share with local peer at 20:00".to_string(),
            format!("{p2p_gain:.2} g saved/GB (fewer network hops)"),
        ],
    ];
    rows.push(vec![
        "verdict".to_string(),
        if p2p_gain > night_gain {
            "peer assistance beats night prefetching".to_string()
        } else {
            "night prefetching beats peer assistance".to_string()
        },
    ]);
    println!("{}", ascii::table(&["strategy", "carbon effect"], &rows));
    println!(
        "with 2013-era parameters the hop savings dwarf the grid's diurnal swing, so\n\
         \"consume local\" remains the greener policy even against smart scheduling;\n\
         on a much cleaner daytime grid the comparison tightens — rerun with your\n\
         own GridIntensity profile to test it."
    );
    Ok(())
}
