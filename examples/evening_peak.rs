//! A popular show on launch night: swarm dynamics over prime time and the
//! theory-vs-simulation comparison of Fig. 2, on a single exemplar item.
//!
//! The workload mirrors the paper's "Bad Education" exemplar: a catalogue
//! headlined by one ~100 K-view episode, ISP-friendly bitrate-split swarms,
//! peers matched closest-first.
//!
//! ```sh
//! cargo run --release --example evening_peak
//! ```

use consume_local::ascii::{self, Chart};
use consume_local::figures::{fig2, Fig2Options, PopularityTier};
use consume_local::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== evening peak: one hit episode, one month ==\n");

    // An exemplar catalogue: 3 items whose view counts ladder down
    // 100K → ~10K → ~2.5K, like the paper's three tiers.
    let mut config = TraceConfig::london_sep2013();
    config.catalogue_size = 3;
    config.popularity = consume_local::trace::popularity::Popularity::Zipf { exponent: 3.35 };
    config.sessions_target = 112_000;
    config.users = 40_000;
    let trace = TraceGenerator::new(config, 2024).generate()?;
    println!(
        "generated {} sessions for {} items over {} days",
        trace.sessions().len(),
        trace.catalogue().len(),
        trace.config().days
    );

    // Hour-by-hour concurrency of the hit item on its broadcast day + 1.
    let hit = consume_local::trace::ContentId(0);
    let bday = trace.catalogue().get(hit).unwrap().broadcast_day.max(0) as u32;
    let mut hourly = [0u32; 48];
    for s in trace.sessions().iter().filter(|s| s.content == hit) {
        let day = s.start.day();
        if day == bday || day == bday + 1 {
            hourly[((day - bday) * 24 + s.start.hour_of_day()) as usize] += 1;
        }
    }
    let series: Vec<(f64, f64)> = hourly
        .iter()
        .enumerate()
        .map(|(h, &n)| (h as f64, f64::from(n)))
        .collect();
    println!("\nsessions per hour, broadcast day and day after (x = hour):");
    println!("{}", Chart::new(64, 10).series('#', &series).render());

    // Theory vs simulation across the q/β sweep (Fig. 2 panels).
    let opts = Fig2Options::default();
    let panels = fig2(&trace, &SimConfig::default(), &opts);

    for tier in [
        PopularityTier::Popular,
        PopularityTier::Medium,
        PopularityTier::Unpopular,
    ] {
        println!("--- {} ---", tier.label());
        let mut rows = Vec::new();
        for panel in panels.iter().filter(|p| p.tier == tier) {
            for ratio in &opts.ratios {
                let dots: Vec<_> = panel
                    .dots
                    .iter()
                    .filter(|d| (d.ratio - ratio).abs() < 1e-9)
                    .collect();
                if dots.is_empty() {
                    continue;
                }
                let mean = |f: fn(&&consume_local::figures::Fig2Dot) -> f64| -> f64 {
                    dots.iter().map(&f).sum::<f64>() / dots.len() as f64
                };
                rows.push(vec![
                    format!("{:?}", panel.model),
                    format!("{ratio}"),
                    format!("{}", dots.len()),
                    format!("{:.2}", mean(|d| d.capacity)),
                    format!("{:.1}%", mean(|d| d.sim) * 100.0),
                    format!("{:.1}%", mean(|d| d.theory) * 100.0),
                ]);
            }
        }
        println!(
            "{}",
            ascii::table(
                &[
                    "model",
                    "q/β",
                    "swarms",
                    "mean capacity",
                    "sim savings",
                    "theory savings"
                ],
                &rows
            )
        );
    }

    println!("theory curves use Eq. 12 with the measured sub-swarm capacities;");
    println!("agreement within a few points of a percent mirrors the paper's Fig. 2.");
    Ok(())
}
