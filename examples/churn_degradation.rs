//! Churn & defection degradation curves.
//!
//! Sweeps the paper point across the robustness axes — churn departure rate
//! (sessions fragmented into availability intervals) and cooperation
//! probability (peers silently defecting per window) — and reports how the
//! energy savings and peer offload degrade. Writes the full
//! `consume-local/sweep-v1` JSON document and exits non-zero if degradation
//! is not sane (a churned or defecting system must never beat the healthy
//! baseline).
//!
//! ```text
//! cargo run --release --example churn_degradation -- \
//!     preset=small seed=42 workers=8 out=target/churn_degradation.json
//! ```
//!
//! Arguments (all optional, `key=value`):
//! * `preset`  — workload scale: `smoke` (default), `small`, `medium`;
//! * `seed`    — master seed (default 42);
//! * `workers` — sweep worker threads (default: available cores, max 16);
//! * `quick`   — `1`/`true` for a reduced two-point axis (also enabled by
//!   the `CL_SWEEP_QUICK` environment variable, as in CI);
//! * `out`     — JSON output path (default `target/churn_degradation.json`).

use consume_local::analytics::{DegradationCurve, DegradationPoint};
use consume_local::prelude::*;

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")).map(str::to_string))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = match arg(&args, "preset").as_deref() {
        None | Some("smoke") => ScalePreset::Smoke,
        Some("small") => ScalePreset::Small,
        Some("medium") => ScalePreset::Medium,
        Some(other) => return Err(format!("unknown preset `{other}`").into()),
    };
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok()
        || matches!(
            arg(&args, "quick").as_deref(),
            Some("1") | Some("true") | Some("yes")
        );

    let mut grid = SweepGrid::churn_degradation(preset);
    if quick {
        // Two churn points, no defection axis: one trace per point, fast
        // enough for the CI bench-quick job while still pinning the
        // monotone-degradation sanity check below.
        grid.churn_rates = vec![0.0, 0.5];
        grid.cooperation = vec![1.0];
    }
    let mut config = SweepConfig {
        grid,
        ..Default::default()
    };
    if let Some(seed) = arg(&args, "seed") {
        config.seed = seed.parse()?;
    }
    if let Some(workers) = arg(&args, "workers") {
        config.workers = workers.parse()?;
    }
    let out_path = arg(&args, "out").unwrap_or_else(|| "target/churn_degradation.json".into());

    let runner = SweepRunner::new(config)?;
    println!(
        "sweeping {} scenarios across churn × cooperation…",
        runner.scenarios().len()
    );
    let report = runner.run();

    // One savings/offload curve over churn rate per cooperation level.
    let mut cooperation_levels: Vec<f64> = report
        .outcomes
        .iter()
        .map(|o| o.scenario.cooperation)
        .collect();
    cooperation_levels.dedup();
    cooperation_levels.sort_by(|a, b| b.partial_cmp(a).expect("finite cooperation"));
    cooperation_levels.dedup();

    let mut sane = true;
    for &cooperation in &cooperation_levels {
        let curve = DegradationCurve::new(
            report
                .outcomes
                .iter()
                .filter(|o| o.scenario.cooperation == cooperation)
                .map(|o| DegradationPoint {
                    axis: o.scenario.churn_rate,
                    savings: o.savings_valancius,
                    offload: o.offload_share,
                })
                .collect(),
        );
        println!("cooperation {:.0}%:", cooperation * 100.0);
        println!("  {:>12} {:>9} {:>9}", "churn/hour", "savings", "offload");
        for p in &curve.points {
            println!(
                "  {:>12} {:>8.1}% {:>8.1}%",
                p.axis,
                p.savings.unwrap_or(0.0) * 100.0,
                p.offload * 100.0
            );
        }
        // Sanity: savings at churn 0 must bound every churned point, and
        // offload must not grow with churn (tiny tolerance: fragmentation
        // reshuffles windows, so exact monotonicity is not guaranteed at
        // smoke scale).
        if !curve.savings_bounded_by_baseline(1e-9) {
            eprintln!("FAIL: a churned point beat the churn-free savings baseline");
            sane = false;
        }
        if !curve.offload_monotone_non_increasing(0.02) {
            eprintln!("FAIL: offload grew materially with churn rate");
            sane = false;
        }
    }
    if let Some(full) = report
        .outcomes
        .iter()
        .find(|o| o.scenario.churn_rate == 0.0 && o.scenario.cooperation >= 1.0)
    {
        for o in &report.outcomes {
            if o.scenario.cooperation < 1.0
                && o.scenario.churn_rate == 0.0
                && o.savings_valancius > full.savings_valancius
            {
                eprintln!("FAIL: defection increased savings");
                sane = false;
            }
        }
    }

    consume_local::export::write_text(&out_path, &report.to_json().render())?;
    println!("wrote {out_path}");
    if !sane {
        return Err("degradation sanity check failed".into());
    }
    println!("degradation sane: churned/defecting runs never beat the healthy baseline");
    Ok(())
}
