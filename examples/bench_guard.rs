//! Benchmark-regression guard for the perf trajectory records.
//!
//! Compares a freshly regenerated `BENCH_*.json` against the committed
//! baseline copy and exits non-zero when any matching wall-time regressed
//! beyond the tolerance — CI's `bench-quick` job runs this after rewriting
//! `BENCH_3.json` in quick mode.
//!
//! ```text
//! cargo run --release --example bench_guard -- \
//!     baseline=/tmp/BENCH_3.baseline.json fresh=BENCH_3.json max-regress=0.25
//! ```
//!
//! The committed baseline and the fresh run usually come from different
//! machines (developer workstation vs CI runner), so raw wall-time ratios
//! conflate machine speed with code regressions. The guard therefore
//! normalises by the **minimum** fresh/baseline ratio across all compared
//! entries, floored at 1 — the least-regressed entry estimates the pure
//! machine-speed difference, and only entries regressing more than
//! `max-regress` *beyond that factor* fail the gate (a uniform slowdown
//! passes; one path regressing relative to the others does not, and an
//! improvement in one section never flags the rest). Pass `no-normalize=1`
//! for a strict same-machine absolute comparison.
//!
//! Wall-times are matched by path: section names, then the
//! `workers`/`threads` label of a `runs[]` entry (stable under reordering),
//! falling back to the array index for unlabeled arrays. Values below 2 ms
//! are skipped (timer noise dominates), as are fields missing from either
//! file (layout changes should not hard-fail history comparisons).

use consume_local::export::json::JsonValue;

/// Recursively collects `(path, wall_ms)` pairs. Array entries are labelled
/// by their `workers`/`threads` field when present (so reordering runs never
/// mismatches), by array position otherwise.
fn collect_walls(
    value: &JsonValue,
    path: &str,
    index_label: Option<usize>,
    out: &mut Vec<(String, f64)>,
) {
    match value {
        JsonValue::Obj(fields) => {
            let label = ["workers", "threads"]
                .iter()
                .find_map(|k| value.get(k).and_then(JsonValue::as_f64))
                .map(|l| format!("{l}"))
                .or(index_label.map(|i| format!("i{i}")));
            for (name, child) in fields {
                if name == "wall_ms" {
                    if let Some(ms) = child.as_f64() {
                        let key = match &label {
                            Some(l) => format!("{path}@{l}"),
                            None => format!("{path}/wall_ms"),
                        };
                        out.push((key, ms));
                    }
                } else {
                    collect_walls(child, &format!("{path}/{name}"), None, out);
                }
            }
        }
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                collect_walls(item, path, Some(i), out);
            }
        }
        _ => {}
    }
}

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")).map(str::to_string))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = arg(&args, "baseline").ok_or("missing baseline=<path>")?;
    let fresh_path = arg(&args, "fresh").ok_or("missing fresh=<path>")?;
    let max_regress: f64 = arg(&args, "max-regress")
        .as_deref()
        .unwrap_or("0.25")
        .parse()?;
    let normalize = arg(&args, "no-normalize").is_none();
    const MIN_COMPARABLE_MS: f64 = 2.0;

    let baseline = JsonValue::parse(&std::fs::read_to_string(&baseline_path)?)
        .map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = JsonValue::parse(&std::fs::read_to_string(&fresh_path)?)
        .map_err(|e| format!("{fresh_path}: {e}"))?;

    let mut baseline_walls = Vec::new();
    collect_walls(&baseline, "", None, &mut baseline_walls);
    let mut fresh_walls = Vec::new();
    collect_walls(&fresh, "", None, &mut fresh_walls);

    // Pair up the comparable entries.
    let mut pairs: Vec<(&String, f64)> = Vec::new();
    for (path, base_ms) in &baseline_walls {
        let Some((_, fresh_ms)) = fresh_walls.iter().find(|(p, _)| p == path) else {
            println!("skip {path}: absent from {fresh_path}");
            continue;
        };
        if *base_ms < MIN_COMPARABLE_MS {
            println!("skip {path}: {base_ms:.2} ms baseline is below the noise floor");
            continue;
        }
        pairs.push((path, fresh_ms / base_ms));
    }
    if pairs.is_empty() {
        return Err("no comparable wall-times found — wrong file pair?".into());
    }

    // The machine-speed factor: the least-regressed entry, floored at 1 —
    // a uniformly *slower* machine relaxes the gate, but a genuine
    // improvement in one section (ratio < 1) must never make unchanged
    // sections look relatively regressed. With a single comparable entry
    // there is nothing to normalise against.
    let machine_factor = if normalize && pairs.len() > 1 {
        pairs
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min)
            .max(1.0)
    } else {
        1.0
    };
    if machine_factor != 1.0 {
        println!("machine-speed factor (min ratio): {machine_factor:.2}×");
    }

    let mut regressions = Vec::new();
    for &(path, ratio) in &pairs {
        let relative = ratio / machine_factor;
        let verdict = if relative > 1.0 + max_regress {
            regressions.push(format!(
                "{path}: {ratio:.2}× vs the {machine_factor:.2}× machine factor (+{:.0}% relative)",
                (relative - 1.0) * 100.0
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!("{verdict:>9} {path}: {ratio:.2}× ({relative:.2}× relative)");
    }

    if !regressions.is_empty() {
        eprintln!(
            "\n{} of {} wall-times regressed more than {:.0}% relative to the machine factor:",
            regressions.len(),
            pairs.len(),
            max_regress * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    println!(
        "all {} wall-times within {:.0}%",
        pairs.len(),
        max_regress * 100.0
    );
    Ok(())
}
