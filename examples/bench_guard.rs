//! Benchmark-regression guard for the perf trajectory records.
//!
//! Compares a freshly regenerated `BENCH_*.json` against a baseline record
//! and exits non-zero when any matching wall-time regressed beyond the
//! tolerance — CI's `bench-quick` job runs this after rewriting the records
//! in quick mode. The comparison semantics live in
//! [`consume_local::benchguard`] (unit-tested there); this binary is the
//! argument parsing and I/O around them.
//!
//! ```text
//! cargo run --release --example bench_guard -- \
//!     baseline=/tmp/BENCH_4.baseline.json fresh=BENCH_4.json max-regress=0.25
//! ```
//!
//! **Baseline selection.** When `CL_BENCH_PREV=<path>` names a readable
//! record — CI passes the previous successful run's uploaded artifact — the
//! guard compares **run-over-run** against it with strict absolute ratios
//! (`Normalisation::None`): the previous run came from the same runner
//! class, so no machine correction applies, and a runner whose *shape*
//! differs from the committed record's machine (e.g. fewer cores slowing
//! only the high-`workers` entries) can no longer false-positive. Without
//! `CL_BENCH_PREV` the guard falls back to the committed record named by
//! `baseline=` and applies the min-ratio machine-factor normalisation
//! (cross-machine mode; see the library docs for both modes' semantics).
//! Pass `no-normalize=1` to force strict ratios against the committed
//! record too (same-machine comparisons).

use consume_local::benchguard::{compare, Comparison, Normalisation};
use consume_local::export::json::JsonValue;

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")).map(str::to_string))
}

fn load(path: &str) -> Result<JsonValue, Box<dyn std::error::Error>> {
    Ok(JsonValue::parse(&std::fs::read_to_string(path)?).map_err(|e| format!("{path}: {e}"))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let committed_path = arg(&args, "baseline").ok_or("missing baseline=<path>")?;
    let fresh_path = arg(&args, "fresh").ok_or("missing fresh=<path>")?;
    let max_regress: f64 = arg(&args, "max-regress")
        .as_deref()
        .unwrap_or("0.25")
        .parse()?;

    // Run-over-run when the previous CI artifact is available (an
    // unreadable/corrupt artifact falls back rather than failing: the first
    // run of a new workflow has no previous artifact to download).
    let prev = std::env::var("CL_BENCH_PREV")
        .ok()
        .and_then(|p| match load(&p) {
            Ok(doc) => Some((p, doc)),
            Err(e) => {
                eprintln!("CL_BENCH_PREV unusable ({e}); falling back to {committed_path}");
                None
            }
        });
    let (baseline_path, baseline, normalisation) = match prev {
        Some((path, doc)) => {
            println!("run-over-run mode: baseline {path} (strict ratios)");
            (path, doc, Normalisation::None)
        }
        None => {
            let normalisation = if arg(&args, "no-normalize").is_some() {
                Normalisation::None
            } else {
                Normalisation::MachineFactor
            };
            (
                committed_path.clone(),
                load(&committed_path)?,
                normalisation,
            )
        }
    };
    let fresh = load(&fresh_path)?;

    let cmp: Comparison = compare(&baseline, &fresh, max_regress, normalisation)?;
    for s in &cmp.skipped {
        println!("     skip {s}");
    }
    if cmp.machine_factor != 1.0 {
        println!(
            "machine-speed factor (min ratio): {:.2}×",
            cmp.machine_factor
        );
    }
    for p in &cmp.pairs {
        let verdict = if p.regressed { "REGRESSED" } else { "ok" };
        println!(
            "{verdict:>9} {}: {:.2}× ({:.2}× relative)",
            p.path, p.ratio, p.relative
        );
    }

    let regressions = cmp.regressions();
    if !regressions.is_empty() {
        eprintln!(
            "\n{} of {} wall-times regressed more than {:.0}% vs {}:",
            regressions.len(),
            cmp.pairs.len(),
            max_regress * 100.0,
            baseline_path
        );
        for r in regressions {
            eprintln!(
                "  {}: {:.2}× vs the {:.2}× machine factor (+{:.0}% relative)",
                r.path,
                r.ratio,
                cmp.machine_factor,
                (r.relative - 1.0) * 100.0
            );
        }
        std::process::exit(1);
    }
    println!(
        "all {} wall-times within {:.0}%",
        cmp.pairs.len(),
        max_regress * 100.0
    );
    Ok(())
}
