//! Carbon credit statements: what each user owes or earns once the CDN
//! transfers its saved server energy to uploaders (Section V / Fig. 6).
//!
//! ```sh
//! cargo run --release --example carbon_statements
//! ```

use consume_local::ascii::{self, Chart};
use consume_local::figures::fig6;
use consume_local::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== carbon credit statements ==\n");

    let exp = Experiment::builder().scale(0.005).seed(99).build()?;
    let report = exp.report();

    // A few individual statements, most-active users first.
    let mut active: Vec<(u32, &consume_local::sim::UserTraffic)> = report.active_users().collect();
    active.sort_by_key(|(_, t)| std::cmp::Reverse(t.watched_bytes));

    let params = EnergyParams::baliga();
    println!("sample statements under the {} model:", params.name());
    let mut rows = Vec::new();
    let picks: Vec<usize> = vec![
        0,
        active.len() / 4,
        active.len() / 2,
        active.len() * 3 / 4,
        active.len() - 1,
    ];
    for idx in picks {
        let (user, traffic) = active[idx];
        let Some(st) = CarbonStatement::new(traffic.watched_bytes, traffic.uploaded_bytes, &params)
        else {
            continue;
        };
        rows.push(vec![
            format!("u{user}"),
            format!("{:.2} GB", st.watched_bytes as f64 / 1e9),
            format!("{:.2} GB", st.uploaded_bytes as f64 / 1e9),
            format!("{:.3} kWh", st.footprint.as_kwh()),
            format!("{:.3} kWh", st.credit.as_kwh()),
            format!("{:+.0}%", st.cct * 100.0),
            st.status.to_string(),
        ]);
    }
    println!(
        "{}",
        ascii::table(
            &[
                "user",
                "watched",
                "uploaded",
                "footprint",
                "credit",
                "CCT",
                "status"
            ],
            &rows
        )
    );

    // The population view: Fig. 6.
    let f6 = fig6(report, 80);
    for (model, credit) in &f6.reports {
        println!(
            "{model:?}: {} users with traffic — {:.1}% carbon positive, median CCT {:+.2}",
            credit.users(),
            credit.carbon_positive_share() * 100.0,
            credit.median_cct().unwrap_or(0.0)
        );
    }

    println!("\nCDF of per-user CCT (v = Valancius, b = Baliga):");
    let v = &f6.series[0].1;
    let b = &f6.series[1].1;
    println!(
        "{}",
        Chart::new(64, 12)
            .y_range(0.0, 1.0)
            .series('v', v)
            .series('b', b)
            .render()
    );

    println!(
        "users pinned at CCT = −1 never uploaded (lonely swarms / niche tastes);\n\
         the paper's full-scale shares are ≈41% (Valancius) and >70% (Baliga)\n\
         carbon positive — scaled runs sit lower, same shape (EXPERIMENTS.md)."
    );
    Ok(())
}
