//! Command-line scenario sweep runner.
//!
//! Expands a named parameter grid, fans it out across threads, prints a
//! per-scenario table and writes the `consume-local/sweep-v1` JSON document
//! for external tooling / trajectory tracking.
//!
//! ```text
//! cargo run --release --example sweep -- \
//!     grid=ablations preset=small seed=42 workers=8 trace-workers=8 \
//!     out=target/sweep.json
//! ```
//!
//! Arguments (all optional, `key=value`):
//! * `grid`    — `point` (default), `quick`, or `ablations`;
//! * `preset`  — scale for `ablations`: `smoke`, `small`, `medium`, `large`;
//! * `seed`    — master seed (default 42);
//! * `workers` — sweep worker threads (default: available cores, max 16);
//! * `trace-workers` — threads inside each trace generation (default:
//!   same as `workers`; the trace bytes are identical either way);
//! * `segmented` — `1`/`true` to stream each trace as per-day segments
//!   through persistent per-scenario engine runs (peak trace memory: one
//!   day instead of the whole horizon; identical outcomes — use for
//!   `large`/`full` presets on small machines);
//! * `out`     — JSON output path (default `target/sweep.json`).

use consume_local::prelude::*;

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")).map(str::to_string))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = match arg(&args, "preset").as_deref() {
        None | Some("smoke") => ScalePreset::Smoke,
        Some("small") => ScalePreset::Small,
        Some("medium") => ScalePreset::Medium,
        Some("large") => ScalePreset::Large,
        Some("full") => ScalePreset::Full,
        Some(other) => return Err(format!("unknown preset `{other}`").into()),
    };
    let grid = match arg(&args, "grid").as_deref() {
        None | Some("point") => SweepGrid::paper_point(),
        Some("quick") => SweepGrid::ci_quick(),
        Some("ablations") => SweepGrid::ablations(preset),
        Some(other) => return Err(format!("unknown grid `{other}`").into()),
    };
    let mut config = SweepConfig {
        grid,
        ..Default::default()
    };
    if let Some(seed) = arg(&args, "seed") {
        config.seed = seed.parse()?;
    }
    if let Some(workers) = arg(&args, "workers") {
        config.workers = workers.parse()?;
    }
    if let Some(trace_workers) = arg(&args, "trace-workers") {
        config.trace_workers = Some(trace_workers.parse()?);
    }
    if let Some(segmented) = arg(&args, "segmented") {
        config.segmented = matches!(segmented.as_str(), "1" | "true" | "yes");
    }
    let out_path = arg(&args, "out").unwrap_or_else(|| "target/sweep.json".into());

    let runner = SweepRunner::new(config)?;
    println!("sweeping {} scenarios…", runner.scenarios().len());
    let report = runner.run();

    println!(
        "{:<52} {:>9} {:>9} {:>10}",
        "scenario", "savings", "offload", "wall"
    );
    for o in &report.outcomes {
        println!(
            "{:<52} {:>8.1}% {:>8.1}% {:>8.0}ms",
            o.scenario.id(),
            o.savings_valancius.unwrap_or(0.0) * 100.0,
            o.offload_share * 100.0,
            o.wall_ms
        );
    }
    if let Some(summary) = report.summary() {
        println!(
            "summary: mean savings {:.1}% (min {:.1}%, max {:.1}%), total wall {:.1} s",
            summary.savings.mean * 100.0,
            summary.savings.min * 100.0,
            summary.savings.max * 100.0,
            summary.total_wall_ms / 1e3
        );
        println!(
            "best scenario: {}",
            report.outcomes[summary.best_savings_index].scenario.id()
        );
    }
    let (generate, columnarize, simulate) = report.phase_wall_ms();
    println!(
        "phases: generate {generate:.0} ms ({} trace{} at {} workers) + columnarize \
         {columnarize:.0} ms + simulate {simulate:.0} ms",
        report.trace_builds.len(),
        if report.trace_builds.len() == 1 {
            ""
        } else {
            "s"
        },
        report.trace_workers
    );

    consume_local::export::write_text(&out_path, &report.to_json().render())?;
    println!("wrote {out_path}");
    Ok(())
}
