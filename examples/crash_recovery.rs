//! Crash-safe checkpointing for a long-running serving engine.
//!
//! Simulates the operational story end to end: a consumer ingests a
//! month-long London trace as a watermarked event stream, snapshotting its
//! engine state after every simulated day close. Mid-month the process is
//! killed — everything in memory is lost — and a successor resumes from
//! the newest snapshot, re-feeding only the events past the checkpoint's
//! watermark. The run then verifies the recovered `SimReport` is
//! **byte-identical** to an uninterrupted run of the same trace and exits
//! non-zero if it is not (CI runs this example as a regression gate).
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use consume_local::prelude::*;
use consume_local::sim::online::faults::{batch_schedule, crash_and_recover, CrashPlan};

const DAY: u64 = 86_400;
const GB: f64 = 1e9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small slice of the paper's London population keeps the example
    // quick; the recovery contract is scale-independent.
    let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.001)?, 42).generate()?;
    let store = SessionStore::from_trace(&trace);
    let sim = Simulator::new(SimConfig::default());

    let reference = sim.simulate(&store);
    println!(
        "uninterrupted run : {} sessions, demand {:.1} GB, offload {:.1}%",
        store.len(),
        reference.total.demand_bytes as f64 / GB,
        100.0 * reference.total.peer_bytes() as f64 / reference.total.demand_bytes as f64,
    );

    // The consumer checkpoints after every day close; the kill lands
    // mid-month on a 6-hour watermark, so the last day in flight is lost
    // and must be replayed from the snapshot.
    let tick = DAY / 4;
    let batches = batch_schedule(&store, tick).len() as u64;
    let crash_after = batches / 2 + 1;
    let path = std::env::temp_dir().join(format!(
        "consume-local-example-crash-{}.ckpt",
        std::process::id()
    ));
    let plan = CrashPlan {
        crash_after_batches: crash_after,
        tick_secs: tick,
        policy: CheckpointPolicy::every_day_closes(1, &path),
    };
    println!(
        "crash plan        : kill after batch {crash_after} of {batches} ({}h ticks), \
         checkpoint every day close",
        tick / 3_600,
    );

    let outcome = crash_and_recover(&sim, &store, &plan)?;
    println!(
        "doomed consumer   : wrote {} snapshots, died at watermark {} s",
        outcome.checkpoints_written,
        crash_after * tick,
    );
    println!(
        "recovery          : resumed from watermark {} s (day {}), re-fed {} of {} events",
        outcome.resumed_from,
        outcome.resumed_from / DAY,
        outcome.refed_events,
        store.len(),
    );

    for suffix in ["", ".prev"] {
        let mut os = path.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(std::path::PathBuf::from(os));
    }

    if outcome.report == reference {
        println!("verdict           : recovered report is byte-identical to the uninterrupted run");
        Ok(())
    } else {
        eprintln!("verdict           : MISMATCH — recovery diverged from the uninterrupted run");
        std::process::exit(1);
    }
}
