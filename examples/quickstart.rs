//! Quickstart: the closed-form model in five minutes, then a small
//! end-to-end simulated experiment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use consume_local::ascii;
use consume_local::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== consume-local quickstart ==\n");

    // ---------------------------------------------------------------
    // 1. The closed-form model (Eq. 12): how much energy does peer
    //    assistance save for a swarm of a given capacity?
    // ---------------------------------------------------------------
    let topology = IspTopology::london_table3()?;
    println!("ISP topology (paper Table III): 345 exchange points, 9 PoPs, 1 core\n");

    let mut rows = Vec::new();
    for capacity in [0.1, 1.0, 10.0, 100.0] {
        let mut row = vec![format!("{capacity}")];
        for params in EnergyParams::published() {
            let model = SavingsModel::new(params, &topology, 1.0)?;
            row.push(format!("{:.1}%", model.savings(capacity) * 100.0));
        }
        rows.push(row);
    }
    println!("Energy savings S(c) at q/β = 1 (Eq. 12):");
    println!(
        "{}",
        ascii::table(&["swarm capacity", "Valancius", "Baliga"], &rows)
    );

    // ---------------------------------------------------------------
    // 2. Carbon credits (Eq. 13): when does streaming become free?
    // ---------------------------------------------------------------
    for params in EnergyParams::published() {
        let credits = CreditModel::new(params);
        let g_star = credits.carbon_neutral_offload();
        println!(
            "{:<10} carbon-neutral offload share G* = {}   CCT at G=1: {:+.0}%",
            params.name(),
            g_star
                .map(|g| format!("{g:.3}"))
                .unwrap_or_else(|| "unreachable".into()),
            credits.asymptotic_cct() * 100.0
        );
    }

    // ---------------------------------------------------------------
    // 3. An end-to-end experiment: synthetic London-like workload,
    //    trace-driven simulation, energy priced under both models.
    // ---------------------------------------------------------------
    println!("\nRunning a 1/1000-scale September-2013 London experiment...");
    let exp = Experiment::builder().scale(0.001).seed(42).build()?;
    let report = exp.report();
    report
        .check_conservation()
        .map_err(|e| format!("conservation: {e}"))?;

    println!(
        "  sessions: {}   swarms: {}   demand: {:.1} GB",
        exp.trace().sessions().len(),
        report.swarms.len(),
        report.total.demand_bytes as f64 / 1e9
    );
    println!(
        "  traffic offloaded to peers: {:.1}%",
        report.total.offload_share() * 100.0
    );
    for params in EnergyParams::published() {
        println!(
            "  system-wide energy savings ({}): {:.1}%",
            params.name(),
            report.total_savings(&params).unwrap_or(0.0) * 100.0
        );
    }
    println!("\nDone. Try the other examples for the paper's individual figures.");
    Ok(())
}
