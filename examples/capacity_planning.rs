//! Network planning with the closed form: the paper argues Eq. 12 "can
//! potentially be used for network planning purposes" — this example asks
//! the planning questions directly.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use consume_local::analytics::planning;
use consume_local::ascii;
use consume_local::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== capacity planning with the closed-form model ==\n");
    let month_secs = 30.0 * 86_400.0;
    let mean_watch_secs = 25.0 * 60.0;

    // Q1: what swarm capacity do I need to hit a savings target?
    println!("Q1. Required swarm capacity (and monthly views) per savings target, q/β = 1:\n");
    let registry = IspRegistry::london_top5();
    let mut rows = Vec::new();
    for params in EnergyParams::published() {
        let topo = &registry.profiles()[0].topology;
        let model = SavingsModel::new(params, topo, 1.0)?;
        for target in [0.10, 0.20, 0.30, 0.40] {
            let row = match planning::capacity_for_savings(&model, target) {
                Some(c) => {
                    let views = planning::views_for_capacity(c, mean_watch_secs, month_secs)
                        .unwrap_or(f64::NAN);
                    vec![
                        params.name().to_string(),
                        format!("{:.0}%", target * 100.0),
                        format!("{c:.2}"),
                        format!("{views:.0}"),
                    ]
                }
                None => vec![
                    params.name().to_string(),
                    format!("{:.0}%", target * 100.0),
                    "unreachable".into(),
                    format!("(asymptote {:.1}%)", model.asymptotic_savings() * 100.0),
                ],
            };
            rows.push(row);
        }
    }
    println!(
        "{}",
        ascii::table(
            &[
                "model",
                "target savings",
                "capacity c",
                "monthly views needed"
            ],
            &rows
        )
    );

    // Q2: when does the average participating user go carbon neutral?
    println!("Q2. Swarm capacity at which streaming turns carbon neutral:\n");
    let mut rows = Vec::new();
    for params in EnergyParams::published() {
        for ratio in [0.6, 0.8, 1.0] {
            let topo = &registry.profiles()[0].topology;
            let savings = SavingsModel::new(params, topo, ratio)?;
            let credits = CreditModel::new(params);
            let answer = match planning::capacity_for_carbon_neutrality(&credits, &savings) {
                Some(c) => format!("c ≥ {c:.1}"),
                None => "unreachable at this q/β".into(),
            };
            rows.push(vec![params.name().to_string(), format!("{ratio}"), answer]);
        }
    }
    println!(
        "{}",
        ascii::table(&["model", "q/β", "carbon-neutral capacity"], &rows)
    );

    // Q3: how do the five London ISPs differ at equal content popularity?
    println!("Q3. Savings at capacity 10 across the registry (topology effect only):\n");
    let mut rows = Vec::new();
    for profile in registry.profiles() {
        let mut row = vec![
            profile.name.clone(),
            format!("{:.0}%", profile.market_share * 100.0),
            format!(
                "{}/{}",
                profile.topology.node_count(Layer::ExchangePoint),
                profile.topology.node_count(Layer::PointOfPresence)
            ),
        ];
        for params in EnergyParams::published() {
            let m = SavingsModel::new(params, &profile.topology, 1.0)?;
            row.push(format!("{:.1}%", m.savings(10.0) * 100.0));
        }
        rows.push(row);
    }
    println!(
        "{}",
        ascii::table(
            &["ISP", "share", "ExP/PoP", "Valancius S(10)", "Baliga S(10)"],
            &rows
        )
    );
    println!(
        "smaller trees localise the same swarm better (higher p_exp), but in production\n\
         their sub-swarms are smaller — the simulation figures capture both effects."
    );
    Ok(())
}
