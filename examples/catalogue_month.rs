//! A month of the whole catalogue: Table I statistics, the capacity/savings
//! distributions of Fig. 3 and the per-ISP daily aggregates of Fig. 4, at a
//! configurable scale.
//!
//! ```sh
//! cargo run --release --example catalogue_month            # scale 0.01
//! CL_SCALE=0.05 cargo run --release --example catalogue_month
//! ```

use consume_local::ascii::{self, Chart};
use consume_local::figures::{fig3, fig4, tables};
use consume_local::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::var("CL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("== one month of catch-up TV at scale {scale} ==\n");

    let exp = Experiment::builder().scale(scale).seed(7).build()?;
    let report = exp.report();
    report
        .check_conservation()
        .map_err(|e| format!("conservation: {e}"))?;

    // Table I.
    let table1 = tables::table1("Sep 2013", exp.trace(), scale);
    println!(
        "{}",
        table1.render(consume_local::trace::stats::PAPER_SEP2013)
    );

    // Fig. 3: distributions over the catalogue's swarms.
    let f3 = fig3(report);
    println!("CCDF of per-swarm capacity ({} swarms, log x):", f3.swarms);
    println!(
        "{}",
        Chart::new(60, 10)
            .log_x()
            .y_range(0.0, 1.0)
            .series('o', &f3.capacity_ccdf)
            .render()
    );
    for (model, median) in &f3.median_savings {
        let top = f3
            .top1pct_savings
            .iter()
            .find(|(m, _)| m == model)
            .unwrap()
            .1;
        println!(
            "{model:?}: median per-swarm savings {:.1}%   top-1% swarms {:.1}%",
            median * 100.0,
            top * 100.0
        );
    }

    // Fig. 4: daily savings for ISPs 1, 4 and 5 (paper's selection).
    let registry = exp.trace().config().registry.clone();
    let series = fig4(report, &registry, &[IspId(0), IspId(3), IspId(4)]);
    println!("\nDaily aggregate savings across the month (sim vs theory):");
    let mut rows = Vec::new();
    for s in &series {
        let sim_mean = s.sim_monthly_mean();
        let theory_mean = if s.theory.is_empty() {
            0.0
        } else {
            s.theory.iter().map(|(_, v)| v).sum::<f64>() / s.theory.len() as f64
        };
        rows.push(vec![
            s.isp.to_string(),
            format!("{:?}", s.model),
            format!("{:.1}%", sim_mean * 100.0),
            format!("{:.1}%", theory_mean * 100.0),
        ]);
    }
    println!(
        "{}",
        ascii::table(
            &["ISP", "model", "sim monthly mean", "theory monthly mean"],
            &rows
        )
    );

    // A chart of the biggest ISP's daily series under Valancius.
    if let Some(s) = series
        .iter()
        .find(|s| s.isp == IspId(0) && s.model == consume_local::energy::ModelKind::Valancius)
    {
        let sim: Vec<(f64, f64)> = s.sim.iter().map(|&(d, v)| (f64::from(d), v)).collect();
        let theory: Vec<(f64, f64)> = s.theory.iter().map(|&(d, v)| (f64::from(d), v)).collect();
        println!("ISP-1, Valancius: daily savings (s = sim, t = theory):");
        println!(
            "{}",
            Chart::new(62, 12)
                .series('t', &theory)
                .series('s', &sim)
                .render()
        );
    }

    println!(
        "note: at scale {scale} the catalogue head is truncated, so absolute savings sit\n\
         below the paper's full-scale 30%/18% headline; the ISP and model orderings and\n\
         the day-to-day shape are scale-invariant (see EXPERIMENTS.md)."
    );
    Ok(())
}
