//! Grid carbon intensity: converting energy into CO₂.
//!
//! The paper works in energy and treats carbon as proportional ("we only
//! require the calculated energy to be roughly proportional to the actual
//! energy consumed"). This module makes the conversion explicit so carbon
//! statements can be written in grams of CO₂: a [`GridIntensity`] maps
//! joules to grams, optionally with an hour-of-day profile — the UK grid is
//! measurably cleaner overnight, which matters for scheduling-style
//! extensions (preloading at night consumes *greener* energy even though it
//! forgoes peer sharing).

use serde::{Deserialize, Serialize};

use consume_local_energy::Energy;

/// Grams of CO₂ emitted per kWh drawn from the grid, with an optional
/// hour-of-day profile.
///
/// # Example
///
/// ```
/// use consume_local_carbon::GridIntensity;
/// use consume_local_energy::Energy;
///
/// let grid = GridIntensity::uk_2013();
/// let one_kwh = Energy::from_joules(3.6e6);
/// assert!((grid.grams_for(one_kwh) - 500.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridIntensity {
    /// Mean intensity in gCO₂/kWh.
    mean_g_per_kwh: f64,
    /// Multiplicative hour-of-day factors (mean 1), or `None` for a flat
    /// profile.
    hourly_factors: Option<[f64; 24]>,
}

impl GridIntensity {
    /// The approximate 2013 UK grid average: 500 gCO₂/kWh (coal still in
    /// the mix), flat across the day.
    pub fn uk_2013() -> Self {
        Self {
            mean_g_per_kwh: 500.0,
            hourly_factors: None,
        }
    }

    /// The 2013 UK grid with a diurnal swing: overnight wind/nuclear share
    /// pushes intensity ≈15 % below the mean, the evening peak ≈10 % above.
    pub fn uk_2013_diurnal() -> Self {
        let raw: [f64; 24] = [
            0.86, 0.85, 0.85, 0.85, 0.86, 0.88, 0.93, 0.99, 1.03, 1.04, 1.04, 1.04, // 0-11
            1.03, 1.03, 1.02, 1.03, 1.05, 1.08, 1.10, 1.10, 1.08, 1.04, 0.97, 0.90, // 12-23
        ];
        Self::with_profile(500.0, raw).expect("static profile is valid")
    }

    /// A flat intensity at `g_per_kwh`.
    ///
    /// Returns `None` for a non-finite or negative value.
    pub fn flat(g_per_kwh: f64) -> Option<Self> {
        if !g_per_kwh.is_finite() || g_per_kwh < 0.0 {
            return None;
        }
        Some(Self {
            mean_g_per_kwh: g_per_kwh,
            hourly_factors: None,
        })
    }

    /// A diurnal intensity: `mean_g_per_kwh` scaled by 24 positive hourly
    /// factors (normalised so their mean is exactly 1).
    ///
    /// Returns `None` for non-positive/non-finite inputs.
    pub fn with_profile(mean_g_per_kwh: f64, factors: [f64; 24]) -> Option<Self> {
        if !mean_g_per_kwh.is_finite() || mean_g_per_kwh < 0.0 {
            return None;
        }
        if factors.iter().any(|f| !f.is_finite() || *f <= 0.0) {
            return None;
        }
        let mean: f64 = factors.iter().sum::<f64>() / 24.0;
        let mut normalised = factors;
        for f in &mut normalised {
            *f /= mean;
        }
        Some(Self {
            mean_g_per_kwh,
            hourly_factors: Some(normalised),
        })
    }

    /// The day-mean intensity in gCO₂/kWh.
    pub fn mean_g_per_kwh(&self) -> f64 {
        self.mean_g_per_kwh
    }

    /// Grams of CO₂ for `energy` drawn at the day-average intensity.
    pub fn grams_for(&self, energy: Energy) -> f64 {
        energy.as_kwh() * self.mean_g_per_kwh
    }

    /// Grams of CO₂ for `energy` drawn during hour `hour` (0–23).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn grams_at_hour(&self, energy: Energy, hour: u32) -> f64 {
        assert!(hour < 24, "hour must be < 24, got {hour}");
        let factor = self.hourly_factors.map(|f| f[hour as usize]).unwrap_or(1.0);
        energy.as_kwh() * self.mean_g_per_kwh * factor
    }

    /// The cleanest hour of the day (ties resolve to the earliest hour).
    pub fn cleanest_hour(&self) -> u32 {
        match self.hourly_factors {
            None => 0,
            Some(f) => {
                let mut best = (0u32, f64::INFINITY);
                for (h, &x) in f.iter().enumerate() {
                    if x < best.1 {
                        best = (h as u32, x);
                    }
                }
                best.0
            }
        }
    }

    /// The carbon advantage of shifting `energy` from `from_hour` to
    /// `to_hour`: positive grams saved when the destination is cleaner.
    /// The night-preloading question in one call.
    pub fn shift_saving(&self, energy: Energy, from_hour: u32, to_hour: u32) -> f64 {
        self.grams_at_hour(energy, from_hour) - self.grams_at_hour(energy, to_hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_conversion() {
        let g = GridIntensity::uk_2013();
        assert_eq!(g.mean_g_per_kwh(), 500.0);
        // 7.2 MJ = 2 kWh → 1000 g.
        let e = Energy::from_joules(7.2e6);
        assert!((g.grams_for(e) - 1000.0).abs() < 1e-9);
        // Flat profile: every hour identical.
        assert_eq!(g.grams_at_hour(e, 3), g.grams_at_hour(e, 20));
        assert_eq!(g.cleanest_hour(), 0);
    }

    #[test]
    fn diurnal_profile_normalised_and_ordered() {
        let g = GridIntensity::uk_2013_diurnal();
        let e = Energy::from_joules(3.6e6); // 1 kWh
                                            // The 24-hour mean must equal the flat mean.
        let daily_mean: f64 = (0..24).map(|h| g.grams_at_hour(e, h)).sum::<f64>() / 24.0;
        assert!((daily_mean - 500.0).abs() < 1e-9);
        // Night is cleaner than the evening peak.
        assert!(g.grams_at_hour(e, 3) < g.grams_at_hour(e, 19));
        let cleanest = g.cleanest_hour();
        assert!((0..6).contains(&cleanest), "cleanest hour {cleanest}");
    }

    #[test]
    fn shift_saving_sign() {
        let g = GridIntensity::uk_2013_diurnal();
        let e = Energy::from_joules(3.6e6);
        // Shifting load from the evening peak to the night saves carbon.
        assert!(g.shift_saving(e, 19, 3) > 0.0);
        assert!(g.shift_saving(e, 3, 19) < 0.0);
        assert_eq!(g.shift_saving(e, 10, 10), 0.0);
    }

    #[test]
    fn validation() {
        assert!(GridIntensity::flat(-1.0).is_none());
        assert!(GridIntensity::flat(f64::NAN).is_none());
        assert!(GridIntensity::with_profile(500.0, [0.0; 24]).is_none());
        let mut bad = [1.0; 24];
        bad[5] = f64::INFINITY;
        assert!(GridIntensity::with_profile(500.0, bad).is_none());
        assert!(GridIntensity::with_profile(500.0, [2.0; 24]).is_some());
    }

    #[test]
    #[should_panic(expected = "hour must be < 24")]
    fn rejects_bad_hour() {
        let _ = GridIntensity::uk_2013().grams_at_hour(Energy::ZERO, 24);
    }

    #[test]
    fn statement_in_grams() {
        // A user watching 50 GB/month with full reciprocity under Baliga:
        // footprint and credit in grams are proportional to the energies.
        use crate::CarbonStatement;
        use consume_local_energy::EnergyParams;
        let st =
            CarbonStatement::new(50_000_000_000, 50_000_000_000, &EnergyParams::baliga()).unwrap();
        let grid = GridIntensity::uk_2013();
        let foot_g = grid.grams_for(st.footprint);
        let credit_g = grid.grams_for(st.credit);
        assert!(foot_g > 0.0);
        // CCT in grams equals CCT in energy (intensity cancels).
        let cct_g = (credit_g - foot_g) / foot_g;
        assert!((cct_g - st.cct).abs() < 1e-9);
    }
}
