//! Population-level credit reporting (Fig. 6).

use serde::{Deserialize, Serialize};

use consume_local_energy::EnergyParams;
use consume_local_stats::Edf;

use crate::statement::{CarbonStatement, CarbonStatus};

/// The population view of the carbon credit transfer: the distribution of
/// per-user CCT values under one energy parameter set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreditReport {
    cct: Edf,
    positive: u64,
    neutral: u64,
    negative: u64,
}

impl CreditReport {
    /// Builds the report from `(watched_bytes, uploaded_bytes)` pairs.
    /// Users who watched nothing are skipped (they have no footprint).
    pub fn from_traffic<I>(traffic: I, params: &EnergyParams) -> Self
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut ccts = Vec::new();
        let (mut positive, mut neutral, mut negative) = (0u64, 0u64, 0u64);
        for (watched, uploaded) in traffic {
            let Some(st) = CarbonStatement::new(watched, uploaded, params) else {
                continue;
            };
            ccts.push(st.cct);
            match st.status {
                CarbonStatus::Positive => positive += 1,
                CarbonStatus::Neutral => neutral += 1,
                CarbonStatus::Negative => negative += 1,
            }
        }
        Self {
            cct: Edf::from_samples(ccts),
            positive,
            neutral,
            negative,
        }
    }

    /// Number of users with a statement (watched > 0).
    pub fn users(&self) -> u64 {
        self.cct.len() as u64
    }

    /// Users whose credit exceeds their footprint.
    pub fn carbon_positive(&self) -> u64 {
        self.positive
    }

    /// Users within the neutrality tolerance.
    pub fn carbon_neutral(&self) -> u64 {
        self.neutral
    }

    /// Users whose footprint exceeds their credit.
    pub fn carbon_negative(&self) -> u64 {
        self.negative
    }

    /// Share of users who become carbon positive — the paper's headline
    /// "≈41 % (Valancius) / >70 % (Baliga)".
    pub fn carbon_positive_share(&self) -> f64 {
        if self.users() == 0 {
            0.0
        } else {
            self.positive as f64 / self.users() as f64
        }
    }

    /// Median per-user CCT.
    pub fn median_cct(&self) -> Option<f64> {
        self.cct.median()
    }

    /// The empirical CCT distribution.
    pub fn distribution(&self) -> &Edf {
        &self.cct
    }

    /// The Fig. 6 series: CDF of per-user CCT over `[−1, 0.6]`.
    pub fn fig6_series(&self, points: usize) -> Vec<(f64, f64)> {
        self.cct.cdf_linear_series(-1.0, 0.6, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_share() {
        let params = EnergyParams::baliga();
        let report = CreditReport::from_traffic(
            [
                (1_000, 1_000), // strongly positive
                (1_000, 0),     // −1
                (1_000, 0),     // −1
                (0, 0),         // skipped
            ],
            &params,
        );
        assert_eq!(report.users(), 3);
        assert_eq!(report.carbon_positive(), 1);
        assert_eq!(report.carbon_negative(), 2);
        assert_eq!(report.carbon_neutral(), 0);
        assert!((report.carbon_positive_share() - 1.0 / 3.0).abs() < 1e-12);
        assert!(report.median_cct().unwrap() < 0.0);
    }

    #[test]
    fn counts_partition_users() {
        let params = EnergyParams::valancius();
        let traffic: Vec<(u64, u64)> = (0..100).map(|i| (1_000, i * 25)).collect();
        let report = CreditReport::from_traffic(traffic, &params);
        assert_eq!(
            report.carbon_positive() + report.carbon_neutral() + report.carbon_negative(),
            report.users()
        );
    }

    #[test]
    fn baliga_more_generous_than_valancius() {
        // Same population, both models: Baliga's cheaper CDN path yields a
        // higher server γ relative to modem cost ⇒ more positive users.
        let traffic: Vec<(u64, u64)> = (0..200).map(|i| (1_000, i * 5)).collect();
        let v = CreditReport::from_traffic(traffic.iter().copied(), &EnergyParams::valancius());
        let b = CreditReport::from_traffic(traffic.iter().copied(), &EnergyParams::baliga());
        assert!(b.carbon_positive() > v.carbon_positive());
    }

    #[test]
    fn fig6_series_is_monotone_cdf() {
        // Uploads never exceed watched traffic (q/β ≤ 1 in the simulator),
        // so CCT stays below the G = 1 asymptote of 0.58 (Baliga).
        let traffic: Vec<(u64, u64)> = (0..50).map(|i| (1_000, i * 20)).collect();
        let report = CreditReport::from_traffic(traffic, &EnergyParams::baliga());
        let series = report.fig6_series(64);
        assert_eq!(series.len(), 64);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!(
            (series.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF reaches 1 by 0.6"
        );
    }

    #[test]
    fn empty_population() {
        let report = CreditReport::from_traffic(std::iter::empty(), &EnergyParams::valancius());
        assert_eq!(report.users(), 0);
        assert_eq!(report.carbon_positive_share(), 0.0);
        assert_eq!(report.median_cct(), None);
    }
}
