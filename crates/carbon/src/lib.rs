//! Carbon-credit transfer accounting (Section V of the paper).
//!
//! The simulator reports how much each user watched and uploaded; this crate
//! turns those totals into **carbon statements** — the per-user credit
//! balance after the CDN transfers its saved server energy to uploaders —
//! and aggregates them into the population-level view of Fig. 6 (the CDF of
//! per-user CCT and the share of users who become carbon positive).
//!
//! # Example
//!
//! ```
//! use consume_local_carbon::{CarbonStatement, CreditReport};
//! use consume_local_energy::EnergyParams;
//!
//! let params = EnergyParams::baliga();
//! // A user who watched 1 GB and uploaded 800 MB to peers:
//! let st = CarbonStatement::new(1_000_000_000, 800_000_000, &params).unwrap();
//! assert!(st.cct > 0.0, "this user is carbon positive: {}", st.cct);
//!
//! // Population view over three users:
//! let report = CreditReport::from_traffic(
//!     [(1_000_000_000, 800_000_000), (500_000_000, 0), (2_000_000_000, 900_000_000)],
//!     &params,
//! );
//! assert_eq!(report.users(), 3);
//! assert!(report.carbon_positive_share() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod intensity;
mod report;
mod statement;

pub use intensity::GridIntensity;
pub use report::CreditReport;
pub use statement::{CarbonStatement, CarbonStatus};
