//! Per-user carbon statements.

use std::fmt;

use serde::{Deserialize, Serialize};

use consume_local_analytics::CreditModel;
use consume_local_energy::{CostModel, Energy, EnergyParams, Traffic};

/// Whether a user's streaming ends up carbon positive after the credit
/// transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CarbonStatus {
    /// Credit exceeds the footprint (CCT > tolerance).
    Positive,
    /// Credit within ±tolerance of the footprint.
    Neutral,
    /// Footprint exceeds the credit (CCT < −tolerance).
    Negative,
}

impl CarbonStatus {
    /// Classification tolerance on the normalised CCT.
    pub const TOLERANCE: f64 = 1e-3;

    /// Classifies a normalised CCT value.
    pub fn of(cct: f64) -> Self {
        if cct > Self::TOLERANCE {
            CarbonStatus::Positive
        } else if cct < -Self::TOLERANCE {
            CarbonStatus::Negative
        } else {
            CarbonStatus::Neutral
        }
    }
}

impl fmt::Display for CarbonStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CarbonStatus::Positive => "carbon-positive",
            CarbonStatus::Neutral => "carbon-neutral",
            CarbonStatus::Negative => "carbon-negative",
        };
        f.write_str(s)
    }
}

/// One user's carbon accounting for the traced period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonStatement {
    /// Bytes the user streamed.
    pub watched_bytes: u64,
    /// Bytes the user uploaded to peers.
    pub uploaded_bytes: u64,
    /// The user's own premises-equipment energy (`l·γ_m` over every
    /// transferred bit, down and up).
    pub footprint: Energy,
    /// The credit transferred from the CDN (`PUE·γ_s` per uploaded bit).
    pub credit: Energy,
    /// Normalised balance (Eq. 13): `(credit − footprint)/footprint`.
    pub cct: f64,
    /// Classification of the balance.
    pub status: CarbonStatus,
}

impl CarbonStatement {
    /// Builds the statement for a user under an energy parameter set.
    ///
    /// Returns `None` for a user who watched nothing (no footprint to
    /// normalise by; such users are excluded from Fig. 6, as in the paper
    /// which plots *users of the service*).
    pub fn new(watched_bytes: u64, uploaded_bytes: u64, params: &EnergyParams) -> Option<Self> {
        let credits = CreditModel::new(*params);
        let cct = credits.cct_from_traffic(watched_bytes, uploaded_bytes)?;
        let cost = CostModel::new(*params);
        let footprint_per_bit = cost.user_premises_cost_per_bit();
        let transferred = Traffic::from_bytes(watched_bytes + uploaded_bytes);
        Some(Self {
            watched_bytes,
            uploaded_bytes,
            footprint: footprint_per_bit.energy_for(transferred),
            credit: cost
                .cdn_saving_per_bit()
                .energy_for(Traffic::from_bytes(uploaded_bytes)),
            cct,
            status: CarbonStatus::of(cct),
        })
    }

    /// The user's upload-to-watch ratio (an empirical per-user `G`).
    pub fn upload_share(&self) -> f64 {
        if self.watched_bytes == 0 {
            0.0
        } else {
            self.uploaded_bytes as f64 / self.watched_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_sharer_is_fully_negative() {
        for params in EnergyParams::published() {
            let st = CarbonStatement::new(1_000_000, 0, &params).unwrap();
            assert!(
                (st.cct + 1.0).abs() < 1e-12,
                "CCT must be −1, got {}",
                st.cct
            );
            assert_eq!(st.status, CarbonStatus::Negative);
            assert_eq!(st.credit, Energy::ZERO);
            assert!(st.footprint.as_joules() > 0.0);
        }
    }

    #[test]
    fn idle_user_has_no_statement() {
        assert!(CarbonStatement::new(0, 0, &EnergyParams::valancius()).is_none());
        assert!(CarbonStatement::new(0, 10, &EnergyParams::valancius()).is_none());
    }

    #[test]
    fn full_reciprocity_matches_paper_asymptote() {
        // uploaded == watched is the per-user analogue of G = 1: +18 %
        // (Valancius) / +58 % (Baliga).
        let v = CarbonStatement::new(1_000_000, 1_000_000, &EnergyParams::valancius()).unwrap();
        assert!((v.cct - 0.18).abs() < 0.01, "Valancius {}", v.cct);
        let b = CarbonStatement::new(1_000_000, 1_000_000, &EnergyParams::baliga()).unwrap();
        assert!((b.cct - 0.58).abs() < 0.01, "Baliga {}", b.cct);
        assert_eq!(v.status, CarbonStatus::Positive);
    }

    #[test]
    fn energies_scale_with_traffic() {
        let params = EnergyParams::baliga();
        let small = CarbonStatement::new(1_000, 500, &params).unwrap();
        let large = CarbonStatement::new(2_000, 1_000, &params).unwrap();
        assert!((large.footprint.as_joules() / small.footprint.as_joules() - 2.0).abs() < 1e-9);
        assert!((large.credit.as_joules() / small.credit.as_joules() - 2.0).abs() < 1e-9);
        // CCT is scale-free.
        assert!((large.cct - small.cct).abs() < 1e-12);
    }

    #[test]
    fn status_classification() {
        assert_eq!(CarbonStatus::of(0.5), CarbonStatus::Positive);
        assert_eq!(CarbonStatus::of(-0.5), CarbonStatus::Negative);
        assert_eq!(CarbonStatus::of(0.0), CarbonStatus::Neutral);
        assert_eq!(
            CarbonStatus::of(CarbonStatus::TOLERANCE / 2.0),
            CarbonStatus::Neutral
        );
        assert_eq!(CarbonStatus::Positive.to_string(), "carbon-positive");
    }

    #[test]
    fn upload_share() {
        let st = CarbonStatement::new(1_000, 250, &EnergyParams::valancius()).unwrap();
        assert!((st.upload_share() - 0.25).abs() < 1e-12);
    }
}
