//! The rule set and the per-file scan.
//!
//! Every rule guards one documented determinism / concurrency invariant of
//! the workspace (see ARCHITECTURE.md § Enforced invariants):
//!
//! | rule | invariant |
//! |---|---|
//! | `no-thread-spawn` | all parallelism flows through the slot-ordered `stats::par` primitives |
//! | `no-entropy-rng` | every RNG is explicitly seeded; no ambient entropy |
//! | `no-wall-clock` | wall-clock values never reach an output path outside benches/telemetry |
//! | `hash-iter` | hash-table iteration order never reaches an output path |
//! | `crate-header` | every crate root forbids `unsafe` and keeps the docs policy |
//! | `bench-record-schema` | committed `BENCH_*.json` records stay parseable and well-formed |
//! | `deprecated-sim-entry` | internal code feeds the engine through `Simulator::simulate`, not the deprecated `run_*` wrappers |
//! | `snapshot-format` | every snapshot byte flows through the `checkpoint` envelope codec — no raw byte I/O in the sim crate |
//!
//! A finding can be suppressed with an inline pragma on the same line or on
//! a comment line directly above the offending line:
//!
//! ```text
//! // lint:allow(no-wall-clock) wall_ms telemetry; omitted from deterministic JSON
//! let start = Instant::now();
//! ```
//!
//! The justification after the closing parenthesis is **mandatory** — an
//! empty one, an unknown rule name, or a pragma that suppresses nothing is
//! itself reported (as `allow-pragma`), so stale escape hatches cannot
//! accumulate.

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// The lint rules. `AllowPragma` is the meta-rule for malformed or unused
/// `lint:allow` pragmas; it cannot itself be allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::thread::{spawn,scope,Builder}` outside `stats::par`.
    NoThreadSpawn,
    /// Ambient-entropy RNG construction (`thread_rng`, `from_entropy`, ...).
    NoEntropyRng,
    /// `Instant` / `SystemTime` outside the bench/timing allowlist.
    NoWallClock,
    /// Iteration over `HashMap` / `HashSet` without a justification.
    HashIter,
    /// Missing `#![forbid(unsafe_code)]` / missing-docs policy on a crate root.
    CrateHeader,
    /// A committed `BENCH_*.json` record violating `consume-local/bench-v1`.
    BenchRecordSchema,
    /// A call to a deprecated `Simulator::run_*` wrapper inside the
    /// workspace (downstream users get the rustc deprecation warning; this
    /// keeps our own code off the legacy entry points).
    DeprecatedSimEntry,
    /// Raw byte-level codec calls (`write_all`, `read_exact`,
    /// `to_le_bytes`, `from_le_bytes`) in the sim crate outside
    /// `checkpoint.rs` — snapshot bytes must flow through the versioned,
    /// digest-covered `SnapshotWriter` / `SnapshotReader` envelope.
    SnapshotFormat,
    /// Malformed or unused `lint:allow` pragma.
    AllowPragma,
}

impl Rule {
    /// The rule's diagnostic name (what `lint:allow(...)` takes).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoThreadSpawn => "no-thread-spawn",
            Rule::NoEntropyRng => "no-entropy-rng",
            Rule::NoWallClock => "no-wall-clock",
            Rule::HashIter => "hash-iter",
            Rule::CrateHeader => "crate-header",
            Rule::BenchRecordSchema => "bench-record-schema",
            Rule::DeprecatedSimEntry => "deprecated-sim-entry",
            Rule::SnapshotFormat => "snapshot-format",
            Rule::AllowPragma => "allow-pragma",
        }
    }

    /// Parses a rule name as written in a pragma. `allow-pragma` is not
    /// accepted: the meta-rule cannot be silenced.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-thread-spawn" => Some(Rule::NoThreadSpawn),
            "no-entropy-rng" => Some(Rule::NoEntropyRng),
            "no-wall-clock" => Some(Rule::NoWallClock),
            "hash-iter" => Some(Rule::HashIter),
            "crate-header" => Some(Rule::CrateHeader),
            "bench-record-schema" => Some(Rule::BenchRecordSchema),
            "deprecated-sim-entry" => Some(Rule::DeprecatedSimEntry),
            "snapshot-format" => Some(Rule::SnapshotFormat),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One `file:line` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding (1 for file-level findings).
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation, including the invariant at stake.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How the workspace walker classified a file; drives which rules apply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// A crate root (`src/lib.rs` / `src/main.rs` of a member): the
    /// `crate-header` rule applies.
    pub crate_root: bool,
    /// Crate roots of product crates must also carry the missing-docs
    /// policy (shims mirror external crate APIs and are exempt).
    pub require_missing_docs: bool,
    /// `Instant` / `SystemTime` are legitimate here (bench harnesses and
    /// the criterion shim).
    pub wall_clock_allowed: bool,
    /// `std::thread::{spawn,scope}` is legitimate here — only
    /// `crates/stats/src/par.rs`, the home of the slot-ordered primitives.
    pub thread_spawn_allowed: bool,
    /// The `snapshot-format` rule applies: sim-crate sources (except the
    /// `checkpoint` module, which *is* the envelope codec) may not do raw
    /// byte-level I/O.
    pub snapshot_guarded: bool,
}

/// Identifiers that construct ambient-entropy RNGs. None of these exist in
/// the offline `rand` shim today; the rule is the tripwire that keeps it
/// that way if the real `rand` crate is ever swapped back in.
const ENTROPY_IDENTS: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_os_rng",
    "getrandom",
];

/// Methods whose receiver order is the hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// The deprecated `Simulator` entry points: thin wrappers kept for
/// downstream callers mid-migration, off-limits to workspace code. The
/// bare `run` wrapper is deliberately absent — `.run(` is far too common a
/// shape (sweeps, builders) to match on method name alone; its callers are
/// caught by the rustc deprecation warning under `-D warnings` instead.
const DEPRECATED_SIM_ENTRIES: &[&str] = &[
    "run_store",
    "run_segmented",
    "run_trace_stream",
    "begin_segmented",
];

/// Raw byte-codec calls that would let snapshot state bypass the
/// `checkpoint` envelope (its version header and FNV digest cover only
/// bytes that flow through `SnapshotWriter` / `SnapshotReader`).
const RAW_CODEC_CALLS: &[&str] = &["write_all", "read_exact", "to_le_bytes", "from_le_bytes"];

/// Lints one source file. `file` is the workspace-relative path used in
/// diagnostics; `class` is the walker's classification.
pub fn lint_source(file: &str, source: &str, class: &FileClass) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut findings: Vec<Diagnostic> = Vec::new();
    let diag = |line: u32, rule: Rule, message: String| Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
    };

    scan_tokens(&lexed, class, &mut |line, rule, message| {
        findings.push(diag(line, rule, message));
    });

    if class.crate_root {
        check_crate_header(file, &lexed, class, &mut findings);
    }

    apply_pragmas(file, &lexed, findings)
}

/// Matches `pattern` against the token texts starting at `at`.
fn matches_seq(tokens: &[Token<'_>], at: usize, pattern: &[&str]) -> bool {
    tokens.len() >= at + pattern.len()
        && pattern
            .iter()
            .zip(&tokens[at..])
            .all(|(want, tok)| *want == tok.text)
}

fn is_ident(tok: &Token<'_>) -> bool {
    tok.kind == TokenKind::Ident
}

/// Runs the token-pattern rules, emitting `(line, rule, message)` findings.
fn scan_tokens(lexed: &Lexed<'_>, class: &FileClass, emit: &mut dyn FnMut(u32, Rule, String)) {
    let ts = &lexed.tokens;

    // Pass 1: identifiers bound to a hash collection in this file (let
    // bindings and struct fields with `: HashMap<...>` ascriptions, and
    // `name = HashMap::new()`-style initialisations).
    let mut hash_bound: Vec<&str> = Vec::new();
    for (i, tok) in ts.iter().enumerate() {
        if !(tok.text == "HashMap" || tok.text == "HashSet") || !is_ident(tok) {
            continue;
        }
        // Walk back over a qualified-path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && ts[j - 1].text == ":" && ts[j - 2].text == ":" {
            j -= 2;
            if j >= 1 && is_ident(&ts[j - 1]) {
                j -= 1;
            } else {
                break;
            }
        }
        // Skip reference/mutability sigils: `m: &HashMap<..>`, `&mut HashMap`.
        while j >= 1 && matches!(ts[j - 1].text, "&" | "mut") {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let before = &ts[j - 1];
        let name = match before.text {
            // `name: HashMap<...>` (let ascription, struct field, fn param).
            ":" if j >= 2 && is_ident(&ts[j - 2]) => ts[j - 2].text,
            // `name = HashMap::new()` / `let mut name = HashMap::new()`.
            "=" if j >= 2 && is_ident(&ts[j - 2]) => ts[j - 2].text,
            _ => continue,
        };
        if !matches!(name, "let" | "mut" | "pub") && !hash_bound.contains(&name) {
            hash_bound.push(name);
        }
    }

    for (i, tok) in ts.iter().enumerate() {
        if !is_ident(tok) {
            continue;
        }
        // no-thread-spawn: `thread :: spawn | scope | Builder`.
        if tok.text == "thread" && !class.thread_spawn_allowed {
            for target in ["spawn", "scope", "Builder"] {
                if matches_seq(ts, i + 1, &[":", ":", target]) {
                    emit(
                        ts[i + 3].line,
                        Rule::NoThreadSpawn,
                        format!(
                            "`thread::{target}` outside `stats::par` — all fan-out must go \
                             through the slot-ordered `parallel_map` / `parallel_map_slices` \
                             primitives so results are byte-identical at any worker count"
                        ),
                    );
                }
            }
        }
        // no-entropy-rng: ambient-entropy constructors, plus `rand::random`.
        if ENTROPY_IDENTS.contains(&tok.text) {
            emit(
                tok.line,
                Rule::NoEntropyRng,
                format!(
                    "`{}` draws ambient entropy — every RNG in this workspace must be \
                     explicitly seeded (SeedDerive streams / indexed per-item streams) so \
                     runs are reproducible from the master seed",
                    tok.text
                ),
            );
        }
        if tok.text == "rand" && matches_seq(ts, i + 1, &[":", ":", "random"]) {
            emit(
                ts[i + 3].line,
                Rule::NoEntropyRng,
                "`rand::random` draws from the ambient thread RNG — seed an explicit \
                 `StdRng` stream instead"
                    .to_string(),
            );
        }
        // no-wall-clock: `Instant` / `SystemTime` outside the allowlist.
        if (tok.text == "Instant" || tok.text == "SystemTime") && !class.wall_clock_allowed {
            emit(
                tok.line,
                Rule::NoWallClock,
                format!(
                    "`{}` outside the bench/timing allowlist — wall-clock values must \
                     never reach an output path (deterministic reports omit them); \
                     telemetry-only uses take `// lint:allow(no-wall-clock) <why>`",
                    tok.text
                ),
            );
        }
        // deprecated-sim-entry: `<receiver> . run_store(...)` and friends.
        // A method *call* needs the preceding `.`; definitions (`fn
        // run_store`) and path mentions in docs don't match.
        if DEPRECATED_SIM_ENTRIES.contains(&tok.text)
            && i >= 1
            && ts[i - 1].text == "."
            && matches_seq(ts, i + 1, &["("])
        {
            emit(
                tok.line,
                Rule::DeprecatedSimEntry,
                format!(
                    "`.{}()` is a deprecated engine entry point — feed a `SessionSource` \
                     to `Simulator::simulate` (or `Simulator::begin` for incremental \
                     runs) instead",
                    tok.text
                ),
            );
        }
        // snapshot-format: raw byte-codec calls in snapshot-guarded files.
        // Both shapes matter: `.write_all(` / `.to_le_bytes(` method calls
        // and `u64::from_le_bytes(` associated-function calls; bare
        // mentions in docs or identifiers that merely share a suffix don't
        // match (the `(` is required).
        if class.snapshot_guarded
            && RAW_CODEC_CALLS.contains(&tok.text)
            && matches_seq(ts, i + 1, &["("])
        {
            emit(
                tok.line,
                Rule::SnapshotFormat,
                format!(
                    "`{}` is raw byte-level codec I/O — snapshot state must flow through \
                     the `checkpoint` envelope (`SnapshotWriter` / `SnapshotReader`) so \
                     the format version and FNV digest cover every byte",
                    tok.text
                ),
            );
        }
        // hash-iter: iteration over identifiers bound to hash collections.
        // A name preceded by `<expr>.` (other than `self.`) is a field of
        // some *other* value that merely shares the name — skip it; the
        // struct-field case that matters (`self.field.iter()`) is kept.
        let foreign_field = i >= 2 && ts[i - 1].text == "." && ts[i - 2].text != "self";
        if hash_bound.contains(&tok.text) && !foreign_field {
            if matches_seq(ts, i + 1, &["."])
                && ts.len() > i + 3
                && is_ident(&ts[i + 2])
                && ITER_METHODS.contains(&ts[i + 2].text)
                && ts[i + 3].text == "("
            {
                emit(
                    ts[i + 2].line,
                    Rule::HashIter,
                    format!(
                        "`{}.{}()` visits entries in hash order — sort before anything \
                         order-sensitive (or justify with `// lint:allow(hash-iter) <why>`); \
                         hash order must never reach an output path",
                        tok.text,
                        ts[i + 2].text
                    ),
                );
            }
            let after_in = i >= 1 && ts[i - 1].text == "in"
                || i >= 2 && ts[i - 1].text == "&" && ts[i - 2].text == "in"
                || i >= 3
                    && ts[i - 1].text == "mut"
                    && ts[i - 2].text == "&"
                    && ts[i - 3].text == "in";
            if after_in && matches_seq(ts, i + 1, &["{"]) {
                emit(
                    tok.line,
                    Rule::HashIter,
                    format!(
                        "`for ... in {}` visits entries in hash order — sort before \
                         anything order-sensitive (or justify with \
                         `// lint:allow(hash-iter) <why>`)",
                        tok.text
                    ),
                );
            }
        }
    }
}

/// Checks the crate-root header attributes (`crate-header` rule).
fn check_crate_header(
    file: &str,
    lexed: &Lexed<'_>,
    class: &FileClass,
    findings: &mut Vec<Diagnostic>,
) {
    let ts = &lexed.tokens;
    let has_inner_attr = |lint: &str, levels: &[&str]| {
        (0..ts.len()).any(|i| {
            matches_seq(ts, i, &["#", "!", "["])
                && ts.len() > i + 6
                && levels.contains(&ts[i + 3].text)
                && matches_seq(ts, i + 4, &["(", lint, ")", "]"])
        })
    };
    if !has_inner_attr("unsafe_code", &["forbid"]) {
        findings.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: Rule::CrateHeader,
            message: "crate root lacks `#![forbid(unsafe_code)]` — the workspace proves its \
                      parallelism safe with types (disjoint `split_at_mut` slices), never \
                      with `unsafe`"
                .to_string(),
        });
    }
    if class.require_missing_docs && !has_inner_attr("missing_docs", &["warn", "deny", "forbid"]) {
        findings.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: Rule::CrateHeader,
            message: "crate root lacks `#![warn(missing_docs)]` — every public item in the \
                      product crates is documented (the CI clippy/doc gates escalate the warn)"
                .to_string(),
        });
    }
}

/// One parsed `lint:allow` pragma.
struct Allow {
    /// Line of the pragma comment itself.
    comment_line: u32,
    /// The code line it suppresses (same line, or first code line below).
    anchor: Option<u32>,
    rule: Rule,
    used: bool,
}

/// Parses pragmas out of the comments, suppresses matching findings, and
/// reports malformed or unused pragmas.
fn apply_pragmas(file: &str, lexed: &Lexed<'_>, findings: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut allows: Vec<Allow> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();

    for comment in &lexed.comments {
        // Accept the pragma in `//`, `///` and `//!` comments alike.
        let text = comment.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Diagnostic {
                file: file.to_string(),
                line: comment.line,
                rule: Rule::AllowPragma,
                message: "malformed `lint:allow` — missing `)` after the rule name".to_string(),
            });
            continue;
        };
        let name = rest[..close].trim();
        let justification = rest[close + 1..].trim();
        let Some(rule) = Rule::from_name(name) else {
            out.push(Diagnostic {
                file: file.to_string(),
                line: comment.line,
                rule: Rule::AllowPragma,
                message: format!("`lint:allow({name})` names no known rule"),
            });
            continue;
        };
        if justification.is_empty() {
            out.push(Diagnostic {
                file: file.to_string(),
                line: comment.line,
                rule: Rule::AllowPragma,
                message: format!(
                    "`lint:allow({name})` without a justification — the escape hatch \
                     requires a reason after the closing parenthesis"
                ),
            });
            continue;
        }
        let anchor = if lexed.has_token_on_line(comment.line) {
            Some(comment.line)
        } else {
            lexed.next_code_line(comment.line + 1)
        };
        allows.push(Allow {
            comment_line: comment.line,
            anchor,
            rule,
            used: false,
        });
    }

    'finding: for finding in findings {
        for allow in allows.iter_mut() {
            if allow.anchor == Some(finding.line) && allow.rule == finding.rule {
                allow.used = true;
                continue 'finding;
            }
        }
        out.push(finding);
    }

    for allow in &allows {
        if !allow.used {
            out.push(Diagnostic {
                file: file.to_string(),
                line: allow.comment_line,
                rule: Rule::AllowPragma,
                message: format!(
                    "unused `lint:allow({})` — the next code line triggers no such \
                     finding; delete the stale escape hatch",
                    allow.rule
                ),
            });
        }
    }

    out.sort_by_key(|d| (d.line, d.rule));
    out
}
