//! A minimal Rust lexer for the lint rules.
//!
//! The rules only need two things from a source file: the stream of
//! **identifier and punctuation tokens** that sit outside every literal and
//! comment (so `"thread_rng"` in a string or `Instantiates` in a doc
//! comment can never trigger a rule), and the **line comments** (so
//! `// lint:allow(...)` pragmas can be recovered). Everything else —
//! string contents, char literals, numbers — is consumed and dropped.
//!
//! The lexer understands the constructs that matter for *skipping
//! correctly*:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with any number of `#` guards;
//! * char literals vs. lifetimes (`'a'` is a literal, `'a` is not);
//! * raw identifiers (`r#match` lexes as the identifier `match`).
//!
//! It is deliberately *not* a full Rust lexer: numbers are consumed
//! without classification and non-ASCII punctuation is skipped. That is
//! enough for token-pattern rules, and it keeps the pass dependency-free
//! (the workspace builds offline; there is no external parser to lean on).

/// What kind of token was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`thread`, `for`, `HashMap`, ...).
    Ident,
    /// A single ASCII punctuation character (`:`, `.`, `(`, ...).
    Punct,
}

/// One code token, outside every literal and comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// The token text, borrowed from the source.
    pub text: &'a str,
    /// Identifier or punctuation.
    pub kind: TokenKind,
}

/// One line comment (`//`, `///` or `//!`), captured for pragma scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comment<'a> {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment text after the `//` marker (doc markers `/`/`!` included).
    pub text: &'a str,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Code tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// Line comments in source order.
    pub comments: Vec<Comment<'a>>,
}

impl Lexed<'_> {
    /// Whether any code token sits on `line`.
    pub fn has_token_on_line(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The first code-token line at or after `line`, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l >= line)
    }
}

/// Lexes `source`, returning its code tokens and line comments.
pub fn lex(source: &str) -> Lexed<'_> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed<'a>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed<'a> {
        while let Some(b) = self.peek(0) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b.is_ascii() => {
                    self.push_punct();
                    self.pos += 1;
                }
                _ => {
                    // Non-ASCII outside literals/comments: skip the whole
                    // character (slicing mid-codepoint would panic).
                    let ch = self.src[self.pos..].chars().next().expect("in bounds");
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push_punct(&mut self) {
        self.out.tokens.push(Token {
            line: self.line,
            text: &self.src[self.pos..self.pos + 1],
            kind: TokenKind::Punct,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: &self.src[start..end],
        });
        self.pos = end; // the '\n' itself is handled by the main loop
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(b'\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => return, // unterminated; nothing more to lex
            }
        }
    }

    /// A `"`-delimited string with `\` escapes; newlines inside count.
    fn string(&mut self) {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Distinguishes `'a'` / `'\n'` (char literals, skipped) from `'a` /
    /// `'static` (lifetimes and loop labels, no closing quote).
    fn char_or_lifetime(&mut self) {
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                // Escape: consume `\x`, or `\u{...}` up to the brace.
                self.pos += 2;
                if self.bytes.get(self.pos.wrapping_sub(1)) == Some(&b'u')
                    && self.peek(0) == Some(b'{')
                {
                    while !matches!(self.peek(0), Some(b'}') | None) {
                        self.pos += 1;
                    }
                    self.pos += 1;
                }
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
            }
            Some(b) if is_ident_continue(b) => {
                // `'a'` is a char literal; `'a` / `'static` a lifetime.
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
            }
            Some(b) if !b.is_ascii() => {
                let ch = self.src[self.pos..].chars().next().expect("in bounds");
                self.pos += ch.len_utf8();
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
            }
            Some(_) => {
                // `'('`-style literal: one punctuation char then the quote.
                self.pos += 1;
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
            }
            None => {}
        }
    }

    /// Handles the `r` / `b` prefixes: raw strings (`r"`, `r#"`, `br#"`),
    /// byte strings (`b"`), byte chars (`b'`) and raw identifiers
    /// (`r#match`). Returns false when the `r`/`b` is just the start of an
    /// ordinary identifier, leaving the position untouched.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let b0 = self.bytes[self.pos];
        let mut at = self.pos + 1;
        if b0 == b'b' {
            match self.bytes.get(at).copied() {
                Some(b'"') => {
                    self.pos = at;
                    self.string();
                    return true;
                }
                Some(b'\'') => {
                    self.pos = at;
                    self.char_or_lifetime();
                    return true;
                }
                Some(b'r') => at += 1,
                _ => return false,
            }
        }
        // At `at`: expect `#`* then `"` for a raw string.
        let mut hashes = 0usize;
        while self.bytes.get(at + hashes).copied() == Some(b'#') {
            hashes += 1;
        }
        if self.bytes.get(at + hashes).copied() == Some(b'"') {
            self.raw_string(at + hashes + 1, hashes);
            return true;
        }
        // `r#ident` (raw identifier): lex as the bare identifier.
        if b0 == b'r' && hashes == 1 && self.bytes.get(at + 1).copied().is_some_and(is_ident_start)
        {
            self.pos = at + 1;
            self.ident();
            return true;
        }
        false
    }

    /// Scans a raw string whose body starts at `body`, closed by `"` plus
    /// `hashes` `#` characters.
    fn raw_string(&mut self, body: usize, hashes: usize) {
        self.pos = body;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if b == b'"' {
                let closed = (1..=hashes).all(|i| self.peek(i) == Some(b'#'));
                self.pos += 1;
                if closed {
                    self.pos += hashes;
                    return;
                }
                continue;
            }
            self.pos += 1;
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.out.tokens.push(Token {
            line: self.line,
            text: &self.src[start..self.pos],
            kind: TokenKind::Ident,
        });
    }

    /// Consumes a numeric literal without producing a token. Enough of the
    /// grammar to not mis-lex what follows: `1_000`, `0x1F`, `1.0e-5`,
    /// `2..3` (the range dots are left alone).
    fn number(&mut self) {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.pos += 1;
                // `1e-5` / `1E+5`: the sign belongs to the literal.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 1;
                }
            } else if b == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && self.peek(1) != Some(b'.')
            {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
let a = "thread_rng inside a string";
// thread_rng inside a line comment
/* thread_rng inside a /* nested */ block comment */
let b = r#"thread_rng inside a raw string"#;
let c = b"thread_rng in a byte string";
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng"), "{ids:?}");
        assert_eq!(ids, ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let q = 'q'; let n = '\\n'; q }";
        let ids = idents(src);
        // The lifetime ident `a` is skipped with the quote; `q` appears as
        // the variable, not from inside the literal.
        assert_eq!(
            ids,
            ["fn", "f", "x", "str", "char", "let", "q", "let", "n", "q"]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_bare_names() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn raw_strings_with_guards_and_newlines() {
        let src = "let s = r##\"line1 \"# not closed\nInstant\"##; Instant";
        let lexed = lex(src);
        let instants: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "Instant")
            .collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(
            instants[0].line, 2,
            "line counting continues inside raw strings"
        );
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1; // lint:allow(no-wall-clock) timing only\n// next line\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("lint:allow(no-wall-clock)"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        assert_eq!(
            idents("for i in 0..10 { x.0.max(1.0e-5); }"),
            ["for", "i", "in", "x", "max"]
        );
    }

    #[test]
    fn line_numbers_are_tracked_through_literals() {
        let src = "a\n\"two\nlines\"\nb";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[1].line, 4);
    }
}
