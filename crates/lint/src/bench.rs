//! The `bench-record-schema` rule: static validation of the committed
//! `BENCH_*.json` perf-trajectory records.
//!
//! The records are both documentation (the README's perf tables cite them)
//! and CI input (`bench_guard` gates regressions against their `wall_ms`
//! fields), so a malformed record silently weakens the perf gate. This
//! validator parses each record with the workspace's own hand-rolled JSON
//! parser ([`JsonValue::parse`]) and checks the `consume-local/bench-v1`
//! envelope:
//!
//! * the root is an object with `schema: "consume-local/bench-v1"`, an
//!   integer `pr` and a boolean `quick`;
//! * object keys are unique at every level (the parser accepts duplicates;
//!   `bench_guard` would silently read the first);
//! * every `*_ms` field is a non-negative finite number — these are what
//!   the regression gate consumes;
//! * every `baseline_commit` is a 7–40 character lowercase hex id;
//! * every `seed`, `threads` and `workers` is an integer (and thread /
//!   worker counts are ≥ 1);
//! * every `runs` / `results` field is an array of objects;
//! * every `speedup` is a positive finite number.

use consume_local::export::json::JsonValue;

use crate::rules::{Diagnostic, Rule};

/// Validates one bench record. `file` is the record's workspace-relative
/// path used in diagnostics; `text` is its raw contents.
pub fn validate_bench_record(file: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut emit = |message: String| {
        out.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: Rule::BenchRecordSchema,
            message,
        });
    };

    let value = match JsonValue::parse(text) {
        Ok(value) => value,
        Err(err) => {
            emit(format!("record does not parse: {err}"));
            return out;
        }
    };

    let JsonValue::Obj(fields) = &value else {
        emit("record root must be a JSON object".to_string());
        return out;
    };
    match value.get("schema").and_then(JsonValue::as_str) {
        Some("consume-local/bench-v1") => {}
        Some(other) => emit(format!(
            "`schema` is {other:?}, expected \"consume-local/bench-v1\""
        )),
        None => emit("missing string field `schema`".to_string()),
    }
    if !matches!(value.get("pr"), Some(JsonValue::Int(_))) {
        emit("missing integer field `pr`".to_string());
    }
    if !matches!(value.get("quick"), Some(JsonValue::Bool(_))) {
        emit("missing boolean field `quick`".to_string());
    }
    let _ = fields; // root field checks go through `get` above
    walk("$", &value, &mut emit);
    out
}

/// Recursively checks the domain rules at `path`.
fn walk(path: &str, value: &JsonValue, emit: &mut dyn FnMut(String)) {
    match value {
        JsonValue::Obj(fields) => {
            for (i, (key, _)) in fields.iter().enumerate() {
                if fields[..i].iter().any(|(prev, _)| prev == key) {
                    emit(format!("{path}: duplicate key `{key}`"));
                }
            }
            for (key, child) in fields {
                let child_path = format!("{path}.{key}");
                check_field(&child_path, key, child, emit);
                walk(&child_path, child, emit);
            }
        }
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(&format!("{path}[{i}]"), item, emit);
            }
        }
        _ => {}
    }
}

/// The per-key domain rules of `consume-local/bench-v1`.
fn check_field(path: &str, key: &str, value: &JsonValue, emit: &mut dyn FnMut(String)) {
    if key == "wall_ms" || key.ends_with("_ms") {
        // Scalar wall time, or a summary-statistics object over wall times
        // (`{"mean":..,"min":..,"median":..,"max":..}` in sweep summaries):
        // every number involved must be finite and non-negative.
        let ok = match value {
            JsonValue::Obj(fields) => {
                !fields.is_empty()
                    && fields
                        .iter()
                        .all(|(_, v)| matches!(number(v), Some(ms) if ms.is_finite() && ms >= 0.0))
            }
            _ => matches!(number(value), Some(ms) if ms.is_finite() && ms >= 0.0),
        };
        if !ok {
            emit(format!(
                "{path}: `{key}` must be a non-negative finite number or an object of \
                 such numbers (the regression gate consumes it)"
            ));
        }
    }
    match key {
        "baseline_commit" => match value.as_str() {
            Some(id)
                if (7..=40).contains(&id.len())
                    && id
                        .bytes()
                        .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) => {}
            _ => emit(format!(
                "{path}: `baseline_commit` must be a 7–40 char lowercase hex commit id"
            )),
        },
        "seed" if !matches!(value, JsonValue::Int(_)) => {
            emit(format!("{path}: `seed` must be an integer"));
        }
        "threads" | "workers" if !matches!(value, JsonValue::Int(n) if *n >= 1) => {
            emit(format!("{path}: `{key}` must be an integer ≥ 1"));
        }
        "runs" | "results" => match value {
            JsonValue::Arr(items) if items.iter().all(|i| matches!(i, JsonValue::Obj(_))) => {}
            _ => emit(format!("{path}: `{key}` must be an array of objects")),
        },
        "speedup" => match number(value) {
            Some(s) if s.is_finite() && s > 0.0 => {}
            _ => emit(format!(
                "{path}: `speedup` must be a positive finite number"
            )),
        },
        _ => {}
    }
}

fn number(value: &JsonValue) -> Option<f64> {
    match value {
        JsonValue::Int(n) => Some(*n as f64),
        JsonValue::Num(x) => Some(*x),
        _ => None,
    }
}
