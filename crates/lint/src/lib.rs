//! **consume-local-lint**: the workspace static-analysis pass that enforces
//! the determinism and concurrency invariants.
//!
//! The repo's headline guarantee — byte-identical reports at any worker
//! count — rests on invariants that documentation alone cannot defend
//! through refactors: all parallelism flows through the slot-ordered
//! `stats::par` primitives, all RNG is explicitly seeded, and no wall-clock
//! or hash-order value ever reaches an output path. This crate turns each
//! of those invariants into a machine-checked rule with `file:line`
//! diagnostics:
//!
//! * [`Rule::NoThreadSpawn`] — `std::thread::{spawn,scope}` only inside
//!   `stats::par`;
//! * [`Rule::NoEntropyRng`] — no ambient-entropy RNG construction;
//! * [`Rule::NoWallClock`] — `Instant`/`SystemTime` only in bench code or
//!   with a justified pragma;
//! * [`Rule::HashIter`] — hash-table iteration needs a sort or a
//!   justification;
//! * [`Rule::CrateHeader`] — crate roots carry `#![forbid(unsafe_code)]`
//!   and the missing-docs policy;
//! * [`Rule::BenchRecordSchema`] — committed `BENCH_*.json` records match
//!   `consume-local/bench-v1`.
//!
//! The scanner is a hand-rolled lexer ([`lexer`]) that skips strings, char
//! literals, raw strings and comments, so rule names inside documentation
//! or test fixtures never trigger. The escape hatch is an inline
//! `// lint:allow(<rule>) <justification>` pragma whose justification is
//! mandatory ([`rules`] documents the semantics). Run it with:
//!
//! ```text
//! cargo run -p consume-local-lint
//! ```
//!
//! which exits nonzero on any finding — CI runs it alongside clippy/fmt.
//!
//! # Example
//!
//! ```
//! use consume_local_lint::{lint_source, FileClass, Rule};
//!
//! let findings = lint_source(
//!     "demo.rs",
//!     "fn f() { let _ = std::time::Instant::now(); }",
//!     &FileClass::default(),
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, Rule::NoWallClock);
//! assert_eq!(findings[0].line, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use bench::validate_bench_record;
pub use rules::{lint_source, Diagnostic, FileClass, Rule};
pub use walk::{classify, lint_workspace, LintReport};
