//! Deterministic workspace walk and rule orchestration.
//!
//! The walker visits `crates/`, `shims/`, `src/`, `tests/` and `examples/`
//! under the workspace root, in sorted order (so diagnostics are stable
//! across machines and runs — the lint's own output must honour the
//! no-hash-order invariant it enforces), classifies each `.rs` file for the
//! per-file rules, and validates every `BENCH_*.json` record at the root.
//!
//! Skipped: `target/` (build output) and any directory named `fixtures`
//! (lint test fixtures *contain* violations on purpose).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::bench::validate_bench_record;
use crate::rules::{lint_source, Diagnostic, FileClass};

/// The top-level directories the walker scans for Rust sources.
const SCAN_DIRS: &[&str] = &["crates", "shims", "src", "tests", "examples"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// The result of linting a workspace tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `BENCH_*.json` records validated.
    pub records_checked: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Classifies a workspace-relative path (forward-slash separated) for the
/// per-file rules. Public so tests can pin the classification table.
pub fn classify(rel: &str) -> FileClass {
    let is_member_root = (rel.starts_with("crates/") || rel.starts_with("shims/"))
        && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs"))
        && rel.matches('/').count() == 3;
    let crate_root = rel == "src/lib.rs" || is_member_root;
    FileClass {
        crate_root,
        // Shim crates mirror external crate APIs; the docs policy applies
        // to the product crates (and the workspace-root package) only.
        require_missing_docs: crate_root && !rel.starts_with("shims/"),
        // Bench harnesses measure wall time by design, and the criterion
        // shim *is* the timing harness.
        wall_clock_allowed: rel.starts_with("crates/bench/") || rel.starts_with("shims/criterion/"),
        // The one sanctioned home of thread spawning: the slot-ordered
        // fan-out primitives themselves.
        thread_spawn_allowed: rel == "crates/stats/src/par.rs",
        // Snapshot bytes must flow through the checkpoint envelope codec;
        // `checkpoint.rs` is that codec, everything else in the sim crate
        // is guarded.
        snapshot_guarded: rel.starts_with("crates/sim/src/")
            && rel != "crates/sim/src/checkpoint.rs",
    }
}

/// Lints the workspace rooted at `root`: every `.rs` file under the scan
/// directories plus the root `BENCH_*.json` records.
///
/// # Errors
///
/// Returns an error when the tree cannot be read (missing root, unreadable
/// file). Lint findings are *not* errors; they come back in the report.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in SCAN_DIRS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    for path in &files {
        let rel = relative_label(root, path);
        let source = fs::read_to_string(path)?;
        report
            .diagnostics
            .extend(lint_source(&rel, &source, &classify(&rel)));
        report.files_scanned += 1;
    }

    let mut records: Vec<PathBuf> = fs::read_dir(root)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    records.sort();
    for path in &records {
        let rel = relative_label(root, path);
        let text = fs::read_to_string(path)?;
        report
            .diagnostics
            .extend(validate_bench_record(&rel, &text));
        report.records_checked += 1;
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative, forward-slash label used in diagnostics.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
