//! Driver for the workspace lint: `cargo run -p consume-local-lint`.
//!
//! Lints the workspace this binary was built from (override the tree with
//! `CL_LINT_ROOT=/path`), prints every finding as `file:line: [rule]
//! message`, and exits nonzero when the tree is not clean — the CI `lint`
//! job gates on exactly this exit code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use consume_local_lint::lint_workspace;

fn main() -> ExitCode {
    let root = std::env::var_os("CL_LINT_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("consume-local-lint: cannot read workspace at {root:?}: {err}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.diagnostics {
        println!("{finding}");
    }
    println!(
        "consume-local-lint: {} file(s) scanned, {} bench record(s) checked, {} finding(s)",
        report.files_scanned,
        report.records_checked,
        report.diagnostics.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
