//! Fixture-based tests: one violating and one clean fixture per rule, plus
//! allow-pragma and false-positive cases (rule triggers inside strings and
//! comments must not fire).
//!
//! Fixtures are raw-string literals, so this test file itself lints clean
//! when the workspace pass scans it — the lexer skips string contents.

use consume_local_lint::{lint_source, Diagnostic, FileClass, Rule};

fn product() -> FileClass {
    FileClass::default()
}

fn findings(source: &str, class: &FileClass) -> Vec<Diagnostic> {
    lint_source("fixture.rs", source, class)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- no-thread-spawn

#[test]
fn thread_spawn_violates() {
    let src = r#"
fn fan_out() {
    std::thread::spawn(|| {});
}
"#;
    let diags = findings(src, &product());
    assert_eq!(rules_of(&diags), [Rule::NoThreadSpawn]);
    assert_eq!(diags[0].line, 3);
}

#[test]
fn thread_scope_violates_and_allowlisted_module_is_clean() {
    let src = r#"
fn fan_out() {
    std::thread::scope(|s| { let _ = s; });
}
"#;
    assert_eq!(rules_of(&findings(src, &product())), [Rule::NoThreadSpawn]);

    let par = FileClass {
        thread_spawn_allowed: true,
        ..FileClass::default()
    };
    assert!(findings(src, &par).is_empty(), "stats::par may spawn");
}

#[test]
fn thread_spawn_in_strings_and_comments_is_clean() {
    let src = r##"
// std::thread::spawn is banned outside stats::par.
/// Documentation may say thread::scope freely.
fn f() -> &'static str {
    let _block = /* thread::spawn */ 1;
    "call std::thread::spawn elsewhere"
}
"##;
    assert!(findings(src, &product()).is_empty());
}

#[test]
fn thread_spawn_allow_pragma_suppresses() {
    let src = r#"
fn f() {
    // lint:allow(no-thread-spawn) bootstrap thread before the pool exists
    std::thread::spawn(|| {});
}
"#;
    assert!(findings(src, &product()).is_empty());
}

// ---------------------------------------------------------------- no-entropy-rng

#[test]
fn entropy_rng_violates() {
    let src = r#"
fn f() {
    let mut r = rand::thread_rng();
    let _ = StdRng::from_entropy();
    let _: u64 = rand::random();
}
"#;
    let diags = findings(src, &product());
    assert_eq!(
        rules_of(&diags),
        [Rule::NoEntropyRng, Rule::NoEntropyRng, Rule::NoEntropyRng]
    );
    assert_eq!(diags[0].line, 3);
    assert_eq!(diags[1].line, 4);
    assert_eq!(diags[2].line, 5);
}

#[test]
fn seeded_rng_is_clean() {
    let src = r#"
fn f() {
    let mut r = StdRng::seed_from_u64(2018);
    let _ = r;
}
"#;
    assert!(findings(src, &product()).is_empty());
}

#[test]
fn entropy_rng_in_strings_and_comments_is_clean() {
    let src = r#"
// thread_rng and from_entropy are banned; this comment is fine.
fn f() -> &'static str {
    "never call thread_rng() or OsRng here"
}
"#;
    assert!(findings(src, &product()).is_empty());
}

// ---------------------------------------------------------------- no-wall-clock

#[test]
fn wall_clock_violates_with_line() {
    let src = r#"
use std::time::Instant;

fn f() -> u64 {
    let t = SystemTime::now();
    let _ = t;
    0
}
"#;
    let diags = findings(src, &product());
    assert_eq!(rules_of(&diags), [Rule::NoWallClock, Rule::NoWallClock]);
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[1].line, 5);
}

#[test]
fn wall_clock_allowlisted_bench_is_clean() {
    let src = "fn f() { let _ = std::time::Instant::now(); }";
    let bench = FileClass {
        wall_clock_allowed: true,
        ..FileClass::default()
    };
    assert!(findings(src, &bench).is_empty());
}

#[test]
fn instantiates_in_docs_does_not_trigger() {
    // `Instant` must match on identifier boundaries — and comments are
    // skipped entirely, so even a literal mention is fine.
    let src = r#"
/// Instantiates the matcher; an Instant here is just prose.
fn instantiate() {}
"#;
    assert!(findings(src, &product()).is_empty());
}

#[test]
fn wall_clock_allow_same_line_and_preceding_line() {
    let same_line = r#"
fn f() { let _ = std::time::Instant::now(); } // lint:allow(no-wall-clock) telemetry only
"#;
    assert!(findings(same_line, &product()).is_empty());

    let line_above = r#"
fn f() {
    // lint:allow(no-wall-clock) wall_ms telemetry, omitted from reports
    let _ = std::time::Instant::now();
}
"#;
    assert!(findings(line_above, &product()).is_empty());
}

#[test]
fn deleting_the_allow_makes_it_fail() {
    // The acceptance property, in miniature: the annotated fixture is
    // clean; stripping the pragma line yields a named file:line finding.
    let annotated = r#"
fn f() {
    // lint:allow(no-wall-clock) wall_ms telemetry, omitted from reports
    let _ = std::time::Instant::now();
}
"#;
    assert!(findings(annotated, &product()).is_empty());

    let stripped: String = annotated
        .lines()
        .filter(|l| !l.contains("lint:allow"))
        .collect::<Vec<_>>()
        .join("\n");
    let diags = findings(&stripped, &product());
    assert_eq!(rules_of(&diags), [Rule::NoWallClock]);
    assert_eq!(diags[0].line, 3, "diagnostic names the offending line");
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_map_iteration_violates() {
    let src = r#"
use std::collections::HashMap;

fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        println!("{k}{v}");
    }
    let _sum: u32 = m.values().sum();
}
"#;
    let diags = findings(src, &product());
    assert_eq!(rules_of(&diags), [Rule::HashIter, Rule::HashIter]);
    assert_eq!(diags[0].line, 7);
    assert_eq!(diags[1].line, 10);
}

#[test]
fn hash_set_field_iteration_violates_via_self() {
    let src = r#"
use std::collections::HashSet;

struct S {
    seen: HashSet<u32>,
}

impl S {
    fn f(&self) -> Vec<u32> {
        self.seen.iter().copied().collect()
    }
}
"#;
    let diags = findings(src, &product());
    assert_eq!(rules_of(&diags), [Rule::HashIter]);
    assert_eq!(diags[0].line, 10);
}

#[test]
fn hash_map_lookups_and_sorted_structures_are_clean() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};

fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    let _ = m.get(&1);
    let _ = m.entry(2).or_insert(3);
    let _ = m.len();

    // BTreeMap iterates in key order: not a hash-iter concern.
    let b: BTreeMap<u32, u32> = BTreeMap::new();
    for (k, v) in &b {
        println!("{k}{v}");
    }
}
"#;
    assert!(findings(src, &product()).is_empty());
}

#[test]
fn foreign_field_sharing_a_hash_name_is_clean() {
    // `s.theory` is a Vec field on some other struct; the local HashMap
    // merely shares the name. Field accesses through a non-`self` receiver
    // are not flagged.
    let src = r#"
use std::collections::HashMap;

fn f(series: &[Series]) {
    for s in series {
        let theory: HashMap<u32, f64> = s.theory.iter().copied().collect();
        let _ = theory.get(&1);
    }
}
"#;
    assert!(findings(src, &product()).is_empty());
}

#[test]
fn hash_iter_allow_pragma_suppresses() {
    let src = r#"
use std::collections::HashMap;

fn f(m: &HashMap<u32, u32>) -> u32 {
    // lint:allow(hash-iter) commutative sum; order cannot reach the output
    m.values().sum()
}
"#;
    assert!(findings(src, &product()).is_empty());
}

// ---------------------------------------------------------------- crate-header

#[test]
fn crate_root_missing_headers_violates() {
    let src = "//! A crate.\n\npub fn f() {}\n";
    let root = FileClass {
        crate_root: true,
        require_missing_docs: true,
        ..FileClass::default()
    };
    let diags = findings(src, &root);
    assert_eq!(rules_of(&diags), [Rule::CrateHeader, Rule::CrateHeader]);
    assert!(diags.iter().all(|d| d.line == 1));
    assert!(diags[0].message.contains("forbid(unsafe_code)"));
    assert!(diags[1].message.contains("missing_docs"));
}

#[test]
fn crate_root_with_headers_is_clean() {
    let src = "//! A crate.\n\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\npub fn f() {}\n";
    let root = FileClass {
        crate_root: true,
        require_missing_docs: true,
        ..FileClass::default()
    };
    assert!(findings(src, &root).is_empty());
}

#[test]
fn shim_root_needs_only_unsafe_forbid() {
    let src = "//! A shim.\n\n#![forbid(unsafe_code)]\n\npub fn f() {}\n";
    let shim = FileClass {
        crate_root: true,
        require_missing_docs: false,
        ..FileClass::default()
    };
    assert!(findings(src, &shim).is_empty());
}

#[test]
fn non_root_files_skip_the_header_rule() {
    assert!(findings("pub fn f() {}\n", &product()).is_empty());
}

#[test]
fn header_inside_comment_or_string_does_not_count() {
    // The attribute must be real tokens: naming it in docs or a string
    // does not satisfy the rule.
    let src = r##"
//! This crate should carry #![forbid(unsafe_code)] someday.

pub fn f() -> &'static str {
    "#![forbid(unsafe_code)] #![warn(missing_docs)]"
}
"##;
    let root = FileClass {
        crate_root: true,
        require_missing_docs: true,
        ..FileClass::default()
    };
    assert_eq!(
        rules_of(&findings(src, &root)),
        [Rule::CrateHeader, Rule::CrateHeader]
    );
}

// ---------------------------------------------------------------- allow-pragma

#[test]
fn allow_without_justification_is_reported() {
    let src = r#"
fn f() {
    // lint:allow(no-wall-clock)
    let _ = std::time::Instant::now();
}
"#;
    let diags = findings(src, &product());
    // The pragma is invalid, so the wall-clock finding stands too.
    assert_eq!(rules_of(&diags), [Rule::AllowPragma, Rule::NoWallClock]);
    assert!(diags[0].message.contains("justification"));
}

#[test]
fn allow_with_unknown_rule_is_reported() {
    let src = r#"
// lint:allow(no-such-rule) some reason
fn f() {}
"#;
    let diags = findings(src, &product());
    assert_eq!(rules_of(&diags), [Rule::AllowPragma]);
    assert!(diags[0].message.contains("no-such-rule"));
}

#[test]
fn unused_allow_is_reported() {
    let src = r#"
fn f() {
    // lint:allow(no-wall-clock) stale: the Instant below was removed
    let _ = 1;
}
"#;
    let diags = findings(src, &product());
    assert_eq!(rules_of(&diags), [Rule::AllowPragma]);
    assert!(diags[0].message.contains("unused"));
    assert_eq!(diags[0].line, 3);
}

// ---------------------------------------------------------------- diagnostics

#[test]
fn diagnostics_render_file_line_rule() {
    let src = "fn f() { let _ = std::time::Instant::now(); }";
    let diags = findings(src, &product());
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("fixture.rs:1: [no-wall-clock]"),
        "{rendered}"
    );
}

// ---------------------------------------------------------------- deprecated-sim-entry

#[test]
fn deprecated_sim_entry_call_violates() {
    let src = r#"
fn f() {
    let report = sim.run_store(&store);
    let seg = sim.run_segmented(&seg);
    let streamed = sim.run_trace_stream(&mut stream);
    let run = sim.begin_segmented(horizon, users);
    let _ = (report, seg, streamed, run);
}
"#;
    let diags = findings(src, &product());
    assert_eq!(
        rules_of(&diags),
        [Rule::DeprecatedSimEntry; 4],
        "every wrapper call is flagged: {diags:?}"
    );
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("Simulator::simulate"));
}

#[test]
fn deprecated_sim_entry_definitions_and_docs_are_clean() {
    let src = r#"
/// Docs may mention `run_store` and `Simulator::begin_segmented` freely.
pub fn run_store(&self, store: &SessionStore) -> SimReport {
    self.simulate(store)
}
pub fn begin_segmented(&self) {}
fn f() {
    let _ = "sim.run_store(&store) in a string";
    let report = sim.simulate(&store);
    let _ = report;
}
"#;
    assert!(findings(src, &product()).is_empty());
}

#[test]
fn deprecated_sim_entry_allow_pragma_suppresses() {
    let src = r#"
fn f() {
    // lint:allow(deprecated-sim-entry) pins the wrapper's delegation
    let _ = sim.run_store(&store);
}
"#;
    assert!(findings(src, &product()).is_empty());
}

// ---------------------------------------------------------------- snapshot-format

fn snapshot_guarded() -> FileClass {
    FileClass {
        snapshot_guarded: true,
        ..FileClass::default()
    }
}

#[test]
fn raw_codec_calls_violate_in_guarded_files() {
    let src = r#"
fn f(out: &mut impl std::io::Write, input: &mut impl std::io::Read) {
    out.write_all(&[1, 2, 3]).unwrap();
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf).unwrap();
    let bytes = 7u64.to_le_bytes();
    let v = u64::from_le_bytes(bytes);
    let _ = v;
}
"#;
    let diags = findings(src, &snapshot_guarded());
    assert_eq!(
        rules_of(&diags),
        [Rule::SnapshotFormat; 4],
        "every raw codec call is flagged: {diags:?}"
    );
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("SnapshotWriter"));
}

#[test]
fn raw_codec_calls_are_clean_outside_guarded_files() {
    // The same source in an unguarded file (any crate but sim, or the
    // checkpoint module itself) is fine — the envelope codec has to call
    // these somewhere.
    let src = r#"
fn f(out: &mut impl std::io::Write) {
    out.write_all(&7u64.to_le_bytes()).unwrap();
}
"#;
    assert!(findings(src, &product()).is_empty());
}

#[test]
fn snapshot_format_docs_and_non_calls_are_clean() {
    let src = r#"
/// Docs may say `write_all` and `u64::from_le_bytes` freely.
fn f() {
    let _ = "input.read_exact(&mut buf) in a string";
    let write_all = 3; // an identifier, not a call
    let _ = write_all;
}
"#;
    assert!(findings(src, &snapshot_guarded()).is_empty());
}

#[test]
fn snapshot_format_allow_pragma_suppresses() {
    let src = r#"
fn f(out: &mut impl std::io::Write) {
    // lint:allow(snapshot-format) test-only tamper helper, not snapshot state
    out.write_all(&[0]).unwrap();
}
"#;
    assert!(findings(src, &snapshot_guarded()).is_empty());
}
