//! Fixture tests for the `bench-record-schema` rule: committed
//! `BENCH_*.json` files must conform to the `consume-local/bench-v1`
//! envelope.

use consume_local_lint::{validate_bench_record, Rule};

const VALID: &str = r#"{
  "schema": "consume-local/bench-v1",
  "pr": 4,
  "quick": true,
  "baseline_commit": "4bee6a6",
  "runs": [
    { "name": "trace_gen", "seed": 2018, "threads": 4, "wall_ms": 812.5 },
    { "name": "window_loop", "seed": 2018, "threads": 4,
      "wall_ms": { "mean": 100.0, "min": 95.0, "median": 99.0, "max": 110.0 } }
  ],
  "results": [
    { "name": "trace_gen", "speedup": 2.3 }
  ]
}"#;

#[test]
fn valid_record_passes() {
    let diags = validate_bench_record("BENCH_T.json", VALID);
    assert!(
        diags.is_empty(),
        "{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn expect_schema_finding(text: &str, needle: &str) {
    let diags = validate_bench_record("BENCH_T.json", text);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::BenchRecordSchema && d.message.contains(needle)),
        "expected a bench-record-schema finding mentioning {needle:?}; got: {:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn wrong_schema_string_fails() {
    expect_schema_finding(&VALID.replace("bench-v1", "bench-v2"), "schema");
}

#[test]
fn negative_wall_ms_fails() {
    expect_schema_finding(&VALID.replace("812.5", "-1.0"), "wall_ms");
}

#[test]
fn non_hex_baseline_commit_fails() {
    expect_schema_finding(
        &VALID.replace("4bee6a6", "not-a-commit!"),
        "baseline_commit",
    );
}

#[test]
fn zero_threads_fails() {
    expect_schema_finding(
        &VALID.replace("\"threads\": 4", "\"threads\": 0"),
        "threads",
    );
}

#[test]
fn runs_not_an_array_fails() {
    expect_schema_finding(
        &VALID
            .replace("\"runs\": [", "\"runs\": {\"x\": [")
            .replace("  ],\n  \"results\"", "  ]},\n  \"results\""),
        "runs",
    );
}

#[test]
fn missing_schema_field_fails() {
    expect_schema_finding(
        &VALID.replace("\"schema\": \"consume-local/bench-v1\",", ""),
        "schema",
    );
}

#[test]
fn unparseable_json_fails() {
    expect_schema_finding("{ not json", "parse");
}

#[test]
fn stats_object_wall_ms_rejects_negative_member() {
    expect_schema_finding(&VALID.replace("\"min\": 95.0", "\"min\": -95.0"), "wall_ms");
}
