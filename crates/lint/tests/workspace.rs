//! Integration test: the live workspace lints clean, and the walker's file
//! classification matches the layout the rules assume.

use std::path::Path;

use consume_local_lint::{classify, lint_workspace};

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn live_workspace_lints_clean() {
    let report = lint_workspace(workspace_root()).expect("workspace walk");
    assert!(
        report.is_clean(),
        "workspace must lint clean; findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the tree.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — walker misconfigured?",
        report.files_scanned
    );
    assert!(
        report.records_checked >= 4,
        "only {} bench records checked",
        report.records_checked
    );
}

#[test]
fn classification_matches_layout() {
    let root = classify("crates/core/src/lib.rs");
    assert!(root.crate_root && root.require_missing_docs);
    assert!(!root.wall_clock_allowed && !root.thread_spawn_allowed);

    let shim = classify("shims/rand/src/lib.rs");
    assert!(shim.crate_root && !shim.require_missing_docs);

    let module = classify("crates/core/src/figures/fig4.rs");
    assert!(!module.crate_root);

    let bench = classify("crates/bench/src/pipeline.rs");
    assert!(bench.wall_clock_allowed);

    let par = classify("crates/stats/src/par.rs");
    assert!(par.thread_spawn_allowed && !par.crate_root);

    let criterion = classify("shims/criterion/src/lib.rs");
    assert!(criterion.wall_clock_allowed);

    // The snapshot-format guard covers the sim crate, except the envelope
    // codec itself.
    let engine = classify("crates/sim/src/engine.rs");
    assert!(engine.snapshot_guarded);
    let faults = classify("crates/sim/src/online/faults.rs");
    assert!(faults.snapshot_guarded);
    let codec = classify("crates/sim/src/checkpoint.rs");
    assert!(!codec.snapshot_guarded);
    assert!(!root.snapshot_guarded && !bench.snapshot_guarded);
}
