//! Trace statistics and the Table I regeneration.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::generator::{sort_key_fallback_required, Trace};

/// Aggregate statistics of a trace, the quantities behind Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Users with at least one session (Table I "Number of Users").
    pub active_users: u64,
    /// Households (IP addresses) with at least one session (Table I
    /// "Number of IP addresses").
    pub active_households: u64,
    /// Session count (Table I "Number of Sessions").
    pub sessions: u64,
    /// Total watch time in hours.
    pub watch_hours: f64,
    /// Total bytes streamed.
    pub bytes: u64,
    /// Mean sessions per active user.
    pub sessions_per_user: f64,
    /// Distinct content items watched.
    pub items_watched: u64,
    /// Whether the trace's measured maxima overflow the packed 64-bit sort
    /// key (see [`crate::generator::sort_key_fallback_required`] and
    /// [`crate::generator::sort_key_bounds`]: at least 2²³ start seconds,
    /// 2²⁴ users and 2¹⁷ items fit simultaneously), making sort-based
    /// pipelines (the parallel merge, segment emission) take the wide
    /// record sort — correct but slower. Sweeps over custom scales can
    /// check this up front; the simulation engine surfaces the same
    /// condition, computed by the same predicate, as a structured
    /// `SimReport` warning.
    pub sort_key_fallback: bool,
}

impl TraceStats {
    /// Measures a trace.
    pub fn measure(trace: &Trace) -> Self {
        let mut users = HashSet::new();
        let mut households = HashSet::new();
        let mut items = HashSet::new();
        let mut watch_secs = 0u64;
        let mut bytes = 0u64;
        let mut maxima = (0u64, 0u32, 0u32);
        for s in trace.sessions() {
            users.insert(s.user);
            items.insert(s.content);
            if let Some(profile) = trace.population().get(s.user) {
                households.insert(profile.household);
            }
            watch_secs += u64::from(s.duration_secs);
            bytes += s.bytes_watched();
            maxima.0 = maxima.0.max(s.start.as_secs());
            maxima.1 = maxima.1.max(s.user.0);
            maxima.2 = maxima.2.max(s.content.0);
        }
        let sort_key_fallback = sort_key_fallback_required(maxima);
        let sessions = trace.sessions().len() as u64;
        Self {
            active_users: users.len() as u64,
            active_households: households.len() as u64,
            sessions,
            watch_hours: watch_secs as f64 / 3600.0,
            bytes,
            sessions_per_user: sessions as f64 / (users.len() as f64).max(1.0),
            items_watched: items.len() as u64,
            sort_key_fallback,
        }
    }

    /// Mean session duration in seconds.
    pub fn mean_session_secs(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.watch_hours * 3600.0 / self.sessions as f64
        }
    }
}

/// The Table I reproduction: measured counts from a (possibly scaled) trace,
/// projected back to full scale, next to the paper's published values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Label of the column ("Sep 2013" / "July 2014" / custom).
    pub label: String,
    /// The scale the trace was generated at (1.0 = full).
    pub scale: f64,
    /// Raw measured statistics.
    pub measured: TraceStats,
    /// Users projected to full scale (`measured / scale`).
    pub projected_users: f64,
    /// IP addresses projected to full scale.
    pub projected_ips: f64,
    /// Sessions projected to full scale.
    pub projected_sessions: f64,
}

/// The paper's Table I values for September 2013.
pub const PAPER_SEP2013: (f64, f64, f64) = (3.3e6, 1.5e6, 23.5e6);

/// The paper's Table I values for July 2014.
pub const PAPER_JUL2014: (f64, f64, f64) = (3.6e6, 1.6e6, 24.2e6);

impl Table1 {
    /// Builds the Table I column from a trace generated at `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn from_trace(label: impl Into<String>, trace: &Trace, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let measured = TraceStats::measure(trace);
        Self {
            label: label.into(),
            scale,
            projected_users: measured.active_users as f64 / scale,
            projected_ips: measured.active_households as f64 / scale,
            projected_sessions: measured.sessions as f64 / scale,
            measured,
        }
    }

    /// Renders the column as aligned text rows (value, projection, paper).
    pub fn render(&self, paper: (f64, f64, f64)) -> String {
        let fmt_m = |x: f64| format!("{:.2}M", x / 1e6);
        format!(
            "{label} (scale {scale}):\n\
             {:<22} {:>10} {:>12} {:>10}\n\
             {:<22} {:>10} {:>12} {:>10}\n\
             {:<22} {:>10} {:>12} {:>10}\n\
             {:<22} {:>10} {:>12} {:>10}\n",
            "row",
            "measured",
            "projected",
            "paper",
            "Number of Users",
            self.measured.active_users,
            fmt_m(self.projected_users),
            fmt_m(paper.0),
            "Number of IPs",
            self.measured.active_households,
            fmt_m(self.projected_ips),
            fmt_m(paper.1),
            "Number of Sessions",
            self.measured.sessions,
            fmt_m(self.projected_sessions),
            fmt_m(paper.2),
            label = self.label,
            scale = self.scale,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    fn trace(scale: f64, seed: u64) -> Trace {
        TraceGenerator::new(TraceConfig::london_sep2013().scaled(scale).unwrap(), seed)
            .generate()
            .unwrap()
    }

    #[test]
    fn projections_land_near_paper_sep2013() {
        let scale = 0.002;
        let t = trace(scale, 42);
        let table = Table1::from_trace("Sep 2013", &t, scale);
        let (users, ips, sessions) = PAPER_SEP2013;
        assert!(
            (table.projected_users / users - 1.0).abs() < 0.15,
            "users {} vs paper {users}",
            table.projected_users
        );
        assert!(
            (table.projected_ips / ips - 1.0).abs() < 0.25,
            "ips {} vs paper {ips}",
            table.projected_ips
        );
        assert!(
            (table.projected_sessions / sessions - 1.0).abs() < 0.10,
            "sessions {} vs paper {sessions}",
            table.projected_sessions
        );
    }

    #[test]
    fn sort_key_fallback_follows_shared_predicate() {
        use crate::generator::sort_key_bounds;

        // London presets fit the packed key: no fallback.
        let t = trace(0.002, 7);
        assert!(!TraceStats::measure(&t).sort_key_fallback);

        // The flag mirrors `sort_key_fallback_required` on the measured
        // maxima: single-field exceedance of an old 59-bit bound (or a new
        // guaranteed bound) stays on the fast path; jointly pathological
        // maxima flip it. Rebuild the trace with one doctored record per
        // case.
        let base = t.sessions()[0];
        for (name, expected, record) in [
            ("start at new guaranteed bound", false, {
                let mut s = base;
                s.start = crate::time::SimTime(sort_key_bounds::START_SECS);
                s
            }),
            ("user at new guaranteed bound", false, {
                let mut s = base;
                s.user = crate::population::UserId(sort_key_bounds::USERS);
                s
            }),
            ("content at new guaranteed bound", false, {
                let mut s = base;
                s.content = crate::content::ContentId(sort_key_bounds::ITEMS);
                s
            }),
            ("jointly pathological user and content", true, {
                let mut s = base;
                s.user = crate::population::UserId(u32::MAX);
                s.content = crate::content::ContentId(u32::MAX);
                s
            }),
        ] {
            let mut sessions = t.sessions().to_vec();
            sessions.push(record);
            let doctored = Trace::from_parts(
                t.config().clone(),
                t.catalogue().clone(),
                t.population().clone(),
                sessions,
            );
            let stats = TraceStats::measure(&doctored);
            assert_eq!(
                stats.sort_key_fallback, expected,
                "{name}: sort_key_fallback must match the shared predicate"
            );
            let maxima = doctored.sessions().iter().fold((0u64, 0u32, 0u32), |m, s| {
                (
                    m.0.max(s.start.as_secs()),
                    m.1.max(s.user.0),
                    m.2.max(s.content.0),
                )
            });
            assert_eq!(
                stats.sort_key_fallback,
                sort_key_fallback_required(maxima),
                "{name}: stats and packing must share one source of truth"
            );
        }
    }

    #[test]
    fn users_per_ip_ratio_matches() {
        let t = trace(0.002, 7);
        let s = TraceStats::measure(&t);
        let ratio = s.active_users as f64 / s.active_households as f64;
        assert!((1.9..2.5).contains(&ratio), "users/IP {ratio}");
    }

    #[test]
    fn mean_session_duration_is_catchup_tv_like() {
        let t = trace(0.001, 9);
        let s = TraceStats::measure(&t);
        let mins = s.mean_session_secs() / 60.0;
        assert!((15.0..40.0).contains(&mins), "mean session {mins} minutes");
    }

    #[test]
    fn sessions_per_user_near_paper() {
        // Paper: 23.5M sessions / 3.3M users ≈ 7.1.
        let t = trace(0.002, 11);
        let s = TraceStats::measure(&t);
        assert!(
            (5.0..9.5).contains(&s.sessions_per_user),
            "got {}",
            s.sessions_per_user
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let t = trace(0.0005, 3);
        let table = Table1::from_trace("Sep 2013", &t, 0.0005);
        let out = table.render(PAPER_SEP2013);
        assert!(out.contains("Number of Users"));
        assert!(out.contains("Number of IPs"));
        assert!(out.contains("Number of Sessions"));
        assert!(out.contains("3.30M"));
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn rejects_bad_scale() {
        let t = trace(0.0005, 3);
        let _ = Table1::from_trace("x", &t, 0.0);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let t0 = trace(0.0005, 3);
        let empty = Trace::from_parts(
            t0.config().clone(),
            t0.catalogue().clone(),
            t0.population().clone(),
            Vec::new(),
        );
        let s = TraceStats::measure(&empty);
        assert_eq!(s.active_users, 0);
        assert_eq!(s.sessions, 0);
        assert_eq!(s.mean_session_secs(), 0.0);
    }
}
