//! Synthetic catch-up-TV workload generation for the `consume-local`
//! reproduction.
//!
//! The paper's empirical section replays a **proprietary BBC iPlayer trace**
//! (Table I: 3.3 M monthly London users behind 1.5 M IP addresses, 23.5 M
//! sessions in September 2013). That trace is not public, so this crate
//! generates a **statistically matched synthetic workload** instead — see
//! DESIGN.md §2 for the substitution argument. Every distributional knob the
//! evaluation depends on is explicit in [`TraceConfig`]:
//!
//! * a Zipf-popularity **content catalogue** with genre-typical durations and
//!   broadcast-date view decay ([`content`]);
//! * a **population** of households (≈ 2.2 users per IP, as in Table I)
//!   placed on the ISP trees of the five-ISP London registry, with
//!   Pareto-skewed per-user activity and a per-user *mainstreamness* taste
//!   parameter so that some users genuinely prefer niche content (the users
//!   who stay carbon-negative in Fig. 6) ([`population`]);
//! * **device classes** with the bitrate mix the paper reports (1.5 Mb/s
//!   most common) ([`device`]);
//! * a **diurnal/weekly arrival profile** with the evening prime-time peak
//!   ([`arrival`]);
//! * the [`generator`] that combines them into a time-sorted stream of
//!   [`SessionRecord`]s, deterministically from a seed — and, via
//!   [`TraceGenerator::workers`](generator::TraceGenerator::workers), fans
//!   per-item synthesis across threads with byte-identical output;
//! * a columnar [`store`] ([`SessionStore`]) the simulation engine replays
//!   instead of row records, shared across sweep scenarios — plus its
//!   per-day forms for full-scale runs: [`SegmentedStore`] partitions a
//!   trace into one [`SessionStore`] per day, and
//!   [`TraceGenerator::segments`](generator::TraceGenerator::segments)
//!   **streams** those segments out one at a time (persistent per-item RNG
//!   streams keep the emission byte-identical to monolithic generation)
//!   so peak memory holds a single day;
//! * the [`metro`] composition layer: several city-scale workloads with
//!   disjoint per-city id ranges, streamed day-by-day as one union
//!   ([`MetroTrace::stream`](metro::MetroTrace::stream)) or as per-city
//!   shards for the swarm-sharded engine mode;
//! * [`stats`] to regenerate Table I from any generated trace, and [`io`]
//!   for a simple CSV round-trip format.
//!
//! # Example
//!
//! ```
//! use consume_local_trace::{TraceConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), consume_local_trace::TraceError> {
//! // A 1/1000-scale September-2013 London trace.
//! let config = TraceConfig::london_sep2013().scaled(0.001)?;
//! let trace = TraceGenerator::new(config, 42).generate()?;
//! assert!(trace.sessions().len() > 10_000);
//! // Sessions come out sorted by start time.
//! assert!(trace.sessions().windows(2).all(|w| w[0].start <= w[1].start));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod churn;
pub mod content;
pub mod device;
pub mod generator;
pub mod io;
pub mod live;
pub mod metro;
pub mod popularity;
pub mod population;
pub mod session;
pub mod stats;
pub mod store;
pub mod time;

pub use churn::{ChurnConfig, ChurnConfigError, FlashCrowd};
pub use content::{Catalogue, ContentId, ContentItem};
pub use generator::{
    merge_session_batches, ScalePreset, SegmentStream, Trace, TraceConfig, TraceError,
    TraceGenerator,
};
pub use metro::{MetroConfig, MetroStream, MetroTrace};
pub use popularity::Popularity;
pub use population::{Population, UserId};
pub use session::SessionRecord;
pub use stats::{Table1, TraceStats};
pub use store::{SegmentedStore, SessionStore, StoreCursor};
pub use time::SimTime;
