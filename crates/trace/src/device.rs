//! Device classes and streaming bitrates.
//!
//! The paper splits swarms by bitrate ("a user watching on a modern
//! internet-connected HD TV … may find it difficult to stream from a peer who
//! is watching at a lower bitrate on her mobile phone") and reports 1.5 Mb/s
//! as the most common iPlayer bitrate. The default mix below makes the
//! 1.5 Mb/s class the plurality.

use std::fmt;

use serde::{Deserialize, Serialize};

use consume_local_stats::dist::Categorical;

/// The device a session is watched on; fixes its streaming bitrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Phones on mobile/Wi-Fi: 800 kb/s.
    Mobile,
    /// Tablets: 1.5 Mb/s.
    Tablet,
    /// Desktop / laptop browsers: 1.5 Mb/s.
    Desktop,
    /// HD connected TVs: 2.8 Mb/s.
    HdTv,
    /// Full-HD large-screen TVs: 5.0 Mb/s.
    FullHdTv,
}

impl DeviceClass {
    /// All device classes with their default session shares.
    ///
    /// Calibrated for the paper's 2013/14 setting where 1.5 Mb/s was "the
    /// most common bitrate in BBC iPlayer": tablet + desktop give the
    /// 1.5 Mb/s class a 55 % majority; connected TVs were a minority.
    pub const MIX: [(DeviceClass, f64); 5] = [
        (DeviceClass::Mobile, 0.12),
        (DeviceClass::Tablet, 0.20),
        (DeviceClass::Desktop, 0.35),
        (DeviceClass::HdTv, 0.25),
        (DeviceClass::FullHdTv, 0.08),
    ];

    /// The streaming bitrate in bits per second.
    pub fn bitrate_bps(self) -> u32 {
        match self {
            DeviceClass::Mobile => 800_000,
            DeviceClass::Tablet | DeviceClass::Desktop => 1_500_000,
            DeviceClass::HdTv => 2_800_000,
            DeviceClass::FullHdTv => 5_000_000,
        }
    }

    /// The bitrate class used for swarm splitting: devices with equal
    /// bitrates share swarms (tablet and desktop both stream 1.5 Mb/s).
    pub fn bitrate_class(self) -> BitrateClass {
        BitrateClass(self.bitrate_bps())
    }

    /// The sampler over the default mix (index into [`DeviceClass::MIX`]).
    pub fn mix_sampler() -> Categorical {
        Categorical::new(&Self::MIX.map(|(_, w)| w)).expect("static mix is valid")
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Mobile => "mobile",
            DeviceClass::Tablet => "tablet",
            DeviceClass::Desktop => "desktop",
            DeviceClass::HdTv => "hd-tv",
            DeviceClass::FullHdTv => "fullhd-tv",
        };
        f.write_str(s)
    }
}

/// A bitrate class for swarm splitting, keyed by bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitrateClass(pub u32);

impl BitrateClass {
    /// The bitrate in bits per second.
    pub fn bps(self) -> u32 {
        self.0
    }

    /// The bitrate in megabits per second.
    pub fn mbps(self) -> f64 {
        f64::from(self.0) / 1e6
    }

    /// All distinct bitrate classes in the default device mix, ascending.
    pub fn all_in_mix() -> Vec<BitrateClass> {
        let mut v: Vec<BitrateClass> = DeviceClass::MIX
            .iter()
            .map(|(d, _)| d.bitrate_class())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for BitrateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}Mbps", self.mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_stats::dist::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mix_sums_to_one() {
        let total: f64 = DeviceClass::MIX.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_common_bitrate_is_1500k() {
        // The paper: "The most common bitrate in BBC iPlayer is 1.5Mbps".
        let mut by_class: std::collections::BTreeMap<BitrateClass, f64> = Default::default();
        for (d, w) in DeviceClass::MIX {
            *by_class.entry(d.bitrate_class()).or_default() += w;
        }
        let (best, _) = by_class
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(best.bps(), 1_500_000);
    }

    #[test]
    fn bitrate_classes_deduplicate() {
        let classes = BitrateClass::all_in_mix();
        assert_eq!(classes.len(), 4); // 0.8, 1.5, 2.8, 5.0
        assert!(classes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            DeviceClass::Tablet.bitrate_class(),
            DeviceClass::Desktop.bitrate_class()
        );
    }

    #[test]
    fn sampler_matches_mix() {
        let s = DeviceClass::mix_sampler();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        for (i, (_, w)) in DeviceClass::MIX.iter().enumerate() {
            let emp = f64::from(counts[i]) / 100_000.0;
            assert!((emp - w).abs() < 0.01, "device {i}: {emp} vs {w}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(DeviceClass::HdTv.to_string(), "hd-tv");
        assert_eq!(BitrateClass(1_500_000).to_string(), "1.5Mbps");
    }
}
