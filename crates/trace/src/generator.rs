//! The trace generator: catalogue × population × arrival processes →
//! a time-sorted stream of sessions.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use consume_local_stats::dist::{Categorical, Distribution, LogNormal, Poisson, TabulatedQuantile};
use consume_local_stats::par::{parallel_map, parallel_map_slices};
use consume_local_stats::rng::SeedDerive;
use consume_local_topology::IspRegistry;

use crate::arrival::{age_decay_weights, boosted_day_shares, DiurnalProfile};
use crate::churn::{ChurnConfig, ChurnConfigError};
use crate::content::{Catalogue, ContentItem};
use crate::device::DeviceClass;
use crate::popularity::Popularity;
use crate::population::{Population, UserId};
use crate::session::SessionRecord;
use crate::store::SessionStore;
use crate::time::{SimTime, SECS_PER_HOUR};

/// Configuration of a synthetic trace. Start from a preset
/// ([`TraceConfig::london_sep2013`]) and [`TraceConfig::scaled`] it down for
/// experimentation; all knobs are public for custom workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Days in the traced window.
    pub days: u32,
    /// Population size. Slightly above the paper's *active* user count
    /// because a share of light users watch nothing in a given month.
    pub users: u32,
    /// Target total session count across the window.
    pub sessions_target: u64,
    /// Catalogue size in items.
    ///
    /// Scaling note (DESIGN.md §2): [`TraceConfig::scaled`] shrinks the
    /// catalogue together with sessions so that *mean* per-item view counts
    /// stay at the paper's level. The catalogue *head* still shrinks with
    /// scale (the popularity normaliser covers fewer items), so scaled runs
    /// have smaller top-swarm capacities than full-scale London — see
    /// EXPERIMENTS.md for the scale sensitivity.
    pub catalogue_size: u32,
    /// Popularity model over the catalogue ranks.
    pub popularity: Popularity,
    /// Mean watched fraction of an episode (linear-space mean of a
    /// log-normal).
    pub mean_watch_fraction: f64,
    /// Log-space sigma of the watched fraction.
    pub watch_sigma: f64,
    /// Hour-of-day viewing profile.
    pub diurnal: DiurnalProfile,
    /// The ISPs users subscribe to.
    pub registry: IspRegistry,
    /// Churn & fault injection (session fragmentation, flash crowds).
    /// The default is disabled and leaves the trace byte-identical.
    pub churn: ChurnConfig,
}

impl TraceConfig {
    /// Full-scale September 2013 (Table I: 3.3 M active users, 23.5 M
    /// sessions, 30 days).
    pub fn london_sep2013() -> Self {
        Self {
            days: 30,
            users: 3_600_000,
            sessions_target: 23_500_000,
            catalogue_size: 24_000,
            popularity: Popularity::catchup_tv(),
            mean_watch_fraction: 0.72,
            watch_sigma: 0.5,
            diurnal: DiurnalProfile::evening_peak(),
            registry: IspRegistry::london_top5(),
            churn: ChurnConfig::default(),
        }
    }

    /// Full-scale July 2014 (Table I: 3.6 M active users, 24.2 M sessions,
    /// 31 days).
    pub fn london_jul2014() -> Self {
        Self {
            days: 31,
            users: 3_950_000,
            sessions_target: 24_200_000,
            catalogue_size: 24_800,
            ..Self::london_sep2013()
        }
    }

    /// Scales users, sessions and catalogue size by `scale ∈ (0, 1]`,
    /// preserving per-item view counts (see the `catalogue_size` field docs).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when `scale` is outside `(0, 1]`.
    pub fn scaled(mut self, scale: f64) -> Result<Self, TraceError> {
        if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
            return Err(TraceError::BadConfig {
                field: "scale",
                value: scale,
            });
        }
        self.users = ((f64::from(self.users) * scale).round() as u32).max(1);
        self.sessions_target = ((self.sessions_target as f64 * scale).round() as u64).max(1);
        self.catalogue_size = ((f64::from(self.catalogue_size) * scale).round() as u32).max(1);
        Ok(self)
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`TraceError`].
    pub fn validate(&self) -> Result<(), TraceError> {
        let bad = |field: &'static str, value: f64| Err(TraceError::BadConfig { field, value });
        if self.days == 0 {
            return bad("days", 0.0);
        }
        if self.users == 0 {
            return bad("users", 0.0);
        }
        if self.sessions_target == 0 {
            return bad("sessions_target", 0.0);
        }
        if self.catalogue_size == 0 {
            return bad("catalogue_size", 0.0);
        }
        if self.popularity.validate().is_err() {
            return bad("popularity", f64::NAN);
        }
        if !(0.0..=1.0).contains(&self.mean_watch_fraction) || self.mean_watch_fraction == 0.0 {
            return bad("mean_watch_fraction", self.mean_watch_fraction);
        }
        if !self.watch_sigma.is_finite() || self.watch_sigma <= 0.0 {
            return bad("watch_sigma", self.watch_sigma);
        }
        self.churn.validate()?;
        Ok(())
    }

    /// The traced horizon in seconds.
    pub fn horizon_seconds(&self) -> u64 {
        u64::from(self.days) * crate::time::SECS_PER_DAY
    }
}

/// Named workload scales for sweeps and benchmarks: each preset is a fixed
/// fraction of full-scale September-2013 London, chosen so experiment suites
/// can talk about "smoke" or "large" runs instead of raw scale fractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalePreset {
    /// ≈ 1 K users / 7 K sessions — CI smoke tests.
    Smoke,
    /// ≈ 4 K users / 23 K sessions — fast local iteration.
    Small,
    /// ≈ 18 K users / 117 K sessions — the benchmark reference scenario.
    Medium,
    /// ≈ 180 K users / 1.2 M sessions — the committed figure scale.
    Large,
    /// Full-scale London (3.6 M users / 23.5 M sessions).
    Full,
}

impl ScalePreset {
    /// Every preset, smallest first.
    pub const ALL: [ScalePreset; 5] = [
        ScalePreset::Smoke,
        ScalePreset::Small,
        ScalePreset::Medium,
        ScalePreset::Large,
        ScalePreset::Full,
    ];

    /// The scale fraction this preset applies.
    pub fn scale(self) -> f64 {
        match self {
            ScalePreset::Smoke => 0.0003,
            ScalePreset::Small => 0.001,
            ScalePreset::Medium => 0.005,
            ScalePreset::Large => 0.05,
            ScalePreset::Full => 1.0,
        }
    }

    /// A stable lower-case name for result files and bench ids.
    pub fn name(self) -> &'static str {
        match self {
            ScalePreset::Smoke => "smoke",
            ScalePreset::Small => "small",
            ScalePreset::Medium => "medium",
            ScalePreset::Large => "large",
            ScalePreset::Full => "full",
        }
    }

    /// Applies the preset to a base configuration.
    pub fn apply(self, base: TraceConfig) -> TraceConfig {
        base.scaled(self.scale())
            .expect("preset scales are in (0, 1]")
    }
}

impl fmt::Display for ScalePreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from trace configuration or generation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A configuration field is out of range.
    BadConfig {
        /// The field name.
        field: &'static str,
        /// The offending value (0.0 stands in for zero integer fields).
        value: f64,
    },
    /// The churn & fault-injection block is invalid.
    Churn(ChurnConfigError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadConfig { field, value } => {
                write!(f, "invalid trace config: `{field}` = {value}")
            }
            TraceError::Churn(e) => write!(f, "invalid churn config: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::BadConfig { .. } => None,
            TraceError::Churn(e) => Some(e),
        }
    }
}

impl From<ChurnConfigError> for TraceError {
    fn from(e: ChurnConfigError) -> Self {
        TraceError::Churn(e)
    }
}

/// A generated trace: the sessions plus the world they were generated from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    config: TraceConfig,
    catalogue: Catalogue,
    population: Population,
    sessions: Vec<SessionRecord>,
}

impl Trace {
    /// The sessions, sorted by start time.
    pub fn sessions(&self) -> &[SessionRecord] {
        &self.sessions
    }

    /// The content catalogue.
    pub fn catalogue(&self) -> &Catalogue {
        &self.catalogue
    }

    /// The user population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The generating configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The traced horizon in seconds.
    pub fn horizon_seconds(&self) -> u64 {
        self.config.horizon_seconds()
    }

    /// Assembles a trace from parts (for custom workloads or tests);
    /// sessions are sorted by start time on the way in.
    pub fn from_parts(
        config: TraceConfig,
        catalogue: Catalogue,
        population: Population,
        mut sessions: Vec<SessionRecord>,
    ) -> Self {
        sort_sessions(&mut sessions);
        Self {
            config,
            catalogue,
            population,
            sessions,
        }
    }
}

/// Canonical trace order: `(start, user, content)`, compared as one packed
/// 128-bit key so the hot sort does a single integer comparison per element.
///
/// `sort_unstable` is deterministic for a given input sequence, so the
/// parallel generator (which concatenates per-item results in catalogue
/// order, independent of worker count) produces byte-identical traces for
/// any worker count.
pub(crate) fn sort_sessions(sessions: &mut [SessionRecord]) {
    sessions.sort_unstable_by_key(session_sort_key);
}

fn session_sort_key(s: &SessionRecord) -> u128 {
    (u128::from(s.start.as_secs()) << 64) | (u128::from(s.user.0) << 32) | u128::from(s.content.0)
}

/// Merges per-item session batches into canonical trace order
/// with one exact-size allocation: a counting pass sizes per-start-hour
/// buckets, a placement pass scatters the records hour-major (stable within
/// a bucket, so the layout is independent of worker count), and each bucket
/// then sorts independently. Sorting ~720 L1-resident hour slices beats one
/// global sort of the scrambled concatenation — the start column only
/// interleaves *within* an hour, never across hours.
///
/// The per-bucket sorts fan out across up to `workers` threads over the
/// disjoint bucket slices ([`parallel_map_slices`]):
/// every bucket sorts to the same bytes no matter which worker picks it up,
/// so the merged trace is **byte-identical for any worker count** (the
/// counting and scatter passes stay serial — they are cheap, order-defining
/// passes). This is the merge phase of [`TraceGenerator::generate`]; it is
/// public so benchmarks and custom pipelines can drive it directly.
pub fn merge_session_batches(
    per_item: &[Vec<SessionRecord>],
    workers: usize,
) -> Vec<SessionRecord> {
    merge_session_batches_inner(per_item, workers, false)
}

/// [`merge_session_batches`] with the compact key path disabled: every hour
/// bucket takes the wide record sort regardless of the measured maxima.
/// Output is byte-identical to the fast path — this entry exists so tests
/// can pin that equivalence on demand (the legacy fallback is otherwise
/// unreachable below pathological maxima).
#[doc(hidden)]
pub fn merge_session_batches_wide(
    per_item: &[Vec<SessionRecord>],
    workers: usize,
) -> Vec<SessionRecord> {
    merge_session_batches_inner(per_item, workers, true)
}

fn merge_session_batches_inner(
    per_item: &[Vec<SessionRecord>],
    workers: usize,
    force_wide: bool,
) -> Vec<SessionRecord> {
    let total: usize = per_item.iter().map(Vec::len).sum();
    let Some(&fill) = per_item.iter().find_map(|batch| batch.first()) else {
        return Vec::new();
    };
    let bucket_of = |s: &SessionRecord| (s.start.as_secs() / SECS_PER_HOUR) as usize;
    let buckets = 1 + per_item
        .iter()
        .flatten()
        .map(bucket_of)
        .max()
        .expect("total > 0");

    let mut cursors = vec![0usize; buckets];
    for batch in per_item {
        for s in batch {
            cursors[bucket_of(s)] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(buckets + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for c in &mut cursors {
        let count = *c;
        *c = acc; // cursor now points at the bucket's first slot
        acc += count;
        offsets.push(acc);
    }
    debug_assert_eq!(acc, total);

    // Exact post-count reservation: per-item counts are known, so the merge
    // allocates once instead of over-reserving up front (`fill` is
    // overwritten in every slot).
    let mut sessions = vec![fill; total];
    for batch in per_item {
        for s in batch {
            let cursor = &mut cursors[bucket_of(s)];
            sessions[*cursor] = *s;
            *cursor += 1;
        }
    }
    // Hour buckets are L1-resident (~7 KB at medium scale), so sorting
    // compact 16-byte `(key, index)` pairs and gathering once moves less
    // memory than swapping 40-byte records through a comparison sort. The
    // 64-bit key layout is sized from the measured maxima below, so any
    // scenario whose joint field widths fit 64 bits — every London and
    // metro preset — sorts on this fast path; truly pathological worlds
    // take the plain record sort.
    let (mut max_start, mut max_user, mut max_content) = (0u64, 0u32, 0u32);
    for s in &sessions {
        max_start = max_start.max(s.start.as_secs());
        max_user = max_user.max(s.user.0);
        max_content = max_content.max(s.content.0);
    }
    let layout = if force_wide {
        None
    } else {
        SortKeyLayout::from_maxima((max_start, max_user, max_content))
    };
    parallel_map_slices(&mut sessions, &offsets, workers, |_, slice| {
        sort_bucket(slice, layout);
    });
    sessions
}

/// Sorts one hour bucket into canonical order — via compact 64-bit
/// key/index pairs when the scenario fits a [`SortKeyLayout`], via the
/// plain record sort otherwise. Scratch is bucket-local, so buckets sort
/// independently on any thread.
fn sort_bucket(slice: &mut [SessionRecord], layout: Option<SortKeyLayout>) {
    if slice.len() < 2 {
        return;
    }
    let Some(layout) = layout else {
        slice.sort_unstable_by_key(session_sort_key);
        return;
    };
    let mut keys: Vec<(u64, u32)> = slice
        .iter()
        .enumerate()
        .map(|(i, s)| (layout.pack(s), i as u32))
        .collect();
    keys.sort_unstable();
    let scratch: Vec<SessionRecord> = keys.iter().map(|&(_, i)| slice[i as usize]).collect();
    slice.copy_from_slice(&scratch);
}

/// The dynamic bit layout of the compact 64-bit session sort key.
///
/// The key packs `(start seconds, user id, content id)` most-significant
/// first, with each field's width sized from the **measured trace maxima**
/// — `bits(field) = bits needed to hold the largest observed value`. A
/// layout exists iff the three widths jointly fit 64 bits; packed keys
/// then compare exactly like the lexicographic `(start, user, content)`
/// tuple, because no field can overflow into its neighbour. Scenarios that
/// blow one [`sort_key_bounds`] bound but are slack elsewhere (a 31-day
/// metro month with 18 M users uses 22 + 25 + 17 = 64 bits) still sort on
/// the fast path; only jointly pathological shapes fall back to the wide
/// record sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKeyLayout {
    /// Bit width of the user-id field.
    user_bits: u32,
    /// Bit width of the content-id field.
    item_bits: u32,
}

impl SortKeyLayout {
    /// Sizes a layout from measured `(max start seconds, max user id, max
    /// content id)`. Returns `None` when the joint field widths exceed 64
    /// bits — the wide-record-sort fallback condition, shared verbatim by
    /// [`sort_key_fallback_required`], `TraceStats::sort_key_fallback` and
    /// the engine's `SortKeyFallback` warning.
    pub fn from_maxima(maxima: (u64, u32, u32)) -> Option<Self> {
        let (max_start, max_user, max_content) = maxima;
        let start_bits = u64::BITS - max_start.leading_zeros();
        let user_bits = u32::BITS - max_user.leading_zeros();
        let item_bits = u32::BITS - max_content.leading_zeros();
        if start_bits + user_bits + item_bits <= u64::BITS {
            Some(Self {
                user_bits,
                item_bits,
            })
        } else {
            None
        }
    }

    /// Packs one record into its 64-bit key. Keys from the same layout
    /// order exactly like the canonical `(start, user, content)` tuple.
    pub fn pack(&self, s: &SessionRecord) -> u64 {
        // `wrapping_shl` covers the one degenerate shape where
        // user_bits + item_bits == 64: `from_maxima` then guarantees
        // start_bits == 0, i.e. every start is 0 and the shifted value is 0
        // either way.
        s.start
            .as_secs()
            .wrapping_shl(self.user_bits + self.item_bits)
            | (u64::from(s.user.0) << self.item_bits)
            | u64::from(s.content.0)
    }

    /// Unpacks a key back into `(start seconds, user id, content id)` —
    /// the inverse of [`SortKeyLayout::pack`] for any record within the
    /// maxima the layout was sized from.
    pub fn unpack(&self, key: u64) -> (u64, u32, u32) {
        let item_mask = (1u128 << self.item_bits) - 1;
        let user_mask = (1u128 << self.user_bits) - 1;
        let item = (u128::from(key) & item_mask) as u32;
        let user = ((u128::from(key) >> self.item_bits) & user_mask) as u32;
        let start = u128::from(key) >> (self.user_bits + self.item_bits);
        (start as u64, user, item)
    }
}

/// Whether `(max start seconds, max user id, max content id)` force the
/// wide record-sort fallback: true iff no [`SortKeyLayout`] fits. This
/// predicate is the **single source of truth** for the fallback condition —
/// the merge path, [`crate::TraceStats::sort_key_fallback`] and the
/// engine's `SimWarning::SortKeyFallback` all call it (directly or through
/// [`SortKeyLayout::from_maxima`]), so packing, stats and warning can never
/// disagree.
pub fn sort_key_fallback_required(maxima: (u64, u32, u32)) -> bool {
    SortKeyLayout::from_maxima(maxima).is_none()
}

/// Guaranteed-simultaneous bounds of the compact 64-bit session sort key:
/// any trace whose fields are *all* strictly below these bounds is
/// guaranteed the fast path (23 + 24 + 17 = 64 bits). They are a floor,
/// not a ceiling — the layout is sized from measured maxima
/// ([`SortKeyLayout::from_maxima`]), so a scenario over one bound still
/// sorts compact while the others leave slack (e.g. 18 M users in a
/// 31-day horizon). Every London and metro preset fits; only jointly
/// pathological worlds take the (identical-output, slower) wide record
/// sort — [`crate::TraceStats::sort_key_fallback`] reports which path a
/// trace takes, and the simulation engine surfaces the measured maxima as
/// a structured `SimReport` warning (it reads them off
/// [`crate::SessionStore::sort_key_maxima`]).
pub mod sort_key_bounds {
    /// Start-time bound: 2²³ seconds ≈ 97-day horizons.
    pub const START_SECS: u64 = 1 << 23;
    /// User-id bound: 2²⁴ ≈ 16.8 M users.
    pub const USERS: u32 = 1 << 24;
    /// Content-id bound: 2¹⁷ ≈ 131 K items.
    pub const ITEMS: u32 = 1 << 17;
}

/// The generator: a [`TraceConfig`] plus a master seed.
///
/// Generation is deterministic in the seed, and every component draws from
/// its own derived stream, so e.g. enlarging the catalogue does not perturb
/// the population. Per-content-item session synthesis additionally owns an
/// *indexed* stream (`stream_indexed("arrivals", item)`), which is what lets
/// [`TraceGenerator::workers`] fan items across threads while keeping the
/// generated trace **byte-identical** to the serial one: per-item results
/// depend only on the item's own stream, and the merge concatenates them in
/// catalogue order before the canonical global sort.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
    seeds: SeedDerive,
    workers: usize,
}

/// Affinity of a user with mainstreamness `m` for each popularity tier
/// (head = top 1 % of items, mid = next 9 %, tail = rest).
///
/// The contrast is strong by design: catch-up TV audiences split into
/// hit-watchers and niche browsers, which is what produces the bimodal
/// per-user carbon outcome of Fig. 6 (many carbon-positive mainstream users,
/// a long negative tail of niche viewers).
fn tier_affinity(mainstreamness: f64, tier: usize) -> f64 {
    match tier {
        0 => 0.10 + 0.90 * mainstreamness,
        1 => 0.70,
        _ => 1.00 - 0.90 * mainstreamness,
    }
}

/// Tier of an item given its rank and the catalogue size.
fn tier_of(rank: u32, catalogue_size: u32) -> usize {
    let frac = f64::from(rank) / f64::from(catalogue_size.max(1));
    if frac < 0.01 {
        0
    } else if frac < 0.10 {
        1
    } else {
        2
    }
}

/// The shared, read-only sampling context of one `generate()` call: built
/// once, then borrowed by every per-item synthesis task.
struct Samplers {
    /// Per-tier viewer samplers: weight = activity × taste affinity.
    viewer_tables: Vec<Categorical>,
    device_sampler: Categorical,
    /// Hour-of-day sampler over the diurnal profile (the hour factor of the
    /// non-homogeneous Poisson rate, identical for every item and day).
    hour_sampler: Categorical,
    /// Tabulated watched-fraction quantiles: one uniform draw per session
    /// instead of a polar-method normal plus `exp`.
    watch_table: TabulatedQuantile,
}

impl TraceGenerator {
    /// Interpolation intervals in the watched-fraction quantile table; CDF
    /// error is bounded by `1/RESOLUTION`, far below the generator's
    /// statistical tolerances.
    const WATCH_TABLE_RESOLUTION: usize = 2048;

    /// Creates a (serial) generator; see [`TraceGenerator::workers`] for the
    /// parallel fan-out.
    pub fn new(config: TraceConfig, seed: u64) -> Self {
        Self {
            config,
            seeds: SeedDerive::new(seed),
            workers: 1,
        }
    }

    /// Fans per-item session synthesis across up to `workers` threads
    /// (clamped to at least one). The generated trace is byte-identical for
    /// every worker count — each item draws from its own indexed RNG stream
    /// and results merge in catalogue order.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Generates the trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the configuration fails
    /// [`TraceConfig::validate`].
    pub fn generate(&self) -> Result<Trace, TraceError> {
        self.config.validate()?;
        let (catalogue, population, samplers) = self.build_world();

        // Fan per-item synthesis out across workers. Each item's sessions
        // are a pure function of the item and its own RNG stream, so the
        // per-item vectors are identical for any worker count; slot-ordered
        // placement keeps the merge in catalogue order.
        let items = catalogue.items();
        let per_item: Vec<Vec<SessionRecord>> = parallel_map(items.len(), self.workers, |i| {
            self.synthesise_item(&items[i], &catalogue, &population, &samplers)
        });
        let sessions = merge_session_batches(&per_item, self.workers);
        Ok(Trace {
            config: self.config.clone(),
            catalogue,
            population,
            sessions,
        })
    }

    /// Builds the deterministic world of one generation run: the catalogue,
    /// the population and the shared read-only samplers. Each component
    /// draws from its own derived stream, so this is identical for the
    /// monolithic and segmented emit paths.
    fn build_world(&self) -> (Catalogue, Population, Samplers) {
        let cfg = &self.config;
        let catalogue = Catalogue::generate(
            cfg.catalogue_size,
            cfg.popularity,
            cfg.days,
            &mut self.seeds.stream("catalogue"),
        )
        .expect("validated config");
        let population = Population::generate(
            cfg.users,
            &cfg.registry,
            &mut self.seeds.stream("population"),
        )
        .expect("validated config");

        let viewer_tables: Vec<Categorical> = (0..3)
            .map(|tier| {
                let weights: Vec<f64> = population
                    .users()
                    .iter()
                    .map(|u| u.activity * tier_affinity(u.mainstreamness, tier))
                    .collect();
                Categorical::new(&weights).expect("population activity weights are positive")
            })
            .collect();
        let watch_dist = LogNormal::with_mean(cfg.mean_watch_fraction, cfg.watch_sigma)
            .expect("validated config");
        let samplers = Samplers {
            viewer_tables,
            device_sampler: DeviceClass::mix_sampler(),
            hour_sampler: Categorical::new(cfg.diurnal.weights())
                .expect("diurnal weights are normalised"),
            watch_table: TabulatedQuantile::from_quantile(Self::WATCH_TABLE_RESOLUTION, |p| {
                watch_dist.quantile(p)
            })
            .expect("log-normal quantiles are monotone"),
        };
        (catalogue, population, samplers)
    }

    /// Opens the **segmented emit mode**: a [`SegmentStream`] that
    /// synthesises and merges sessions one day at a time, yielding each day
    /// as a columnar [`SessionStore`] segment.
    ///
    /// Every item keeps a persistent RNG positioned exactly where the
    /// monolithic generator's day loop would have it, so the concatenated
    /// segments are **byte-identical** to [`TraceGenerator::generate`]'s
    /// trace (columnarised) — while peak memory holds one day instead of
    /// the whole horizon. Per-day synthesis fans across
    /// [`TraceGenerator::workers`] threads and each day's merge reuses the
    /// hour-bucketed parallel [`merge_session_batches`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the configuration fails
    /// [`TraceConfig::validate`].
    ///
    /// # Example
    ///
    /// ```
    /// use consume_local_trace::{SessionStore, TraceConfig, TraceGenerator};
    ///
    /// # fn main() -> Result<(), consume_local_trace::TraceError> {
    /// let generator = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003)?, 9);
    /// let monolithic = SessionStore::from_trace(&generator.generate()?);
    /// let mut stream = generator.segments()?;
    /// let mut total = 0;
    /// while let Some(segment) = stream.next_segment() {
    ///     total += segment.len(); // one resident day at a time
    /// }
    /// assert_eq!(total, monolithic.len());
    /// # Ok(())
    /// # }
    /// ```
    pub fn segments(&self) -> Result<SegmentStream<'_>, TraceError> {
        self.config.validate()?;
        let (catalogue, population, samplers) = self.build_world();
        let plans: Vec<ItemPlan> = catalogue
            .items()
            .iter()
            .map(|item| self.item_plan(item, &catalogue))
            .collect();
        let streams: Vec<ItemStream> = catalogue
            .items()
            .iter()
            .map(|item| ItemStream {
                rng: self.seeds.stream_indexed("arrivals", u64::from(item.id.0)),
                pending: Vec::new(),
            })
            .collect();
        let rng_offsets: Vec<usize> = (0..=streams.len()).collect();
        Ok(SegmentStream {
            generator: self,
            catalogue,
            population,
            samplers,
            plans,
            streams,
            rng_offsets,
            next_day: 0,
            columnarize_ms: 0.0,
        })
    }

    /// Generates the trace directly into a materialised
    /// [`SegmentedStore`](crate::store::SegmentedStore) (collects
    /// [`TraceGenerator::segments`]; peak memory is *not* bounded — use the
    /// stream for that).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the configuration fails
    /// [`TraceConfig::validate`].
    pub fn generate_segmented(&self) -> Result<crate::store::SegmentedStore, TraceError> {
        let mut stream = self.segments()?;
        let mut segments = Vec::with_capacity(self.config.days as usize);
        while let Some(segment) = stream.next_segment() {
            segments.push(segment);
        }
        Ok(crate::store::SegmentedStore::from_day_segments(
            segments,
            self.config.horizon_seconds(),
            stream.population().len(),
        ))
    }

    /// Synthesises every session of one content item from the item's own
    /// RNG stream.
    ///
    /// Arrival sampling is day-level: the non-homogeneous Poisson rate
    /// factorises into `expected_views × day_share × hour_weight`, so one
    /// `Poisson(expected_views × day_share)` draw fixes the day's session
    /// count and each session then draws its hour from the (shared) diurnal
    /// sampler. This hoists the `Poisson` construction out of the old
    /// 24-iteration hour loop and skips a day's synthesis entirely when its
    /// count comes up zero — the old per-(day, hour) loop paid an `exp` and
    /// an RNG draw for every tiny-but-positive window rate.
    ///
    /// The day loop is [`TraceGenerator::synthesise_item_day`] — the same
    /// body the segmented emitter ([`TraceGenerator::segments`]) drives one
    /// day at a time with a persistent per-item RNG, which is why the two
    /// paths draw identical session streams.
    fn synthesise_item(
        &self,
        item: &ContentItem,
        catalogue: &Catalogue,
        population: &Population,
        samplers: &Samplers,
    ) -> Vec<SessionRecord> {
        let plan = self.item_plan(item, catalogue);
        if plan.day_shares.is_none() {
            return Vec::new();
        }
        let mut rng = self.seeds.stream_indexed("arrivals", u64::from(item.id.0));
        let mut out = Vec::with_capacity(plan.expected_views.ceil() as usize + 4);
        for day in 0..self.config.days {
            self.synthesise_item_day(item, &plan, day, samplers, population, &mut rng, &mut out);
        }
        out
    }

    /// Precomputes the parts of an item's synthesis that do not consume its
    /// RNG stream: expected views, popularity tier and per-day arrival
    /// shares (`None` when the item generates nothing).
    fn item_plan(&self, item: &ContentItem, catalogue: &Catalogue) -> ItemPlan {
        let cfg = &self.config;
        let expected_views = catalogue.popularity_share(item.id) * cfg.sessions_target as f64;
        let day_shares = if expected_views <= 0.0 {
            None
        } else {
            age_decay_weights(item.broadcast_day, cfg.days)
                .map(|weights| boosted_day_shares(&weights))
        };
        ItemPlan {
            expected_views,
            tier: tier_of(item.id.0, cfg.catalogue_size),
            day_shares,
        }
    }

    /// Synthesises one item's sessions for one day, continuing the item's
    /// RNG stream exactly where the previous day left it. Appends to `out`.
    #[allow(clippy::too_many_arguments)]
    fn synthesise_item_day<R: Rng + ?Sized>(
        &self,
        item: &ContentItem,
        plan: &ItemPlan,
        day: u32,
        samplers: &Samplers,
        population: &Population,
        rng: &mut R,
        out: &mut Vec<SessionRecord>,
    ) {
        let Some(day_shares) = &plan.day_shares else {
            return;
        };
        let churn = &self.config.churn;
        let lambda = plan.expected_views * day_shares[day as usize] * churn.flash_multiplier(day);
        if lambda <= 0.0 {
            return;
        }
        let n = Poisson::new(lambda).expect("lambda > 0").sample(rng) as u64;
        if !churn.fragments() {
            for _ in 0..n {
                let hour = samplers.hour_sampler.sample_fast(rng) as u32;
                out.push(self.make_session(item, day, hour, plan.tier, samplers, population, rng));
            }
            return;
        }
        // Churn: fragment each session into availability intervals, drawing
        // from the same per-item stream right after the session itself — the
        // draw count is schedule-independent, so the monolithic and
        // segmented paths stay byte-identical. Fragments that would start
        // past the horizon are dropped *after* the draws, identically on
        // both paths.
        let horizon = self.config.horizon_seconds();
        for _ in 0..n {
            let hour = samplers.hour_sampler.sample_fast(rng) as u32;
            let session = self.make_session(item, day, hour, plan.tier, samplers, population, rng);
            for (offset, len) in churn.availability_intervals(session.duration_secs, rng) {
                let start = session.start + u64::from(offset);
                if start.as_secs() >= horizon {
                    break;
                }
                out.push(SessionRecord {
                    start,
                    duration_secs: len,
                    ..session
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_session<R: Rng + ?Sized>(
        &self,
        item: &ContentItem,
        day: u32,
        hour: u32,
        tier: usize,
        samplers: &Samplers,
        population: &Population,
        rng: &mut R,
    ) -> SessionRecord {
        let start = SimTime::from_day_hour(day, hour) + rng.gen_range(0..SECS_PER_HOUR);
        let viewer = UserId(samplers.viewer_tables[tier].sample_fast(rng) as u32);
        let profile = population
            .get(viewer)
            .expect("sampler indexes the population");
        let device = DeviceClass::MIX[samplers.device_sampler.sample_fast(rng)].0;
        let fraction = samplers.watch_table.sample(rng).clamp(0.02, 1.0);
        let item_duration = item.duration_secs;
        let duration = ((f64::from(item_duration) * fraction) as u32).clamp(60, item_duration);
        SessionRecord {
            user: viewer,
            content: item.id,
            start,
            duration_secs: duration,
            device,
            isp: profile.isp,
            location: profile.location,
        }
    }
}

/// One item's RNG-free synthesis plan: what [`TraceGenerator`] knows about
/// the item before any arrival is drawn.
struct ItemPlan {
    /// The item's expected total views over the horizon.
    expected_views: f64,
    /// Popularity tier (head / mid / tail) for viewer-taste weighting.
    tier: usize,
    /// Per-day arrival shares; `None` when the item generates no sessions.
    day_shares: Option<Vec<f64>>,
}

/// One item's persistent generation state in the segmented emit mode: the
/// item's arrival RNG stream plus the churn fragments it has synthesized
/// that start on a *later* day than the day that synthesized them.
struct ItemStream {
    /// The item's persistent arrival stream — the invariant that makes
    /// per-day emission draw-identical to the monolithic day loop.
    rng: rand::rngs::StdRng,
    /// Fragments deferred to their start day, in generation order. The
    /// day-exact partition of [`SegmentedStore`](crate::store::SegmentedStore)
    /// requires every emitted record to start in the emitted day; churn
    /// rejoin gaps can push a fragment past midnight, so it waits here.
    pending: Vec<SessionRecord>,
}

/// The segmented emit mode of [`TraceGenerator::segments`]: a resumable
/// generator that yields one day of the trace at a time as a columnar
/// [`SessionStore`] segment.
///
/// Per-item RNG streams persist across days, so the emitted segments
/// concatenate to exactly the monolithic trace; only one day's rows and
/// columns are ever resident. Feed the segments to
/// `Simulator::run_trace_stream` (in `consume-local-sim`) for the
/// bounded-memory generate-and-simulate pipeline, or collect them with
/// [`TraceGenerator::generate_segmented`].
pub struct SegmentStream<'g> {
    generator: &'g TraceGenerator,
    catalogue: Catalogue,
    population: Population,
    samplers: Samplers,
    plans: Vec<ItemPlan>,
    /// Per-item persistent state (RNG stream + deferred churn fragments).
    streams: Vec<ItemStream>,
    /// Unit-width chunk offsets over `streams` for the disjoint-slice
    /// fan-out.
    rng_offsets: Vec<usize>,
    next_day: u32,
    columnarize_ms: f64,
}

impl fmt::Debug for SegmentStream<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentStream")
            .field("next_day", &self.next_day)
            .field("days", &self.generator.config.days)
            .field("items", &self.plans.len())
            .finish_non_exhaustive()
    }
}

impl SegmentStream<'_> {
    /// Synthesises, merges and columnarises the next day's sessions;
    /// `None` once every horizon day has been emitted.
    ///
    /// Per-item synthesis fans across the generator's worker count through
    /// [`parallel_map_slices`] (each worker owns the items it steals — and
    /// their RNGs — through a disjoint `&mut` chunk), and the day's batches
    /// merge through the same hour-bucketed parallel
    /// [`merge_session_batches`] the monolithic path uses. The emitted
    /// segment is byte-identical for any worker count.
    pub fn next_segment(&mut self) -> Option<SessionStore> {
        let config = &self.generator.config;
        if self.next_day >= config.days {
            return None;
        }
        let day = self.next_day;
        self.next_day += 1;

        let generator = self.generator;
        let items = self.catalogue.items();
        let plans = &self.plans;
        let samplers = &self.samplers;
        let population = &self.population;
        let per_item: Vec<Vec<SessionRecord>> = parallel_map_slices(
            &mut self.streams,
            &self.rng_offsets,
            generator.workers,
            |i, slot| {
                let state = &mut slot[0];
                let mut fresh = Vec::new();
                generator.synthesise_item_day(
                    &items[i],
                    &plans[i],
                    day,
                    samplers,
                    population,
                    &mut state.rng,
                    &mut fresh,
                );
                // Emit this day's records in the monolithic path's order:
                // fragments deferred from earlier synthesis days first (they
                // were generated first), then today's synthesis. Fresh
                // fragments that start past midnight wait in `pending`.
                let mut out = Vec::new();
                state.pending.retain(|s| {
                    if s.start.day() == day {
                        out.push(*s);
                        false
                    } else {
                        true
                    }
                });
                for s in fresh {
                    if s.start.day() == day {
                        out.push(s);
                    } else {
                        state.pending.push(s);
                    }
                }
                out
            },
        );
        let sessions = merge_session_batches(&per_item, generator.workers);
        // lint:allow(no-wall-clock) columnarize_ms telemetry for the bench
        // harness; never part of a trace, report, or any gated output
        let start = std::time::Instant::now();
        let segment =
            SessionStore::from_sorted(&sessions, config.horizon_seconds(), self.population.len());
        self.columnarize_ms += start.elapsed().as_secs_f64() * 1e3;
        Some(segment)
    }

    /// The day index the next [`SegmentStream::next_segment`] call emits
    /// (equals the number of segments emitted so far).
    pub fn next_day(&self) -> u32 {
        self.next_day
    }

    /// The generating configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.generator.config
    }

    /// The content catalogue of this generation run.
    pub fn catalogue(&self) -> &Catalogue {
        &self.catalogue
    }

    /// The user population of this generation run.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Accumulated wall-clock time spent columnarising emitted segments, in
    /// milliseconds (the rest of [`SegmentStream::next_segment`]'s cost is
    /// synthesis + merge).
    pub fn columnarize_ms(&self) -> f64 {
        self.columnarize_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TraceConfig {
        TraceConfig::london_sep2013().scaled(0.001).unwrap()
    }

    fn small_trace() -> Trace {
        TraceGenerator::new(small_config(), 1234)
            .generate()
            .unwrap()
    }

    #[test]
    fn scaling_preserves_views_per_item() {
        let full = TraceConfig::london_sep2013();
        let small = full.clone().scaled(0.01).unwrap();
        let full_per_item = full.sessions_target as f64 / f64::from(full.catalogue_size);
        let small_per_item = small.sessions_target as f64 / f64::from(small.catalogue_size);
        assert!((full_per_item / small_per_item - 1.0).abs() < 0.01);
    }

    #[test]
    fn scale_validation() {
        let cfg = TraceConfig::london_sep2013();
        assert!(cfg.clone().scaled(0.0).is_err());
        assert!(cfg.clone().scaled(-0.5).is_err());
        assert!(cfg.clone().scaled(1.5).is_err());
        assert!(cfg.clone().scaled(f64::NAN).is_err());
        assert!(cfg.scaled(1.0).is_ok());
    }

    #[test]
    fn config_validation_catches_each_field() {
        let base = small_config();
        let mut c = base.clone();
        c.days = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.users = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.sessions_target = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.catalogue_size = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.popularity = Popularity::Zipf { exponent: -1.0 };
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.mean_watch_fraction = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.watch_sigma = f64::NAN;
        assert!(c.validate().is_err());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn session_count_near_target() {
        let trace = small_trace();
        let target = trace.config().sessions_target as f64;
        let actual = trace.sessions().len() as f64;
        assert!(
            (actual / target - 1.0).abs() < 0.05,
            "sessions {actual} vs target {target}"
        );
    }

    #[test]
    fn sessions_sorted_and_within_window() {
        let trace = small_trace();
        let horizon = trace.horizon_seconds();
        assert!(trace
            .sessions()
            .windows(2)
            .all(|w| w[0].start <= w[1].start));
        for s in trace.sessions() {
            assert!(s.start.as_secs() < horizon);
            assert!(s.duration_secs >= 60);
            let item = trace.catalogue().get(s.content).unwrap();
            assert!(s.duration_secs <= item.duration_secs);
        }
    }

    #[test]
    fn sessions_reference_population_consistently() {
        let trace = small_trace();
        for s in trace.sessions().iter().take(5_000) {
            let u = trace.population().get(s.user).unwrap();
            assert_eq!(s.isp, u.isp);
            assert_eq!(s.location, u.location);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TraceGenerator::new(small_config(), 77).generate().unwrap();
        let b = TraceGenerator::new(small_config(), 77).generate().unwrap();
        assert_eq!(a.sessions(), b.sessions());
        let c = TraceGenerator::new(small_config(), 78).generate().unwrap();
        assert_ne!(a.sessions(), c.sessions());
    }

    #[test]
    fn popular_items_get_more_views() {
        let trace = small_trace();
        let n = trace.catalogue().len() as u32;
        let mut views = vec![0u32; n as usize];
        for s in trace.sessions() {
            views[s.content.0 as usize] += 1;
        }
        // Head item dominates the tail: with Zipf s = 0.55 over the scaled
        // 24-item catalogue the head/tail view ratio is ≈ 24^0.55 ≈ 5.7
        // in expectation (taste affinities flatten it somewhat).
        let head = views[0];
        let tail: f64 = views[(n as usize * 9 / 10)..]
            .iter()
            .map(|&v| f64::from(v))
            .sum::<f64>()
            / (n as f64 / 10.0);
        assert!(
            f64::from(head) > 3.0 * tail,
            "head {head} vs mean tail {tail}"
        );
    }

    #[test]
    fn evening_peak_visible() {
        let trace = small_trace();
        let mut by_hour = [0u32; 24];
        for s in trace.sessions() {
            by_hour[s.start.hour_of_day() as usize] += 1;
        }
        let peak: u32 = (19..23).map(|h| by_hour[h]).sum();
        let trough: u32 = (2..6).map(|h| by_hour[h]).sum();
        assert!(peak > 8 * trough, "prime time {peak} vs night {trough}");
    }

    #[test]
    fn mainstream_users_watch_more_head_content() {
        let trace = small_trace();
        let head_cut = trace.catalogue().len() as u32 / 100; // top 1%
        let mut head_m = Vec::new();
        let mut tail_m = Vec::new();
        for s in trace.sessions() {
            let m = trace.population().get(s.user).unwrap().mainstreamness;
            if s.content.0 < head_cut.max(1) {
                head_m.push(m);
            } else if s.content.0 > trace.catalogue().len() as u32 / 10 {
                tail_m.push(m);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&head_m) > mean(&tail_m) + 0.05,
            "head viewers {} vs tail viewers {}",
            mean(&head_m),
            mean(&tail_m)
        );
    }

    #[test]
    fn from_parts_sorts() {
        let trace = small_trace();
        let mut shuffled = trace.sessions().to_vec();
        shuffled.reverse();
        let rebuilt = Trace::from_parts(
            trace.config().clone(),
            trace.catalogue().clone(),
            trace.population().clone(),
            shuffled,
        );
        assert!(rebuilt
            .sessions()
            .windows(2)
            .all(|w| w[0].start <= w[1].start));
        assert_eq!(rebuilt.sessions().len(), trace.sessions().len());
    }

    #[test]
    fn error_display() {
        let err = TraceConfig::london_sep2013().scaled(2.0).unwrap_err();
        assert!(err.to_string().contains("scale"));
    }

    #[test]
    fn merge_matches_global_sort_for_any_worker_count() {
        let trace = small_trace();
        // Group the trace's sessions into per-item batches — the same shape
        // the per-item synthesis emits (batch order must not matter beyond
        // tie-breaking, which the canonical key removes).
        let items = trace.catalogue().len();
        let mut per_item: Vec<Vec<SessionRecord>> = vec![Vec::new(); items];
        for s in trace.sessions() {
            per_item[s.content.0 as usize].push(*s);
        }
        let mut expected = trace.sessions().to_vec();
        sort_sessions(&mut expected);
        for workers in [1, 2, 8] {
            assert_eq!(
                merge_session_batches(&per_item, workers),
                expected,
                "{workers} merge workers"
            );
        }
    }

    /// A record straddling one compact-key bound.
    fn bound_record(start: u64, user: u32, content: u32, duration: u32) -> SessionRecord {
        use consume_local_topology::{ExchangeId, IspId, IspTopology};

        use crate::content::ContentId;
        SessionRecord {
            user: UserId(user),
            content: ContentId(content),
            start: SimTime(start),
            duration_secs: duration,
            device: DeviceClass::Desktop,
            isp: IspId(0),
            location: IspTopology::london_table3()
                .unwrap()
                .location_of(ExchangeId(0)),
        }
    }

    /// The retired 59-bit packing (22-bit start / 22-bit user / 15-bit
    /// content), kept as the oracle for the re-packed dynamic key: within
    /// the old bounds both packings must order records identically.
    fn legacy_sort_key_59(s: &SessionRecord) -> u64 {
        (s.start.as_secs() << 37) | (u64::from(s.user.0) << 15) | u64::from(s.content.0)
    }

    /// Old 59-bit limits: the boundary shapes every key test pins.
    const OLD_START: u64 = 1 << 22;
    const OLD_USERS: u32 = 1 << 22;
    const OLD_ITEMS: u32 = 1 << 15;

    #[test]
    fn wide_sort_fallback_identical_at_every_bound() {
        // One batch per boundary shape. Shapes that exceed a single old
        // 59-bit limit — or a single new guaranteed bound — now sort on the
        // compact fast path (the layout is sized from the measured maxima);
        // only the jointly pathological final cases force the wide record
        // sort. Either way the merged order must be byte-identical to the
        // canonical global sort, and to the forced-wide merge.
        let cases: Vec<(&str, bool, Vec<SessionRecord>)> = vec![
            (
                "within old 59-bit bounds",
                false,
                vec![
                    bound_record(OLD_START - 1, OLD_USERS - 1, OLD_ITEMS - 1, 90),
                    bound_record(3, 7, 1, 60),
                    bound_record(3, 7, 0, 61),
                    bound_record(3, 6, 2, 62),
                ],
            ),
            (
                "start exceeds old 2^22 s",
                false,
                vec![
                    bound_record(OLD_START + 17, 1, 1, 60),
                    bound_record(OLD_START + 17, 0, 2, 60),
                    bound_record(5, 2, 0, 60),
                ],
            ),
            (
                "user exceeds old 2^22",
                false,
                vec![
                    bound_record(10, OLD_USERS, 1, 60),
                    bound_record(10, OLD_USERS + 3, 0, 60),
                    bound_record(10, 4, 2, 60),
                ],
            ),
            (
                "content exceeds old 2^15",
                false,
                vec![
                    bound_record(44, 9, OLD_ITEMS, 60),
                    bound_record(44, 9, OLD_ITEMS + 2, 60),
                    bound_record(44, 2, 3, 60),
                ],
            ),
            (
                "every field at its new guaranteed bound",
                false,
                vec![
                    bound_record(
                        sort_key_bounds::START_SECS - 1,
                        sort_key_bounds::USERS - 1,
                        sort_key_bounds::ITEMS - 1,
                        90,
                    ),
                    bound_record(sort_key_bounds::START_SECS - 1, 0, 1, 60),
                    bound_record(2, sort_key_bounds::USERS - 1, 0, 60),
                    bound_record(2, 1, sort_key_bounds::ITEMS - 1, 60),
                ],
            ),
            (
                "metro shape: users past the guaranteed bound, slack start",
                false,
                vec![
                    bound_record(100, 18_000_000, 119_999, 60),
                    bound_record(100, 17_999_999, 3, 60),
                    bound_record(99, 18_000_000, 0, 60),
                ],
            ),
            (
                "pathological: joint widths exceed 64 bits",
                true,
                vec![
                    bound_record(1, u32::MAX, u32::MAX, 60),
                    bound_record(1, u32::MAX - 1, 5, 60),
                    bound_record(0, 3, u32::MAX, 60),
                ],
            ),
            (
                "pathological: giant horizon times giant population",
                true,
                vec![
                    bound_record((1 << 40) + 12, (1 << 30) + 5, 0, 60),
                    bound_record((1 << 40) + 12, 1 << 30, 1, 60),
                    bound_record(7, 2, 0, 60),
                ],
            ),
        ];
        for (name, wide, records) in cases {
            let maxima = records.iter().fold((0u64, 0u32, 0u32), |m, s| {
                (
                    m.0.max(s.start.as_secs()),
                    m.1.max(s.user.0),
                    m.2.max(s.content.0),
                )
            });
            assert_eq!(
                sort_key_fallback_required(maxima),
                wide,
                "{name}: unexpected fallback decision for {maxima:?}"
            );
            let mut expected = records.clone();
            sort_sessions(&mut expected);
            for workers in [1, 4] {
                // Split the records across two batches to exercise the
                // scatter too.
                let (a, b) = records.split_at(records.len() / 2);
                let batches = [a.to_vec(), b.to_vec()];
                let merged = merge_session_batches(&batches, workers);
                assert_eq!(merged, expected, "{name}, {workers} workers");
                assert_eq!(
                    merge_session_batches_wide(&batches, workers),
                    expected,
                    "{name}, {workers} workers, forced-wide path"
                );
            }
        }
    }

    #[test]
    fn repacked_key_matches_legacy_59_bit_oracle_within_old_bounds() {
        // Within the old 59-bit bounds the dynamic layout and the retired
        // packing must induce the same order (both are faithful encodings
        // of the same lexicographic tuple). Deterministic pseudo-random
        // coverage plus the exact old corners.
        let mut records = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            records.push(bound_record(
                x % OLD_START,
                (x >> 23) as u32 % OLD_USERS,
                (x >> 45) as u32 % OLD_ITEMS,
                60,
            ));
        }
        records.push(bound_record(
            OLD_START - 1,
            OLD_USERS - 1,
            OLD_ITEMS - 1,
            60,
        ));
        records.push(bound_record(0, 0, 0, 60));
        let maxima = (OLD_START - 1, OLD_USERS - 1, OLD_ITEMS - 1);
        let layout = SortKeyLayout::from_maxima(maxima).expect("old bounds fit the new key");
        let mut by_new = records.clone();
        by_new.sort_by_key(|s| layout.pack(s));
        let mut by_old = records.clone();
        by_old.sort_by_key(legacy_sort_key_59);
        assert_eq!(by_new, by_old, "re-packed order diverges from the oracle");
        for s in &records {
            assert_eq!(
                layout.unpack(layout.pack(s)),
                (s.start.as_secs(), s.user.0, s.content.0),
                "pack/unpack must round-trip"
            );
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Pack/unpack round-trips and packed keys order exactly like
            // the lexicographic (start, user, content) tuple, for layouts
            // sized anywhere within the guaranteed bounds — including the
            // exact maxima corner and the all-zero record.
            #[test]
            fn prop_pack_round_trips_and_orders_like_the_tuple(
                max_start in 0u64..sort_key_bounds::START_SECS,
                max_user in 0u32..sort_key_bounds::USERS,
                max_item in 0u32..sort_key_bounds::ITEMS,
                a in 0u64..u64::MAX,
                b in 0u64..u64::MAX,
            ) {
                let maxima = (max_start, max_user, max_item);
                prop_assert!(!sort_key_fallback_required(maxima));
                let layout =
                    SortKeyLayout::from_maxima(maxima).expect("guaranteed bounds fit");
                let rec = |x: u64| {
                    bound_record(
                        x % (max_start + 1),
                        ((x >> 19) % (u64::from(max_user) + 1)) as u32,
                        ((x >> 41) % (u64::from(max_item) + 1)) as u32,
                        60,
                    )
                };
                let corners = [
                    rec(a),
                    rec(b),
                    bound_record(max_start, max_user, max_item, 60),
                    bound_record(0, 0, 0, 60),
                ];
                for r in &corners {
                    prop_assert_eq!(
                        layout.unpack(layout.pack(r)),
                        (r.start.as_secs(), r.user.0, r.content.0)
                    );
                }
                let tuple = |r: &SessionRecord| (r.start.as_secs(), r.user.0, r.content.0);
                for ra in &corners {
                    for rb in &corners {
                        prop_assert_eq!(
                            layout.pack(ra).cmp(&layout.pack(rb)),
                            tuple(ra).cmp(&tuple(rb))
                        );
                    }
                }
            }

            // The fallback decision is exactly the joint-bit-width test, for
            // field widths spanning both sides of the 64-bit boundary —
            // single-bound overflows (the metro shapes) stay compact, and
            // any fitting layout round-trips its own maxima record.
            #[test]
            fn prop_fallback_decision_matches_joint_bit_widths(
                start_bits in 0u32..=40,
                user_bits in 0u32..=32,
                item_bits in 0u32..=32,
                raw in 0u64..u64::MAX,
            ) {
                // A value of exactly `bits` significant bits: top bit set,
                // the rest noise.
                let top = |bits: u32, noise: u64| -> u64 {
                    if bits == 0 {
                        0
                    } else {
                        (1u64 << (bits - 1)) | (noise & ((1u64 << (bits - 1)) - 1))
                    }
                };
                let maxima = (
                    top(start_bits, raw),
                    top(user_bits, raw >> 13) as u32,
                    top(item_bits, raw >> 29) as u32,
                );
                let wide = start_bits + user_bits + item_bits > 64;
                prop_assert_eq!(sort_key_fallback_required(maxima), wide);
                prop_assert_eq!(SortKeyLayout::from_maxima(maxima).is_none(), wide);
                if let Some(layout) = SortKeyLayout::from_maxima(maxima) {
                    let r = bound_record(maxima.0, maxima.1, maxima.2, 60);
                    prop_assert_eq!(layout.unpack(layout.pack(&r)), maxima);
                }
            }
        }
    }

    #[test]
    fn segmented_emit_matches_monolithic_generation() {
        let generator = TraceGenerator::new(small_config(), 1234);
        let trace = generator.generate().unwrap();
        let mut stream = generator.segments().unwrap();
        assert_eq!(stream.config(), trace.config());
        assert_eq!(stream.catalogue(), trace.catalogue());
        assert_eq!(stream.population(), trace.population());
        let mut emitted = Vec::new();
        let mut days = 0u32;
        while let Some(segment) = stream.next_segment() {
            assert_eq!(stream.next_day(), days + 1);
            emitted.extend(segment.to_records());
            days += 1;
        }
        assert!(
            stream.next_segment().is_none(),
            "stream must stay exhausted"
        );
        assert_eq!(days, trace.config().days);
        assert_eq!(emitted.as_slice(), trace.sessions());
        assert!(stream.columnarize_ms() >= 0.0);

        // The collected SegmentedStore and the segment-by-segment stream
        // agree, for any worker count.
        let collected = generator.generate_segmented().unwrap();
        assert_eq!(collected.to_records().as_slice(), trace.sessions());
        for workers in [2usize, 8] {
            let parallel = TraceGenerator::new(small_config(), 1234)
                .workers(workers)
                .generate_segmented()
                .unwrap();
            assert_eq!(parallel, collected, "{workers} workers");
        }
    }

    #[test]
    fn scale_presets_are_ordered_and_valid() {
        let mut last = 0.0;
        for preset in ScalePreset::ALL {
            let s = preset.scale();
            assert!(s > last && s <= 1.0, "{preset}: {s}");
            last = s;
            let cfg = preset.apply(TraceConfig::london_sep2013());
            assert!(cfg.validate().is_ok());
            assert!(!preset.name().is_empty());
            assert_eq!(preset.to_string(), preset.name());
        }
        assert_eq!(
            ScalePreset::Full.apply(TraceConfig::london_sep2013()).users,
            3_600_000
        );
        // The benchmark reference scenario exceeds the 10 K-user bar.
        assert!(
            ScalePreset::Medium
                .apply(TraceConfig::london_sep2013())
                .users
                >= 10_000
        );
    }
}
