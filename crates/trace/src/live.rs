//! Live-streaming workloads (paper §VI future work).
//!
//! A live broadcast pins every viewer to the same wall-clock interval: the
//! audience ramps up around the start, holds through the event and drains at
//! the end. Concurrency — and therefore swarm capacity — is enormous
//! compared to catch-up viewing of the same audience size, which makes live
//! events the best case for peer-assisted delivery (savings approach the
//! Eq. 12 asymptote).

use rand::Rng;
use serde::{Deserialize, Serialize};

use consume_local_stats::dist::{Distribution, LogNormal, Normal};
use consume_local_stats::rng::SeedDerive;

use crate::content::ContentId;
use crate::device::DeviceClass;
use crate::generator::{Trace, TraceConfig, TraceError};
use crate::population::Population;
use crate::session::SessionRecord;
use crate::time::SimTime;

/// Configuration of one live broadcast event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveEvent {
    /// The content item the event is broadcast as.
    pub content: ContentId,
    /// Broadcast start.
    pub start: SimTime,
    /// Broadcast length in seconds.
    pub duration_secs: u32,
    /// Number of viewers tuning in.
    pub viewers: u32,
    /// Std-dev of the join-time jitter around the start, seconds (viewers
    /// trickle in around kick-off).
    pub join_jitter_secs: f64,
}

impl LiveEvent {
    /// Validates the event parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] naming the offending field.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.duration_secs == 0 {
            return Err(TraceError::BadConfig {
                field: "duration_secs",
                value: 0.0,
            });
        }
        if self.viewers == 0 {
            return Err(TraceError::BadConfig {
                field: "viewers",
                value: 0.0,
            });
        }
        if !self.join_jitter_secs.is_finite() || self.join_jitter_secs < 0.0 {
            return Err(TraceError::BadConfig {
                field: "join_jitter_secs",
                value: self.join_jitter_secs,
            });
        }
        Ok(())
    }
}

/// Generates a live-event trace over an existing population.
///
/// Viewers are drawn activity-weighted from the population; each joins
/// around the start (normal jitter, truncated to the event) and watches a
/// log-normal share of the remaining broadcast. Sessions never extend past
/// the event's end — there is nothing to stream after a live event ends.
///
/// # Errors
///
/// Returns [`TraceError`] for invalid event parameters.
pub fn live_event_trace(
    base: &TraceConfig,
    population: Population,
    events: &[LiveEvent],
    seed: u64,
) -> Result<Trace, TraceError> {
    for e in events {
        e.validate()?;
    }
    let seeds = SeedDerive::new(seed);
    let catalogue = crate::content::Catalogue::generate(
        base.catalogue_size.max(events.len() as u32),
        base.popularity,
        base.days,
        &mut seeds.stream("live-catalogue"),
    )
    .ok_or(TraceError::BadConfig {
        field: "catalogue_size",
        value: 0.0,
    })?;

    let device_sampler = DeviceClass::mix_sampler();
    let mut sessions = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let mut rng = seeds.stream_indexed("live-event", i as u64);
        let jitter = Normal::new(0.0, event.join_jitter_secs.max(1e-9)).expect("validated jitter");
        let watch = LogNormal::with_mean(0.8, 0.4).expect("static watch params");
        let end = event.start + u64::from(event.duration_secs);
        for _ in 0..event.viewers {
            let user = &population.users()[rng.gen_range(0..population.len())];
            let offset = jitter.sample(&mut rng);
            let start = if offset < 0.0 {
                event.start - (-offset) as u64
            } else {
                event.start + offset as u64
            };
            // Clamp joins into the broadcast window.
            let start = start.max(event.start).min(end - 1);
            let remaining = end.seconds_since(start).max(60);
            let fraction = watch.sample(&mut rng).clamp(0.05, 1.0);
            let duration = ((remaining as f64 * fraction) as u32).max(60);
            let device = DeviceClass::MIX[device_sampler.sample(&mut rng)].0;
            sessions.push(SessionRecord {
                user: user.id,
                content: event.content,
                start,
                duration_secs: duration.min(remaining as u32),
                device,
                isp: user.isp,
                location: user.location,
            });
        }
    }
    Ok(Trace::from_parts(
        base.clone(),
        catalogue,
        population,
        sessions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_topology::IspRegistry;
    use rand::SeedableRng;

    fn population(n: u32) -> Population {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        Population::generate(n, &IspRegistry::london_top5(), &mut rng).unwrap()
    }

    fn event(viewers: u32) -> LiveEvent {
        LiveEvent {
            content: ContentId(0),
            start: SimTime::from_day_hour(0, 20),
            duration_secs: 2 * 3600,
            viewers,
            join_jitter_secs: 300.0,
        }
    }

    #[test]
    fn validation() {
        let mut e = event(100);
        e.duration_secs = 0;
        assert!(e.validate().is_err());
        let mut e = event(100);
        e.viewers = 0;
        assert!(e.validate().is_err());
        let mut e = event(100);
        e.join_jitter_secs = f64::NAN;
        assert!(e.validate().is_err());
        assert!(event(100).validate().is_ok());
    }

    #[test]
    fn sessions_confined_to_broadcast() {
        let base = TraceConfig::london_sep2013().scaled(0.001).unwrap();
        let trace = live_event_trace(&base, population(5_000), &[event(2_000)], 1).unwrap();
        assert_eq!(trace.sessions().len(), 2_000);
        let ev = event(2_000);
        let end = ev.start + u64::from(ev.duration_secs);
        for s in trace.sessions() {
            assert!(s.start >= ev.start);
            assert!(s.end() <= end, "session must not outlive the broadcast");
            assert!(s.duration_secs >= 60);
        }
    }

    #[test]
    fn concurrency_peaks_during_event() {
        let base = TraceConfig::london_sep2013().scaled(0.001).unwrap();
        let trace = live_event_trace(&base, population(5_000), &[event(3_000)], 7).unwrap();
        let ev = event(3_000);
        let mid = ev.start + u64::from(ev.duration_secs) / 3;
        let live = trace
            .sessions()
            .iter()
            .filter(|s| s.is_active_at(mid))
            .count();
        assert!(live > 1_000, "mid-event concurrency {live}");
        let after = ev.start + u64::from(ev.duration_secs) + 3600;
        assert_eq!(
            trace
                .sessions()
                .iter()
                .filter(|s| s.is_active_at(after))
                .count(),
            0
        );
    }

    #[test]
    fn multiple_events_coexist() {
        let base = TraceConfig::london_sep2013().scaled(0.001).unwrap();
        let mut second = event(500);
        second.content = ContentId(1);
        second.start = SimTime::from_day_hour(1, 20);
        let trace = live_event_trace(&base, population(5_000), &[event(500), second], 3).unwrap();
        assert_eq!(trace.sessions().len(), 1_000);
        let items: std::collections::HashSet<_> =
            trace.sessions().iter().map(|s| s.content).collect();
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn deterministic() {
        let base = TraceConfig::london_sep2013().scaled(0.001).unwrap();
        let a = live_event_trace(&base, population(2_000), &[event(500)], 9).unwrap();
        let b = live_event_trace(&base, population(2_000), &[event(500)], 9).unwrap();
        assert_eq!(a.sessions(), b.sessions());
    }
}
