//! The content catalogue: items, genres, popularity and broadcast dates.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use consume_local_stats::dist::{Categorical, Distribution};

use crate::popularity::Popularity;

/// Identifier of a content item; doubles as its 0-based popularity rank
/// (id 0 is the most popular item).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContentId(pub u32);

impl fmt::Display for ContentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item{}", self.0)
    }
}

/// Coarse programme genre; determines the episode duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Genre {
    /// Scripted drama (~45 min episodes).
    Drama,
    /// Comedy / light entertainment (~30 min).
    Entertainment,
    /// News and current affairs (~60 min).
    News,
    /// Documentaries (~50 min).
    Documentary,
    /// Children's programming (~15 min).
    Children,
}

impl Genre {
    /// All genres with their catalogue shares (children's content is a large
    /// share of catch-up catalogues by item count).
    pub const MIX: [(Genre, f64); 5] = [
        (Genre::Drama, 0.25),
        (Genre::Entertainment, 0.30),
        (Genre::News, 0.10),
        (Genre::Documentary, 0.15),
        (Genre::Children, 0.20),
    ];

    /// Nominal episode duration in seconds.
    pub fn episode_seconds(self) -> u32 {
        match self {
            Genre::Drama => 45 * 60,
            Genre::Entertainment => 30 * 60,
            Genre::News => 60 * 60,
            Genre::Documentary => 50 * 60,
            Genre::Children => 15 * 60,
        }
    }
}

impl fmt::Display for Genre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Genre::Drama => "drama",
            Genre::Entertainment => "entertainment",
            Genre::News => "news",
            Genre::Documentary => "documentary",
            Genre::Children => "children",
        };
        f.write_str(s)
    }
}

/// One programme episode available for on-demand streaming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentItem {
    /// Identifier (= popularity rank, 0-based).
    pub id: ContentId,
    /// Genre, which fixes the episode duration.
    pub genre: Genre,
    /// Full episode duration in seconds.
    pub duration_secs: u32,
    /// Day the episode (re-)aired, relative to the trace epoch. Negative
    /// values are back-catalogue items broadcast before the traced month.
    pub broadcast_day: i32,
}

/// The on-demand catalogue: items with an explicit popularity distribution
/// (normalised per-item session shares).
///
/// For the default [`Popularity::catchup_tv`] broken power law at full
/// London scale this reproduces the paper's exemplars: rank 0 ≈ 147 K
/// monthly views ("Bad Education" ≳ 100 K), rank ≈ 430 ≈ 10 K ("Question
/// Time"), rank ≈ 3 500 ≈ 1 K ("What's to Eat").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalogue {
    items: Vec<ContentItem>,
    weights: Vec<f64>,
    popularity: Popularity,
}

impl Catalogue {
    /// Generates a catalogue of `size` items under `popularity`, drawing
    /// genres and broadcast days from `rng`.
    ///
    /// About 40 % of items are fresh broadcasts within the traced `days`
    /// (catch-up TV), the rest back-catalogue; popular items are biased
    /// towards fresh broadcasts, which concentrates their sessions and
    /// produces the prime-time swarm peaks of Fig. 2.
    ///
    /// Returns `None` for a zero `size` or invalid popularity parameters.
    pub fn generate<R: Rng + ?Sized>(
        size: u32,
        popularity: Popularity,
        days: u32,
        rng: &mut R,
    ) -> Option<Self> {
        if size == 0 || popularity.validate().is_err() {
            return None;
        }
        let weights = popularity.weights(size);
        let genre_dist =
            Categorical::new(&Genre::MIX.map(|(_, w)| w)).expect("static genre mix is valid");
        let mut items = Vec::with_capacity(size as usize);
        for k in 0..size {
            let genre = Genre::MIX[genre_dist.sample(rng)].0;
            // Fresh-broadcast probability decays with rank: the head of the
            // catalogue is dominated by this month's shows.
            let rank_frac = f64::from(k) / f64::from(size);
            let fresh_prob = 0.8 * (1.0 - rank_frac).powi(2) + 0.1;
            let broadcast_day = if rng.gen::<f64>() < fresh_prob {
                rng.gen_range(0..days.max(1)) as i32
            } else {
                -rng.gen_range(1..365)
            };
            items.push(ContentItem {
                id: ContentId(k),
                genre,
                duration_secs: genre.episode_seconds(),
                broadcast_day,
            });
        }
        Some(Self {
            items,
            weights,
            popularity,
        })
    }

    /// The items, ordered by popularity rank.
    pub fn items(&self) -> &[ContentItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the catalogue is empty (never after generation).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Looks up an item.
    pub fn get(&self, id: ContentId) -> Option<&ContentItem> {
        self.items.get(id.0 as usize)
    }

    /// The popularity model this catalogue was generated with.
    pub fn popularity(&self) -> &Popularity {
        &self.popularity
    }

    /// The share of total sessions going to item `id` (0 outside the
    /// catalogue).
    pub fn popularity_share(&self, id: ContentId) -> f64 {
        self.weights.get(id.0 as usize).copied().unwrap_or(0.0)
    }

    /// All normalised popularity shares, indexed by rank.
    pub fn popularity_shares(&self) -> &[f64] {
        &self.weights
    }

    /// The item closest to a target monthly view count, given the total
    /// session volume — how the figure harness picks the paper's "highly
    /// popular" (100 K), "medium" (10 K) and "unpopular" (1 K) exemplars.
    pub fn item_with_views(&self, target_views: f64, total_sessions: f64) -> ContentId {
        let mut best = (ContentId(0), f64::INFINITY);
        for (k, w) in self.weights.iter().enumerate() {
            let views = w * total_sessions;
            let err = (views.max(1e-9).ln() - target_views.max(1.0).ln()).abs();
            if err < best.1 {
                best = (ContentId(k as u32), err);
            }
        }
        best.0
    }

    /// Expected monthly views of an item given the total session volume.
    pub fn expected_views(&self, id: ContentId, total_sessions: f64) -> f64 {
        self.popularity_share(id) * total_sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalogue(size: u32) -> Catalogue {
        let mut rng = StdRng::seed_from_u64(7);
        Catalogue::generate(size, Popularity::catchup_tv(), 30, &mut rng).unwrap()
    }

    #[test]
    fn generation_validates() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Catalogue::generate(0, Popularity::catchup_tv(), 30, &mut rng).is_none());
        assert!(
            Catalogue::generate(10, Popularity::Zipf { exponent: 0.0 }, 30, &mut rng).is_none()
        );
    }

    #[test]
    fn ids_are_ranks() {
        let c = catalogue(100);
        for (i, item) in c.items().iter().enumerate() {
            assert_eq!(item.id.0 as usize, i);
        }
        assert!(c.get(ContentId(99)).is_some());
        assert!(c.get(ContentId(100)).is_none());
    }

    #[test]
    fn popularity_shares_sum_to_one_and_decay() {
        let c = catalogue(500);
        let total: f64 = (0..500).map(|k| c.popularity_share(ContentId(k))).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 0..499 {
            assert!(
                c.popularity_share(ContentId(k)) >= c.popularity_share(ContentId(k + 1)) - 1e-15
            );
        }
        assert_eq!(c.popularity_share(ContentId(1000)), 0.0);
    }

    #[test]
    fn paper_exemplar_view_counts() {
        // At full London scale: 24 000 items, 23.5 M sessions.
        let c = catalogue(24_000);
        let total = 23.5e6;
        let head = c.expected_views(ContentId(0), total);
        assert!(
            (100_000.0..250_000.0).contains(&head),
            "top item should get ≳100K views, got {head}"
        );
        let medium = c.item_with_views(10_000.0, total);
        let mv = c.expected_views(medium, total);
        assert!((8_000.0..12_500.0).contains(&mv), "medium {mv}");
        let unpop = c.item_with_views(1_000.0, total);
        let uv = c.expected_views(unpop, total);
        assert!((800.0..1_250.0).contains(&uv), "unpopular {uv}");
    }

    #[test]
    fn durations_follow_genres() {
        let c = catalogue(200);
        for item in c.items() {
            assert_eq!(item.duration_secs, item.genre.episode_seconds());
            assert!(item.duration_secs >= 15 * 60);
            assert!(item.duration_secs <= 60 * 60);
        }
    }

    #[test]
    fn head_is_mostly_fresh_tail_mostly_catalogue() {
        let c = catalogue(2_000);
        let fresh = |range: std::ops::Range<usize>| -> f64 {
            let items = &c.items()[range];
            items.iter().filter(|i| i.broadcast_day >= 0).count() as f64 / items.len() as f64
        };
        assert!(fresh(0..200) > 0.6, "head fresh share {}", fresh(0..200));
        assert!(
            fresh(1800..2000) < 0.4,
            "tail fresh share {}",
            fresh(1800..2000)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Catalogue::generate(300, Popularity::catchup_tv(), 30, &mut r1).unwrap();
        let b = Catalogue::generate(300, Popularity::catchup_tv(), 30, &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn genre_mix_sums_to_one() {
        let total: f64 = Genre::MIX.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_variant_still_supported() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = Catalogue::generate(100, Popularity::Zipf { exponent: 1.0 }, 30, &mut rng).unwrap();
        // Classic Zipf: rank 0 twice the share of rank 1.
        let r0 = c.popularity_share(ContentId(0));
        let r1 = c.popularity_share(ContentId(1));
        assert!((r0 / r1 - 2.0).abs() < 1e-9);
        assert_eq!(c.popularity(), &Popularity::Zipf { exponent: 1.0 });
    }
}
