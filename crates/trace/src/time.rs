//! Trace-local time: seconds since the start of the traced month.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in a day.
pub const SECS_PER_DAY: u64 = 86_400;

/// Seconds in an hour.
pub const SECS_PER_HOUR: u64 = 3_600;

/// A point in trace time: whole seconds since the trace epoch (midnight
/// starting day 0 of the traced month).
///
/// # Example
///
/// ```
/// use consume_local_trace::SimTime;
///
/// let t = SimTime::from_day_hour(3, 20) + 1800;
/// assert_eq!(t.day(), 3);
/// assert_eq!(t.hour_of_day(), 20);
/// assert_eq!(t.second_of_hour(), 1800);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The trace epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Builds a time from a day index and an hour of that day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn from_day_hour(day: u32, hour: u32) -> Self {
        assert!(hour < 24, "hour must be < 24, got {hour}");
        SimTime(u64::from(day) * SECS_PER_DAY + u64::from(hour) * SECS_PER_HOUR)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// The 0-based day index.
    pub fn day(self) -> u32 {
        (self.0 / SECS_PER_DAY) as u32
    }

    /// The hour of day, `0..24`.
    pub fn hour_of_day(self) -> u32 {
        ((self.0 % SECS_PER_DAY) / SECS_PER_HOUR) as u32
    }

    /// The second within the current hour, `0..3600`.
    pub fn second_of_hour(self) -> u64 {
        self.0 % SECS_PER_HOUR
    }

    /// The day of week, `0..7`, treating day 0 as a Sunday (September 1st
    /// 2013 — the paper's focus month — was a Sunday).
    pub fn day_of_week(self) -> u32 {
        self.day() % 7
    }

    /// Whether this time falls on a weekend (Saturday or Sunday).
    pub fn is_weekend(self) -> bool {
        matches!(self.day_of_week(), 0 | 6)
    }

    /// Saturating subtraction of two times, as seconds.
    pub fn seconds_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl Sub<u64> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_sub(rhs))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{:02} {:02}:{:02}:{:02}",
            self.day(),
            self.hour_of_day(),
            (self.0 % SECS_PER_HOUR) / 60,
            self.0 % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_hour_round_trip() {
        for day in [0u32, 1, 15, 29] {
            for hour in [0u32, 7, 23] {
                let t = SimTime::from_day_hour(day, hour);
                assert_eq!(t.day(), day);
                assert_eq!(t.hour_of_day(), hour);
            }
        }
    }

    #[test]
    #[should_panic(expected = "hour must be < 24")]
    fn rejects_bad_hour() {
        let _ = SimTime::from_day_hour(0, 24);
    }

    #[test]
    fn weekend_detection_sep2013() {
        // Day 0 = Sunday 1 Sep 2013, day 6 = Saturday 7 Sep.
        assert!(SimTime::from_day_hour(0, 12).is_weekend());
        assert!(SimTime::from_day_hour(6, 12).is_weekend());
        assert!(!SimTime::from_day_hour(2, 12).is_weekend()); // Tuesday
        assert!(SimTime::from_day_hour(7, 12).is_weekend()); // next Sunday
    }

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime::from_day_hour(1, 0);
        assert_eq!((t + 60).as_secs(), SECS_PER_DAY + 60);
        assert_eq!((t - 10).as_secs(), SECS_PER_DAY - 10);
        assert_eq!((t - (2 * SECS_PER_DAY)).as_secs(), 0, "saturates at epoch");
        assert!(SimTime::EPOCH < t);
        assert_eq!(t.seconds_since(SimTime::EPOCH), SECS_PER_DAY);
        assert_eq!(SimTime::EPOCH.seconds_since(t), 0);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_day_hour(4, 21) + 125;
        assert_eq!(t.to_string(), "d04 21:02:05");
    }
}
