//! The user population: households (IP addresses) and users.
//!
//! Table I of the paper counts ~2.2 users per IP address (3.3 M users behind
//! 1.5 M IPs), so the population is generated as *households*: each household
//! gets one ISP subscription and one attachment point in that ISP's tree, and
//! hosts 1–5 users. Per-user *activity* is Pareto-skewed ("per-user
//! consumption patterns are highly skewed towards a small share of very
//! active users") and each user carries a *mainstreamness* taste weight that
//! steers them towards the popular head or the niche tail of the catalogue —
//! the heterogeneity behind the carbon-negative users of Fig. 6.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use consume_local_stats::dist::{Categorical, Distribution, Pareto};
use consume_local_topology::{IspId, IspRegistry, UserLocation};

/// Identifier of a user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Identifier of a household (≙ one IP address in Table I terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HouseholdId(pub u32);

impl fmt::Display for HouseholdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Household size distribution: mean ≈ 2.2 users per household, matching the
/// users-per-IP ratio of Table I.
const HOUSEHOLD_SIZES: [(u32, f64); 5] = [(1, 0.30), (2, 0.35), (3, 0.20), (4, 0.10), (5, 0.05)];

/// One user: who they are, where they connect from, how active they are and
/// what they like.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Identifier.
    pub id: UserId,
    /// The household (IP address) the user belongs to.
    pub household: HouseholdId,
    /// The household's ISP.
    pub isp: IspId,
    /// The household's attachment point in the ISP tree.
    pub location: UserLocation,
    /// Relative session volume (Pareto-skewed, mean ≈ 1 over the population).
    pub activity: f64,
    /// Taste position in `[0, 1]`: 1 = watches only mainstream hits,
    /// 0 = watches only niche content.
    pub mainstreamness: f64,
}

/// The generated population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    users: Vec<UserProfile>,
    households: u32,
}

impl Population {
    /// Generates a population of approximately `target_users` users grouped
    /// into households, subscribed to ISPs per the registry's market shares.
    ///
    /// Returns `None` when `target_users` is zero.
    pub fn generate<R: Rng + ?Sized>(
        target_users: u32,
        registry: &IspRegistry,
        rng: &mut R,
    ) -> Option<Self> {
        if target_users == 0 {
            return None;
        }
        let size_dist = Categorical::new(&HOUSEHOLD_SIZES.map(|(_, w)| w))
            .expect("static household sizes are valid");
        let isp_dist =
            Categorical::new(&registry.market_shares()).expect("registry shares are positive");
        // Activity: Pareto with alpha 1.8 (finite mean 2.25·x_min), rescaled
        // to mean 1 so `activity` multiplies an average session budget.
        let activity_dist = Pareto::new(1.0, 1.8).expect("static pareto params");
        let activity_mean = activity_dist.mean().expect("alpha > 1");

        let mut users = Vec::with_capacity(target_users as usize + 4);
        let mut households = 0u32;
        while users.len() < target_users as usize {
            let household = HouseholdId(households);
            households += 1;
            let isp_idx = isp_dist.sample(rng);
            let profile = &registry.profiles()[isp_idx];
            let location = profile.topology.random_location(rng);
            let size = HOUSEHOLD_SIZES[size_dist.sample(rng)].0;
            for _ in 0..size {
                if users.len() >= target_users as usize {
                    break;
                }
                let id = UserId(users.len() as u32);
                users.push(UserProfile {
                    id,
                    household,
                    isp: profile.id,
                    location,
                    activity: activity_dist.sample(rng) / activity_mean,
                    // Beta(2,2)-ish hump via average of two uniforms: most
                    // users are mixed, tails are strongly mainstream/niche.
                    mainstreamness: (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0,
                });
            }
        }
        Some(Self { users, households })
    }

    /// The users, ordered by id.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the population is empty (never after generation).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Number of households (distinct IP addresses).
    pub fn household_count(&self) -> u32 {
        self.households
    }

    /// Looks up a user.
    pub fn get(&self, id: UserId) -> Option<&UserProfile> {
        self.users.get(id.0 as usize)
    }

    /// Mean users per household — Table I's users-per-IP ratio.
    pub fn users_per_household(&self) -> f64 {
        self.users.len() as f64 / f64::from(self.households.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(n: u32) -> Population {
        let mut rng = StdRng::seed_from_u64(99);
        Population::generate(n, &IspRegistry::london_top5(), &mut rng).unwrap()
    }

    #[test]
    fn rejects_zero_users() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Population::generate(0, &IspRegistry::london_top5(), &mut rng).is_none());
    }

    #[test]
    fn user_ids_are_dense() {
        let p = pop(5_000);
        assert_eq!(p.len(), 5_000);
        for (i, u) in p.users().iter().enumerate() {
            assert_eq!(u.id.0 as usize, i);
        }
        assert!(p.get(UserId(4_999)).is_some());
        assert!(p.get(UserId(5_000)).is_none());
    }

    #[test]
    fn users_per_household_matches_table1_ratio() {
        let p = pop(50_000);
        let ratio = p.users_per_household();
        // Table I: 3.3M users / 1.5M IPs = 2.2.
        assert!((2.0..2.45).contains(&ratio), "users/IP = {ratio}");
    }

    #[test]
    fn household_members_share_isp_and_location() {
        let p = pop(10_000);
        use std::collections::HashMap;
        let mut seen: HashMap<HouseholdId, (IspId, UserLocation)> = HashMap::new();
        for u in p.users() {
            let entry = seen.entry(u.household).or_insert((u.isp, u.location));
            assert_eq!(entry.0, u.isp, "household members share an ISP");
            assert_eq!(entry.1, u.location, "household members share a location");
        }
    }

    #[test]
    fn isp_shares_respected() {
        let p = pop(100_000);
        let registry = IspRegistry::london_top5();
        let mut counts = vec![0u32; registry.len()];
        for u in p.users() {
            counts[u.isp.0 as usize] += 1;
        }
        for (i, share) in registry.market_shares().iter().enumerate() {
            let emp = f64::from(counts[i]) / p.len() as f64;
            assert!((emp - share).abs() < 0.02, "ISP {i}: {emp} vs {share}");
        }
    }

    #[test]
    fn activity_is_skewed_with_unit_mean() {
        let p = pop(100_000);
        let mean = p.users().iter().map(|u| u.activity).sum::<f64>() / p.len() as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean activity {mean}");
        // Top 10% of users account for well over 10% of activity.
        let mut acts: Vec<f64> = p.users().iter().map(|u| u.activity).collect();
        acts.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_decile: f64 = acts[..p.len() / 10].iter().sum();
        let total: f64 = acts.iter().sum();
        assert!(
            top_decile / total > 0.3,
            "top-decile share {}",
            top_decile / total
        );
    }

    #[test]
    fn mainstreamness_covers_unit_interval() {
        let p = pop(20_000);
        let ms: Vec<f64> = p.users().iter().map(|u| u.mainstreamness).collect();
        assert!(ms.iter().all(|&m| (0.0..=1.0).contains(&m)));
        let lo = ms.iter().filter(|&&m| m < 0.25).count();
        let hi = ms.iter().filter(|&&m| m > 0.75).count();
        // Both tails populated but the middle dominates (hump shape).
        assert!(lo > 500 && hi > 500);
        assert!(lo < p.len() / 4 && hi < p.len() / 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let reg = IspRegistry::london_top5();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = Population::generate(3_000, &reg, &mut r1).unwrap();
        let b = Population::generate(3_000, &reg, &mut r2).unwrap();
        assert_eq!(a, b);
    }
}
