//! Deterministic churn & fault injection for synthesized sessions.
//!
//! The paper's trace model assumes a viewer who starts a programme stays
//! online for its whole duration. Real set-top peers leave mid-session
//! (power, network, app switches), sometimes come back after a delay, and
//! whole swarms see flash-crowd arrival spikes. [`ChurnConfig`] injects all
//! three while preserving the workspace's determinism contract: every draw
//! comes from the *per-item* RNG stream immediately after the session it
//! fragments, so monolithic generation, segmented generation at any worker
//! count, and the online replay path all see byte-identical traces.
//!
//! The availability model is a renewal process in integer seconds:
//!
//! * online spells are exponential with mean `3600 / departure_rate_per_hour`
//!   seconds (a per-hour hazard, like EcNode's lifecycle simulator);
//! * after a mid-session departure the viewer rejoins with probability
//!   [`rejoin_probability`](ChurnConfig::rejoin_probability) after an
//!   exponential gap with mean
//!   [`mean_rejoin_delay_secs`](ChurnConfig::mean_rejoin_delay_secs);
//! * each spell and gap is rounded up to at least one second, which makes
//!   the process terminate and keeps the emitted intervals disjoint.
//!
//! With `ChurnConfig::default()` the layer is inert: no RNG draws happen and
//! the generated trace is byte-identical to a build without the layer.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An arrival spike pinned to one simulated day: the per-item Poisson rate
/// for `day` is multiplied by `multiplier` (e.g. 3.0 for a 3× flash crowd).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Day index (0-based) the spike applies to.
    pub day: u32,
    /// Arrival-rate multiplier for that day; must be finite and positive.
    pub multiplier: f64,
}

/// Churn & fault-injection parameters for the trace generator.
///
/// The default is fully disabled (zero departure hazard, no flash crowds)
/// and draws nothing from the RNG streams, so traces generated with the
/// default are byte-identical to pre-churn output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mid-session departure hazard, in expected departures per online
    /// hour. `0.0` disables fragmentation; must be finite and ≥ 0.
    pub departure_rate_per_hour: f64,
    /// Probability that a departed viewer rejoins the same session after a
    /// delay instead of abandoning it. Must be within `[0, 1]`.
    pub rejoin_probability: f64,
    /// Mean of the exponential rejoin delay, in seconds. Must be finite
    /// and ≥ 0 (delays are rounded up to at least one second).
    pub mean_rejoin_delay_secs: f64,
    /// Flash-crowd arrival spikes, at most one effective multiplier per
    /// day (multiple entries for one day multiply together).
    pub flash_crowds: Vec<FlashCrowd>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            departure_rate_per_hour: 0.0,
            rejoin_probability: 0.0,
            mean_rejoin_delay_secs: 600.0,
            flash_crowds: Vec::new(),
        }
    }
}

impl ChurnConfig {
    /// The canonical churn point for degradation sweeps: `rate` departures
    /// per online hour, 60% rejoin probability, 10-minute mean rejoin
    /// delay, no flash crowds. `rate == 0.0` yields a disabled config.
    pub fn degradation_axis(rate: f64) -> Self {
        Self {
            departure_rate_per_hour: rate,
            rejoin_probability: if rate > 0.0 { 0.6 } else { 0.0 },
            mean_rejoin_delay_secs: 600.0,
            flash_crowds: Vec::new(),
        }
    }

    /// Whether any part of the layer is active (fragmentation or flash
    /// crowds). Inactive configs draw nothing from the RNG streams.
    pub fn enabled(&self) -> bool {
        self.departure_rate_per_hour > 0.0 || !self.flash_crowds.is_empty()
    }

    /// Whether sessions are fragmented into availability intervals.
    pub fn fragments(&self) -> bool {
        self.departure_rate_per_hour > 0.0
    }

    /// The arrival-rate multiplier for `day` (product of all matching
    /// flash crowds; `1.0` when none match).
    pub fn flash_multiplier(&self, day: u32) -> f64 {
        self.flash_crowds
            .iter()
            .filter(|f| f.day == day)
            .map(|f| f.multiplier)
            .product()
    }

    /// Validates every field, returning the first violation.
    pub fn validate(&self) -> Result<(), ChurnConfigError> {
        let r = self.departure_rate_per_hour;
        if !r.is_finite() || r < 0.0 {
            return Err(ChurnConfigError::BadDepartureRate(r));
        }
        let p = self.rejoin_probability;
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(ChurnConfigError::BadRejoinProbability(p));
        }
        let d = self.mean_rejoin_delay_secs;
        if !d.is_finite() || d < 0.0 {
            return Err(ChurnConfigError::BadRejoinDelay(d));
        }
        for f in &self.flash_crowds {
            if !f.multiplier.is_finite() || f.multiplier <= 0.0 {
                return Err(ChurnConfigError::BadFlashMultiplier(f.multiplier));
            }
        }
        Ok(())
    }

    /// Fragments a session of `duration_secs` into disjoint availability
    /// intervals `(offset_secs, length_secs)`, ordered by offset, with the
    /// union contained in `[0, duration_secs)`.
    ///
    /// With fragmentation disabled this returns the whole session as one
    /// interval *without touching the RNG*; otherwise the number of draws
    /// depends only on the RNG stream and this config, never on worker
    /// count or segmentation, which is what keeps churned traces
    /// byte-identical across generation paths.
    pub fn availability_intervals<R: Rng + ?Sized>(
        &self,
        duration_secs: u32,
        rng: &mut R,
    ) -> Vec<(u32, u32)> {
        if !self.fragments() {
            return vec![(0, duration_secs)];
        }
        let mean_online_secs = 3600.0 / self.departure_rate_per_hour;
        let duration = u64::from(duration_secs);
        let mut out = Vec::new();
        let mut t = 0u64;
        while t < duration {
            let online = exp_secs(rng, mean_online_secs);
            let end = (t + online).min(duration);
            out.push((t as u32, (end - t) as u32));
            if end >= duration {
                break;
            }
            // Departed mid-session: one coin decides abandonment, drawn
            // even at probability 0/1 so the draw count is config-shaped.
            let coin: f64 = rng.gen();
            if coin >= self.rejoin_probability {
                break;
            }
            t = end + exp_secs(rng, self.mean_rejoin_delay_secs);
        }
        out
    }
}

/// One exponential draw with the given mean, rounded up to a whole second
/// and at least 1 s (so availability renewals always make progress).
fn exp_secs<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1]; ln of it is finite or -inf only at u == 1.0,
    // which `gen` never returns.
    let secs = -(1.0 - u).ln() * mean;
    if secs.is_finite() {
        (secs.ceil() as u64).max(1)
    } else {
        u64::MAX / 4
    }
}

/// A [`ChurnConfig`] field violated its bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnConfigError {
    /// `departure_rate_per_hour` was negative or non-finite.
    BadDepartureRate(f64),
    /// `rejoin_probability` was outside `[0, 1]` or non-finite.
    BadRejoinProbability(f64),
    /// `mean_rejoin_delay_secs` was negative or non-finite.
    BadRejoinDelay(f64),
    /// A flash-crowd multiplier was non-positive or non-finite.
    BadFlashMultiplier(f64),
    /// A cooperation probability (simulator side) was outside `(0, 1]` or
    /// non-finite.
    BadCooperationProbability(f64),
}

impl fmt::Display for ChurnConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadDepartureRate(v) => {
                write!(
                    f,
                    "departure_rate_per_hour must be finite and >= 0, got {v}"
                )
            }
            Self::BadRejoinProbability(v) => {
                write!(f, "rejoin_probability must be within [0, 1], got {v}")
            }
            Self::BadRejoinDelay(v) => {
                write!(f, "mean_rejoin_delay_secs must be finite and >= 0, got {v}")
            }
            Self::BadFlashMultiplier(v) => {
                write!(f, "flash-crowd multiplier must be finite and > 0, got {v}")
            }
            Self::BadCooperationProbability(v) => {
                write!(f, "cooperation probability must be within (0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for ChurnConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_disabled_and_draws_nothing() {
        let config = ChurnConfig::default();
        assert!(!config.enabled());
        assert!(!config.fragments());
        assert_eq!(config.flash_multiplier(3), 1.0);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(config.availability_intervals(1800, &mut a), vec![(0, 1800)]);
        // The RNG must be untouched: both streams still agree.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn degradation_axis_zero_is_default_shape() {
        let zero = ChurnConfig::degradation_axis(0.0);
        assert!(!zero.enabled());
        assert!(zero.validate().is_ok());
        let hot = ChurnConfig::degradation_axis(2.0);
        assert!(hot.fragments());
        assert_eq!(hot.rejoin_probability, 0.6);
        assert!(hot.validate().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_fields() {
        let bad = |c: ChurnConfig| c.validate().unwrap_err();
        assert!(matches!(
            bad(ChurnConfig {
                departure_rate_per_hour: -1.0,
                ..Default::default()
            }),
            ChurnConfigError::BadDepartureRate(_)
        ));
        assert!(matches!(
            bad(ChurnConfig {
                rejoin_probability: 1.5,
                ..Default::default()
            }),
            ChurnConfigError::BadRejoinProbability(_)
        ));
        assert!(matches!(
            bad(ChurnConfig {
                mean_rejoin_delay_secs: f64::NAN,
                ..Default::default()
            }),
            ChurnConfigError::BadRejoinDelay(_)
        ));
        assert!(matches!(
            bad(ChurnConfig {
                flash_crowds: vec![FlashCrowd {
                    day: 0,
                    multiplier: 0.0
                }],
                ..Default::default()
            }),
            ChurnConfigError::BadFlashMultiplier(_)
        ));
        assert!(ChurnConfigError::BadCooperationProbability(0.0)
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn flash_multipliers_compose_per_day() {
        let config = ChurnConfig {
            flash_crowds: vec![
                FlashCrowd {
                    day: 2,
                    multiplier: 3.0,
                },
                FlashCrowd {
                    day: 2,
                    multiplier: 2.0,
                },
                FlashCrowd {
                    day: 5,
                    multiplier: 1.5,
                },
            ],
            ..Default::default()
        };
        assert!(config.enabled());
        assert!(!config.fragments());
        assert_eq!(config.flash_multiplier(2), 6.0);
        assert_eq!(config.flash_multiplier(5), 1.5);
        assert_eq!(config.flash_multiplier(0), 1.0);
    }

    fn assert_intervals_cover(duration: u32, intervals: &[(u32, u32)]) {
        let mut prev_end = 0u64;
        for (i, &(off, len)) in intervals.iter().enumerate() {
            assert!(len > 0, "interval {i} is empty");
            if i > 0 {
                assert!(u64::from(off) >= prev_end, "interval {i} overlaps");
            }
            prev_end = u64::from(off) + u64::from(len);
            assert!(
                prev_end <= u64::from(duration),
                "interval {i} exceeds the session"
            );
        }
    }

    #[test]
    fn fragmentation_is_disjoint_in_order_and_bounded() {
        let config = ChurnConfig {
            departure_rate_per_hour: 4.0,
            rejoin_probability: 0.7,
            mean_rejoin_delay_secs: 120.0,
            flash_crowds: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(42);
        for duration in [60u32, 1800, 7200] {
            for _ in 0..50 {
                let intervals = config.availability_intervals(duration, &mut rng);
                assert!(!intervals.is_empty());
                assert_eq!(intervals[0].0, 0, "first interval starts at t=0");
                assert_intervals_cover(duration, &intervals);
            }
        }
    }

    #[test]
    fn fragmentation_is_deterministic_per_stream() {
        let config = ChurnConfig::degradation_axis(3.0);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32)
                .map(|_| config.availability_intervals(3600, &mut rng))
                .collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32)
                .map(|_| config.availability_intervals(3600, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Coverage conservation: fragments are a disjoint, ordered
            // subset of the original session, for any valid config.
            #[test]
            fn prop_fragments_conserve_coverage(
                rate_tenths in 1u64..=100,
                rejoin_pct in 0u64..=100,
                delay_secs in 1u64..=3_600,
                duration in 1u32..=14_400,
                seed in 0u64..200,
            ) {
                let config = ChurnConfig {
                    departure_rate_per_hour: rate_tenths as f64 / 10.0,
                    rejoin_probability: rejoin_pct as f64 / 100.0,
                    mean_rejoin_delay_secs: delay_secs as f64,
                    flash_crowds: Vec::new(),
                };
                prop_assert!(config.validate().is_ok());
                let mut rng = StdRng::seed_from_u64(seed);
                let intervals = config.availability_intervals(duration, &mut rng);
                // The viewer is online when the session starts.
                prop_assert!(!intervals.is_empty());
                prop_assert_eq!(intervals[0].0, 0);
                // Disjoint, in order, union within [0, duration): the
                // fragments never claim time the session did not have.
                let mut prev_end = 0u64;
                let mut covered = 0u64;
                for (i, &(off, len)) in intervals.iter().enumerate() {
                    prop_assert!(len > 0, "interval {} empty", i);
                    prop_assert!(u64::from(off) >= prev_end, "interval {} overlaps", i);
                    prev_end = u64::from(off) + u64::from(len);
                    covered += u64::from(len);
                    prop_assert!(prev_end <= u64::from(duration));
                }
                prop_assert!(covered <= u64::from(duration));
                // Same stream, same config: byte-identical fragmentation.
                let mut again = StdRng::seed_from_u64(seed);
                prop_assert_eq!(
                    intervals,
                    config.availability_intervals(duration, &mut again)
                );
            }
        }
    }

    #[test]
    fn no_rejoin_means_single_truncated_interval() {
        let config = ChurnConfig {
            departure_rate_per_hour: 60.0,
            rejoin_probability: 0.0,
            mean_rejoin_delay_secs: 600.0,
            flash_crowds: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let intervals = config.availability_intervals(3600, &mut rng);
            assert_eq!(intervals.len(), 1, "no rejoin: exactly one interval");
            assert_eq!(intervals[0].0, 0);
            assert!(intervals[0].1 <= 3600);
        }
    }
}
