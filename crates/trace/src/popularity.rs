//! Content popularity models.
//!
//! Catch-up TV demand is *not* a single power law: the current week's
//! programmes all draw substantial audiences (a flat head), while the back
//! catalogue decays steeply. A single Zipf with the paper's observed head
//! share (top item ≈ 0.43 % of 23.5 M monthly sessions) would spread far too
//! much traffic across the tail to reproduce the paper's aggregate savings
//! (Fig. 4: ≈30 % for the biggest ISP needs most traffic in swarms of
//! capacity ≳ 2). The default model is therefore a **broken power law**:
//!
//! ```text
//! w(k) ∝ k^(−s_head)                          for k ≤ K (the break rank)
//! w(k) ∝ K^(−s_head) · (k/K)^(−s_tail)        for k > K
//! ```
//!
//! with defaults `s_head = 0.4`, `s_tail = 1.1` and `K = 1.25 %` of the
//! catalogue — calibrated so that at full London scale the top item gets
//! ≈147 K monthly views ("Bad Education" ≳ 100 K), rank ≈430 gets ≈10 K
//! ("Question Time"), rank ≈3500 gets ≈1 K ("What's to Eat"), and the head
//! carries enough traffic for the paper's aggregate savings bands.

use serde::{Deserialize, Serialize};

/// A content popularity model: how monthly sessions distribute over ranks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Popularity {
    /// Single power law `w(k) ∝ k^(−s)`.
    Zipf {
        /// The exponent `s > 0`.
        exponent: f64,
    },
    /// Broken power law: flat head, steep tail (see module docs).
    BrokenZipf {
        /// Head exponent (`> 0`, typically < 1).
        head_exponent: f64,
        /// Tail exponent (`> 0`, typically > 1).
        tail_exponent: f64,
        /// Break rank as a fraction of the catalogue size, in `(0, 1]`.
        break_fraction: f64,
    },
}

impl Popularity {
    /// The calibrated catch-up-TV default (see module docs).
    pub fn catchup_tv() -> Self {
        Popularity::BrokenZipf {
            head_exponent: 0.4,
            tail_exponent: 1.1,
            break_fraction: 0.0125,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |name: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!(
                    "popularity parameter `{name}` must be positive, got {v}"
                ))
            }
        };
        match *self {
            Popularity::Zipf { exponent } => pos("exponent", exponent),
            Popularity::BrokenZipf {
                head_exponent,
                tail_exponent,
                break_fraction,
            } => {
                pos("head_exponent", head_exponent)?;
                pos("tail_exponent", tail_exponent)?;
                pos("break_fraction", break_fraction)?;
                if break_fraction > 1.0 {
                    return Err(format!(
                        "popularity `break_fraction` must be ≤ 1, got {break_fraction}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// The *unnormalised* weight of 0-based rank `k` in a catalogue of
    /// `n` items.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the parameters are invalid; call
    /// [`Popularity::validate`] first.
    pub fn weight(&self, k: u32, n: u32) -> f64 {
        debug_assert!(self.validate().is_ok());
        let rank = f64::from(k) + 1.0;
        match *self {
            Popularity::Zipf { exponent } => rank.powf(-exponent),
            Popularity::BrokenZipf {
                head_exponent,
                tail_exponent,
                break_fraction,
            } => {
                let break_rank = (f64::from(n) * break_fraction).max(1.0);
                if rank <= break_rank {
                    rank.powf(-head_exponent)
                } else {
                    break_rank.powf(-head_exponent) * (rank / break_rank).powf(-tail_exponent)
                }
            }
        }
    }

    /// The normalised weights for a catalogue of `n` items (sums to 1).
    /// Empty when `n == 0` or parameters are invalid.
    pub fn weights(&self, n: u32) -> Vec<f64> {
        if n == 0 || self.validate().is_err() {
            return Vec::new();
        }
        let mut w: Vec<f64> = (0..n).map(|k| self.weight(k, n)).collect();
        let total: f64 = w.iter().sum();
        for x in &mut w {
            *x /= total;
        }
        w
    }
}

impl Default for Popularity {
    fn default() -> Self {
        Self::catchup_tv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Popularity::Zipf { exponent: 0.5 }.validate().is_ok());
        assert!(Popularity::Zipf { exponent: 0.0 }.validate().is_err());
        assert!(Popularity::catchup_tv().validate().is_ok());
        let bad = Popularity::BrokenZipf {
            head_exponent: 0.4,
            tail_exponent: 1.1,
            break_fraction: 1.5,
        };
        assert!(bad.validate().is_err());
        let bad = Popularity::BrokenZipf {
            head_exponent: f64::NAN,
            tail_exponent: 1.1,
            break_fraction: 0.01,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn weights_normalised_and_monotone() {
        for model in [Popularity::Zipf { exponent: 0.7 }, Popularity::catchup_tv()] {
            let w = model.weights(10_000);
            assert_eq!(w.len(), 10_000);
            let total: f64 = w.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            for pair in w.windows(2) {
                assert!(pair[0] >= pair[1] - 1e-15, "weights decay with rank");
            }
        }
    }

    #[test]
    fn broken_zipf_is_continuous_at_break() {
        let model = Popularity::catchup_tv();
        let n = 24_000u32;
        let break_rank = (f64::from(n) * 0.0125) as u32; // rank 300
        let before = model.weight(break_rank - 1, n);
        let at = model.weight(break_rank, n);
        // Adjacent ranks across the break differ smoothly (< 2%).
        assert!((before / at - 1.0).abs() < 0.02, "{before} vs {at}");
    }

    #[test]
    fn full_scale_calibration_matches_paper_exemplars() {
        // At full London scale (24 000 items, 23.5 M sessions):
        let model = Popularity::catchup_tv();
        let w = model.weights(24_000);
        let sessions = 23.5e6;
        let views = |k: usize| w[k] * sessions;
        // Top item ≳ 100 K ("Bad Education").
        assert!(views(0) > 100_000.0, "top item {}", views(0));
        assert!(views(0) < 250_000.0, "top item {}", views(0));
        // Some rank lands near 10 K ("Question Time") within the first ~1 K.
        let medium = (0..1_500)
            .find(|&k| views(k) < 10_500.0)
            .expect("medium rank");
        assert!(views(medium) > 7_000.0, "rank {medium}: {}", views(medium));
        // Some deeper rank lands near 1 K ("What's to Eat").
        let unpop = (0..10_000)
            .find(|&k| views(k) < 1_050.0)
            .expect("unpopular rank");
        assert!(views(unpop) > 700.0, "rank {unpop}: {}", views(unpop));
        // The head (top 2 %) carries a large share of all traffic — the
        // property a single Zipf(0.55) lacks and Figs. 4/6 need.
        let head_share: f64 = w[..480].iter().sum();
        assert!(head_share > 0.35, "head share {head_share}");
    }

    #[test]
    fn tail_steeper_than_head() {
        let model = Popularity::catchup_tv();
        let n = 10_000;
        let w = model.weights(n);
        let ratio_head = w[10] / w[20]; // (11/21)^-0.4
        let ratio_tail = w[5_000] / w[9_999];
        let expected_head = (11.0f64 / 21.0).powf(-0.4);
        assert!((ratio_head / expected_head - 1.0).abs() < 1e-9);
        let expected_tail = (5_001.0f64 / 10_000.0).powf(-1.1);
        assert!((ratio_tail / expected_tail - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(Popularity::catchup_tv().weights(0).is_empty());
        let one = Popularity::catchup_tv().weights(1);
        assert_eq!(one, vec![1.0]);
    }
}
