//! The session record: one user streaming one item once.

use serde::{Deserialize, Serialize};

use consume_local_topology::{IspId, UserLocation};

use crate::content::ContentId;
use crate::device::{BitrateClass, DeviceClass};
use crate::population::UserId;
use crate::time::SimTime;

/// One playback session, the unit record of the trace (the paper's dataset
/// rows carry the same fields: timestamps, durations and bitrates per
/// session, plus the user's ISP and location).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Who watched.
    pub user: UserId,
    /// What they watched.
    pub content: ContentId,
    /// When playback started.
    pub start: SimTime,
    /// How long they watched, in seconds (≤ the item duration).
    pub duration_secs: u32,
    /// The device class (fixes the bitrate).
    pub device: DeviceClass,
    /// The user's ISP (denormalised from the population for fast grouping).
    pub isp: IspId,
    /// The user's attachment point (denormalised likewise).
    pub location: UserLocation,
}

impl SessionRecord {
    /// When playback ends.
    pub fn end(&self) -> SimTime {
        self.start + u64::from(self.duration_secs)
    }

    /// Whether the session is active at time `t` (half-open `[start, end)`).
    pub fn is_active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end()
    }

    /// The streaming bitrate in bits per second.
    pub fn bitrate_bps(&self) -> u32 {
        self.device.bitrate_bps()
    }

    /// The swarm bitrate class.
    pub fn bitrate_class(&self) -> BitrateClass {
        self.device.bitrate_class()
    }

    /// Bytes consumed by the whole session (`bitrate × duration / 8`).
    pub fn bytes_watched(&self) -> u64 {
        u64::from(self.bitrate_bps()) * u64::from(self.duration_secs) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_topology::IspTopology;

    fn record() -> SessionRecord {
        let topo = IspTopology::london_table3().unwrap();
        SessionRecord {
            user: UserId(7),
            content: ContentId(3),
            start: SimTime::from_day_hour(2, 20),
            duration_secs: 1800,
            device: DeviceClass::Desktop,
            isp: IspId(0),
            location: topo.location_of(consume_local_topology::ExchangeId(12)),
        }
    }

    #[test]
    fn end_and_activity() {
        let r = record();
        assert_eq!(r.end(), r.start + 1800);
        assert!(r.is_active_at(r.start));
        assert!(r.is_active_at(r.start + 1799));
        assert!(!r.is_active_at(r.end()));
        assert!(!r.is_active_at(r.start - 1));
    }

    #[test]
    fn bytes_watched_matches_bitrate() {
        let r = record();
        // 1.5 Mb/s × 1800 s / 8 = 337.5 MB
        assert_eq!(r.bytes_watched(), 1_500_000u64 * 1800 / 8);
        assert_eq!(r.bitrate_class().bps(), 1_500_000);
    }

    #[test]
    fn zero_duration_session_is_never_active() {
        let mut r = record();
        r.duration_secs = 0;
        assert!(!r.is_active_at(r.start));
        assert_eq!(r.bytes_watched(), 0);
    }
}
