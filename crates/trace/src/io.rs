//! Plain-text CSV serialisation of session streams.
//!
//! The format is a stable, dependency-free CSV with a header row:
//!
//! ```text
//! user,content,start_secs,duration_secs,device,isp,pop,exchange
//! ```
//!
//! All fields are unsigned integers except `device`, which uses the
//! [`DeviceClass`] display tokens (`mobile`, `tablet`, `desktop`, `hd-tv`,
//! `fullhd-tv`). This lets real traces (with the paper's schema) be converted
//! into the simulator's input without the generator.

use std::fmt;
use std::io::{self, BufRead, Write};

use consume_local_topology::{ExchangeId, IspId, PopId, UserLocation};

use crate::content::ContentId;
use crate::device::DeviceClass;
use crate::population::UserId;
use crate::session::SessionRecord;
use crate::time::SimTime;

/// The CSV header line.
pub const HEADER: &str = "user,content,start_secs,duration_secs,device,isp,pop,exchange";

/// Error from [`read_sessions`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and description).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "trace io error: {e}"),
            ReadError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn device_token(d: DeviceClass) -> &'static str {
    match d {
        DeviceClass::Mobile => "mobile",
        DeviceClass::Tablet => "tablet",
        DeviceClass::Desktop => "desktop",
        DeviceClass::HdTv => "hd-tv",
        DeviceClass::FullHdTv => "fullhd-tv",
    }
}

fn device_from_token(s: &str) -> Option<DeviceClass> {
    Some(match s {
        "mobile" => DeviceClass::Mobile,
        "tablet" => DeviceClass::Tablet,
        "desktop" => DeviceClass::Desktop,
        "hd-tv" => DeviceClass::HdTv,
        "fullhd-tv" => DeviceClass::FullHdTv,
        _ => return None,
    })
}

/// Writes sessions as CSV (header + one line per session).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sessions<W: Write>(mut w: W, sessions: &[SessionRecord]) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for s in sessions {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            s.user.0,
            s.content.0,
            s.start.as_secs(),
            s.duration_secs,
            device_token(s.device),
            s.isp.0,
            s.location.pop().0,
            s.location.exchange().0,
        )?;
    }
    Ok(())
}

/// Reads sessions from CSV produced by [`write_sessions`] (or an external
/// converter emitting the same schema).
///
/// # Errors
///
/// Returns [`ReadError::Parse`] on a bad header, wrong field count or
/// unparseable field, and [`ReadError::Io`] on reader failure.
pub fn read_sessions<R: BufRead>(r: R) -> Result<Vec<SessionRecord>, ReadError> {
    let mut out = Vec::new();
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| ReadError::Parse {
        line: 1,
        message: "empty input".into(),
    })??;
    if header.trim() != HEADER {
        return Err(ReadError::Parse {
            line: 1,
            message: format!("bad header `{header}`"),
        });
    }
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(ReadError::Parse {
                line: lineno,
                message: format!("expected 8 fields, got {}", fields.len()),
            });
        }
        let parse_u64 = |idx: usize, name: &str| -> Result<u64, ReadError> {
            fields[idx]
                .trim()
                .parse::<u64>()
                .map_err(|e| ReadError::Parse {
                    line: lineno,
                    message: format!("bad {name} `{}`: {e}", fields[idx]),
                })
        };
        let device = device_from_token(fields[4].trim()).ok_or_else(|| ReadError::Parse {
            line: lineno,
            message: format!("unknown device `{}`", fields[4]),
        })?;
        out.push(SessionRecord {
            user: UserId(parse_u64(0, "user")? as u32),
            content: ContentId(parse_u64(1, "content")? as u32),
            start: SimTime(parse_u64(2, "start_secs")?),
            duration_secs: parse_u64(3, "duration_secs")? as u32,
            device,
            isp: IspId(parse_u64(5, "isp")? as u8),
            location: location_from_parts(
                parse_u64(6, "pop")? as u32,
                parse_u64(7, "exchange")? as u32,
            ),
        });
    }
    Ok(out)
}

/// Rebuilds a [`UserLocation`] from its serialized parts.
///
/// The CSV stores both the PoP and the exchange so the round trip does not
/// depend on any particular topology's parent mapping.
fn location_from_parts(pop: u32, exchange: u32) -> UserLocation {
    UserLocation::from_raw_parts(ExchangeId(exchange), PopId(pop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    fn sample_sessions() -> Vec<SessionRecord> {
        let cfg = TraceConfig::london_sep2013().scaled(0.0002).unwrap();
        TraceGenerator::new(cfg, 5)
            .generate()
            .unwrap()
            .sessions()
            .to_vec()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let sessions = sample_sessions();
        assert!(!sessions.is_empty());
        let mut buf = Vec::new();
        write_sessions(&mut buf, &sessions).unwrap();
        let back = read_sessions(buf.as_slice()).unwrap();
        assert_eq!(sessions, back);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_sessions("nope\n1,2,3".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_empty_input() {
        let err = read_sessions("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("empty input"));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let input = format!("{HEADER}\n1,2,3\n");
        let err = read_sessions(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 8 fields"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_bad_device_and_numbers() {
        let input = format!("{HEADER}\n1,2,3,4,gameboy,0,1,2\n");
        let err = read_sessions(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown device"));
        let input = format!("{HEADER}\nx,2,3,4,mobile,0,1,2\n");
        let err = read_sessions(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad user"));
    }

    #[test]
    fn skips_blank_lines() {
        let input = format!("{HEADER}\n\n1,2,3,90,mobile,0,1,2\n\n");
        let sessions = read_sessions(input.as_bytes()).unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].duration_secs, 90);
    }

    #[test]
    fn device_tokens_round_trip() {
        for (d, _) in DeviceClass::MIX {
            assert_eq!(device_from_token(device_token(d)), Some(d));
        }
        assert_eq!(device_from_token("vr-headset"), None);
    }
}
