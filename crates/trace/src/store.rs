//! Columnar (structure-of-arrays) session storage.
//!
//! A [`Trace`] keeps its sessions as a row-major
//! `Vec<SessionRecord>` — convenient for generation and I/O, but the
//! simulation engine touches only a few fields per pass (grouping reads
//! content/ISP/bitrate, the window loop reads start/duration and the peer
//! columns), so row storage drags the untouched bytes of every 40-byte
//! record through the cache. [`SessionStore`] transposes the trace once into
//! parallel columns plus a per-start-window cursor index, and is cheap to
//! share (`Arc`) across the many scenarios of a sweep that replay the same
//! trace.
//!
//! Column order is the trace's canonical session order (start, then user,
//! then content), so index `i` in every column is the trace's session `i`.
//!
//! # Example
//!
//! ```
//! use consume_local_trace::{SessionStore, TraceConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), consume_local_trace::TraceError> {
//! let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003)?, 9)
//!     .generate()?;
//! let store = SessionStore::from_trace(&trace);
//! assert_eq!(store.len(), trace.sessions().len());
//! assert_eq!(store.record(0), trace.sessions()[0]);
//! # Ok(())
//! # }
//! ```

use consume_local_topology::{IspId, UserLocation};

use crate::content::ContentId;
use crate::device::{BitrateClass, DeviceClass};
use crate::generator::Trace;
use crate::population::UserId;
use crate::session::SessionRecord;
use crate::time::SimTime;

/// Granularity of the per-start-window cursor index: one offset per hour of
/// the horizon bounds any in-bucket search to the sessions of that hour.
const INDEX_WINDOW_SECS: u64 = crate::time::SECS_PER_HOUR;

/// A start-sorted, columnar view of a trace's sessions.
///
/// Built once per trace ([`SessionStore::from_trace`]) and shared across
/// every simulation that replays it; see the crate-level docs of
/// [`store`](crate::store) for the layout rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStore {
    start_secs: Vec<u64>,
    duration_secs: Vec<u32>,
    user: Vec<u32>,
    content: Vec<u32>,
    device: Vec<DeviceClass>,
    isp: Vec<IspId>,
    location: Vec<UserLocation>,
    horizon_secs: u64,
    population_len: usize,
    /// `window_offsets[w]` = index of the first session starting at or after
    /// `w × INDEX_WINDOW_SECS`; one trailing entry holds `len()`.
    window_offsets: Vec<u32>,
    /// Largest user id across the sessions (0 when empty).
    max_user: u32,
    /// Largest content id across the sessions (0 when empty).
    max_content: u32,
}

impl SessionStore {
    /// Columnarises a trace (sessions are already in canonical order).
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_sorted(
            trace.sessions(),
            trace.horizon_seconds(),
            trace.population().len(),
        )
    }

    /// Builds a store from arbitrary records: sorts a copy into the
    /// canonical trace order (start, user, content — exactly
    /// [`Trace::from_parts`]) and columnarises it.
    ///
    /// `horizon_secs` is the replay horizon (sessions may end beyond it);
    /// `population_len` the number of users the records index into.
    pub fn from_records(
        records: &[SessionRecord],
        horizon_secs: u64,
        population_len: usize,
    ) -> Self {
        let mut sorted = records.to_vec();
        crate::generator::sort_sessions(&mut sorted);
        Self::from_sorted(&sorted, horizon_secs, population_len)
    }

    pub(crate) fn from_sorted(
        sessions: &[SessionRecord],
        horizon_secs: u64,
        population_len: usize,
    ) -> Self {
        debug_assert!(sessions.windows(2).all(|w| w[0].start <= w[1].start));
        let n = sessions.len();
        let mut store = Self {
            start_secs: Vec::with_capacity(n),
            duration_secs: Vec::with_capacity(n),
            user: Vec::with_capacity(n),
            content: Vec::with_capacity(n),
            device: Vec::with_capacity(n),
            isp: Vec::with_capacity(n),
            location: Vec::with_capacity(n),
            horizon_secs,
            population_len,
            window_offsets: Vec::new(),
            max_user: 0,
            max_content: 0,
        };
        for s in sessions {
            store.start_secs.push(s.start.as_secs());
            store.duration_secs.push(s.duration_secs);
            store.user.push(s.user.0);
            store.content.push(s.content.0);
            store.device.push(s.device);
            store.isp.push(s.isp);
            store.location.push(s.location);
            store.max_user = store.max_user.max(s.user.0);
            store.max_content = store.max_content.max(s.content.0);
        }
        store.window_offsets = build_window_offsets(&store.start_secs, horizon_secs);
        store
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.start_secs.len()
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.start_secs.is_empty()
    }

    /// The replay horizon in seconds.
    pub fn horizon_secs(&self) -> u64 {
        self.horizon_secs
    }

    /// Number of users the `user` column indexes into.
    pub fn population_len(&self) -> usize {
        self.population_len
    }

    /// Start times in seconds, ascending.
    pub fn start_secs(&self) -> &[u64] {
        &self.start_secs
    }

    /// Watched durations in seconds.
    pub fn duration_secs(&self) -> &[u32] {
        &self.duration_secs
    }

    /// Viewer user ids.
    pub fn user(&self) -> &[u32] {
        &self.user
    }

    /// Content item ids.
    pub fn content(&self) -> &[u32] {
        &self.content
    }

    /// Device classes (fix the streaming bitrate).
    pub fn device(&self) -> &[DeviceClass] {
        &self.device
    }

    /// Viewer ISPs.
    pub fn isp(&self) -> &[IspId] {
        &self.isp
    }

    /// Viewer attachment points.
    pub fn location(&self) -> &[UserLocation] {
        &self.location
    }

    /// The per-field maxima that decide whether the 59-bit compact sort key
    /// can represent these sessions: `(max start seconds, max user id,
    /// max content id)`, all zero for an empty store.
    ///
    /// The engine folds these across every batch it ingests and surfaces a
    /// structured `SimReport` warning when any field exceeds
    /// [`sort_key_bounds`](crate::generator::sort_key_bounds) — the trace
    /// merge has then already fallen back to the wide sort, so results are
    /// still exact, just slower to produce.
    pub fn sort_key_maxima(&self) -> (u64, u32, u32) {
        (
            self.start_secs.last().copied().unwrap_or(0),
            self.max_user,
            self.max_content,
        )
    }

    /// Session `i`'s end time in seconds (`start + duration`).
    pub fn end_secs(&self, i: usize) -> u64 {
        self.start_secs[i] + u64::from(self.duration_secs[i])
    }

    /// Session `i`'s streaming bitrate in bits per second.
    pub fn bitrate_bps(&self, i: usize) -> u32 {
        self.device[i].bitrate_bps()
    }

    /// Session `i`'s swarm bitrate class.
    pub fn bitrate_class(&self, i: usize) -> BitrateClass {
        self.device[i].bitrate_class()
    }

    /// Reassembles session `i` as a row record.
    pub fn record(&self, i: usize) -> SessionRecord {
        SessionRecord {
            user: UserId(self.user[i]),
            content: ContentId(self.content[i]),
            start: SimTime(self.start_secs[i]),
            duration_secs: self.duration_secs[i],
            device: self.device[i],
            isp: self.isp[i],
            location: self.location[i],
        }
    }

    /// Reassembles every session (canonical order) — the inverse of
    /// [`SessionStore::from_records`] up to that ordering.
    pub fn to_records(&self) -> Vec<SessionRecord> {
        (0..self.len()).map(|i| self.record(i)).collect()
    }

    /// Index of the first session starting at or after `secs` (or `len()`).
    ///
    /// The per-start-window index bounds the binary search to one window's
    /// sessions, so lookups touch a cache line or two instead of the whole
    /// start column.
    pub fn first_at_or_after(&self, secs: u64) -> usize {
        let w = (secs / INDEX_WINDOW_SECS) as usize;
        if w + 1 >= self.window_offsets.len() {
            return self.len();
        }
        let lo = self.window_offsets[w] as usize;
        let hi = self.window_offsets[w + 1] as usize;
        lo + self.start_secs[lo..hi].partition_point(|&s| s < secs)
    }

    /// The sessions starting inside cursor-index window `w` (index range
    /// into the columns).
    pub fn window_range(&self, w: usize) -> std::ops::Range<usize> {
        let lo = self
            .window_offsets
            .get(w)
            .copied()
            .unwrap_or(self.len() as u32) as usize;
        let hi = self
            .window_offsets
            .get(w + 1)
            .copied()
            .unwrap_or(self.len() as u32) as usize;
        lo..hi
    }

    /// A sliding active-window cursor over a start-sorted index subset (one
    /// sub-swarm's sessions — or the whole store via `0..len`).
    pub fn cursor<'a>(&'a self, indices: &'a [u32]) -> StoreCursor<'a> {
        debug_assert!(indices
            .windows(2)
            .all(|w| self.start_secs[w[0] as usize] <= self.start_secs[w[1] as usize]));
        StoreCursor {
            // The cursor holds the start column directly — one load fewer
            // per window probe than going through the store.
            starts: &self.start_secs,
            indices,
            pos: 0,
        }
    }
}

/// `offsets[w]` = first index with `start >= w × INDEX_WINDOW_SECS`, with a
/// trailing `len` sentinel. Covers the horizon even where no sessions start.
fn build_window_offsets(start_secs: &[u64], horizon_secs: u64) -> Vec<u32> {
    let max_start = start_secs.last().copied().unwrap_or(0);
    let windows = (max_start.max(horizon_secs.saturating_sub(1)) / INDEX_WINDOW_SECS) as usize + 1;
    let mut offsets = Vec::with_capacity(windows + 1);
    let mut i = 0usize;
    for w in 0..windows {
        let boundary = w as u64 * INDEX_WINDOW_SECS;
        while i < start_secs.len() && start_secs[i] < boundary {
            i += 1;
        }
        offsets.push(i as u32);
    }
    offsets.push(start_secs.len() as u32);
    offsets
}

/// Sliding active-window cursor handed out by [`SessionStore::cursor`]:
/// admits each session exactly once, in start order, as the window boundary
/// advances. The engine drives one cursor per sub-swarm instead of
/// re-scanning row records.
#[derive(Debug)]
pub struct StoreCursor<'a> {
    starts: &'a [u64],
    indices: &'a [u32],
    pos: usize,
}

impl StoreCursor<'_> {
    /// Calls `admit` with every not-yet-admitted session index whose start
    /// is at or before `t_secs`, in start order.
    #[inline]
    pub fn admit_until(&mut self, t_secs: u64, mut admit: impl FnMut(usize)) {
        while self.pos < self.indices.len() {
            let i = self.indices[self.pos] as usize;
            if self.starts[i] > t_secs {
                break;
            }
            admit(i);
            self.pos += 1;
        }
    }

    /// Start time of the next unadmitted session, if any.
    #[inline]
    pub fn next_start_secs(&self) -> Option<u64> {
        self.indices.get(self.pos).map(|&i| self.starts[i as usize])
    }

    /// Whether every session has been admitted.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.pos >= self.indices.len()
    }
}

/// A trace's sessions as per-day [`SessionStore`] segments.
///
/// The monolithic [`SessionStore`] holds the whole horizon's columns at
/// once — fine up to the `medium` preset, but the `large`/`full` presets
/// (1.2 M / 23.5 M sessions) pay tens of bytes per session for the entire
/// month. A `SegmentedStore` partitions the canonical session order by
/// **start day**: segment `d` is a complete `SessionStore` over the
/// sessions starting in `[d·86400, (d+1)·86400)`, and concatenating the
/// segments reproduces the monolithic column order exactly (sessions are
/// globally start-sorted, so the day partition is contiguous).
///
/// A materialised `SegmentedStore` still holds every segment; the bounded
/// *peak*-memory path streams segments one at a time from
/// [`TraceGenerator::segments`](crate::generator::TraceGenerator::segments)
/// into the engine (`Simulator::run_trace_stream` in `consume-local-sim`)
/// so only one day is resident. The materialised form is the shared,
/// replayable middle ground (sweeps, tests) and carries the same global
/// [`window_range`](SegmentedStore::window_range) /
/// [`first_at_or_after`](SegmentedStore::first_at_or_after) lookup API as
/// the monolithic store; the sliding-cursor API lives on each segment
/// ([`SessionStore::cursor`]).
///
/// # Example
///
/// ```
/// use consume_local_trace::{SegmentedStore, SessionStore, TraceConfig, TraceGenerator};
///
/// # fn main() -> Result<(), consume_local_trace::TraceError> {
/// let config = TraceConfig::london_sep2013().scaled(0.0003)?;
/// let trace = TraceGenerator::new(config, 9).generate()?;
/// let monolithic = SessionStore::from_trace(&trace);
/// let segmented = SegmentedStore::from_trace(&trace);
/// // One segment per horizon day; concatenation is the monolithic order.
/// assert_eq!(segmented.num_segments() as u64, trace.config().days as u64);
/// assert_eq!(segmented.len(), monolithic.len());
/// assert_eq!(segmented.to_records(), monolithic.to_records());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedStore {
    segments: Vec<SessionStore>,
    /// `offsets[d]` = global index of segment `d`'s first session; one
    /// trailing entry holds `len()`.
    offsets: Vec<usize>,
    horizon_secs: u64,
    population_len: usize,
}

impl SegmentedStore {
    /// Seconds covered by one segment (one day).
    pub const SEGMENT_SECS: u64 = crate::time::SECS_PER_DAY;

    /// Partitions a trace's (already canonically sorted) sessions into
    /// per-day segments.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_sorted(
            trace.sessions(),
            trace.horizon_seconds(),
            trace.population().len(),
        )
    }

    /// Builds a segmented store from arbitrary records: sorts a copy into
    /// canonical trace order, then partitions it by start day. Semantics of
    /// `horizon_secs` / `population_len` are as
    /// [`SessionStore::from_records`].
    pub fn from_records(
        records: &[SessionRecord],
        horizon_secs: u64,
        population_len: usize,
    ) -> Self {
        let mut sorted = records.to_vec();
        crate::generator::sort_sessions(&mut sorted);
        Self::from_sorted(&sorted, horizon_secs, population_len)
    }

    fn from_sorted(sessions: &[SessionRecord], horizon_secs: u64, population_len: usize) -> Self {
        let days = day_count(horizon_secs, sessions.last().map(|s| s.start.as_secs()));
        let mut segments = Vec::with_capacity(days);
        let mut offsets = Vec::with_capacity(days + 1);
        let mut lo = 0usize;
        for day in 0..days {
            let boundary = (day as u64 + 1) * Self::SEGMENT_SECS;
            let hi = lo + sessions[lo..].partition_point(|s| s.start.as_secs() < boundary);
            offsets.push(lo);
            segments.push(SessionStore::from_sorted(
                &sessions[lo..hi],
                horizon_secs,
                population_len,
            ));
            lo = hi;
        }
        debug_assert_eq!(lo, sessions.len());
        offsets.push(sessions.len());
        Self {
            segments,
            offsets,
            horizon_secs,
            population_len,
        }
    }

    /// Assembles a segmented store from per-day segments (segment `d` must
    /// hold exactly the sessions starting in day `d`, canonically ordered —
    /// the shape [`TraceGenerator::segments`](crate::generator::TraceGenerator::segments)
    /// emits).
    pub fn from_day_segments(
        segments: Vec<SessionStore>,
        horizon_secs: u64,
        population_len: usize,
    ) -> Self {
        debug_assert!(segments.iter().enumerate().all(|(d, s)| {
            let lo = d as u64 * Self::SEGMENT_SECS;
            s.start_secs()
                .iter()
                .all(|&t| (lo..lo + Self::SEGMENT_SECS).contains(&t))
        }));
        let mut offsets = Vec::with_capacity(segments.len() + 1);
        let mut acc = 0usize;
        for s in &segments {
            offsets.push(acc);
            acc += s.len();
        }
        offsets.push(acc);
        Self {
            segments,
            offsets,
            horizon_secs,
            population_len,
        }
    }

    /// The per-day segments, in day order.
    pub fn segments(&self) -> &[SessionStore] {
        &self.segments
    }

    /// Segment `day` (sessions starting in `[day·86400, (day+1)·86400)`).
    pub fn segment(&self, day: usize) -> &SessionStore {
        &self.segments[day]
    }

    /// Number of day segments (covers the horizon and any later-starting
    /// sessions).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total number of sessions across all segments.
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets carry a len sentinel")
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The replay horizon in seconds.
    pub fn horizon_secs(&self) -> u64 {
        self.horizon_secs
    }

    /// Number of users the `user` columns index into.
    pub fn population_len(&self) -> usize {
        self.population_len
    }

    /// Reassembles global session `i` as a row record (same indexing as the
    /// monolithic store: canonical order across the concatenated segments).
    pub fn record(&self, i: usize) -> SessionRecord {
        let day = self.offsets.partition_point(|&o| o <= i) - 1;
        self.segments[day].record(i - self.offsets[day])
    }

    /// Reassembles every session in canonical order — identical to the
    /// monolithic [`SessionStore::to_records`] of the same sessions.
    pub fn to_records(&self) -> Vec<SessionRecord> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.segments {
            out.extend(s.to_records());
        }
        out
    }

    /// Global index of the first session starting at or after `secs` (or
    /// `len()`), agreeing with [`SessionStore::first_at_or_after`] on the
    /// monolithic store of the same sessions.
    pub fn first_at_or_after(&self, secs: u64) -> usize {
        let day = (secs / Self::SEGMENT_SECS) as usize;
        if day >= self.segments.len() {
            return self.len();
        }
        self.offsets[day] + self.segments[day].first_at_or_after(secs)
    }

    /// The global index range of sessions starting inside cursor-index
    /// window `w` (hour `w` of the horizon) — the segmented counterpart of
    /// [`SessionStore::window_range`].
    pub fn window_range(&self, w: usize) -> std::ops::Range<usize> {
        const WINDOWS_PER_SEGMENT: usize =
            (SegmentedStore::SEGMENT_SECS / INDEX_WINDOW_SECS) as usize;
        let day = w / WINDOWS_PER_SEGMENT;
        if day >= self.segments.len() {
            return self.len()..self.len();
        }
        let local = self.segments[day].window_range(w);
        let base = self.offsets[day];
        base + local.start..base + local.end
    }
}

/// Number of day segments needed to cover `horizon_secs` and the last
/// session start (sessions may start beyond the horizon; they are never
/// replayed but stay representable, as in the monolithic store).
fn day_count(horizon_secs: u64, last_start: Option<u64>) -> usize {
    let spd = SegmentedStore::SEGMENT_SECS;
    let for_horizon = horizon_secs.div_ceil(spd).max(1);
    let for_sessions = last_start.map_or(0, |s| s / spd + 1);
    for_horizon.max(for_sessions) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    fn small_trace() -> Trace {
        TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0005).unwrap(), 31)
            .generate()
            .unwrap()
    }

    #[test]
    fn from_trace_round_trips_every_record() {
        let trace = small_trace();
        let store = SessionStore::from_trace(&trace);
        assert_eq!(store.len(), trace.sessions().len());
        assert!(!store.is_empty());
        assert_eq!(store.horizon_secs(), trace.horizon_seconds());
        assert_eq!(store.population_len(), trace.population().len());
        assert_eq!(store.to_records(), trace.sessions());
        for (i, s) in trace.sessions().iter().enumerate().step_by(97) {
            assert_eq!(store.record(i), *s);
            assert_eq!(store.end_secs(i), s.end().as_secs());
            assert_eq!(store.bitrate_bps(i), s.bitrate_bps());
            assert_eq!(store.bitrate_class(i), s.bitrate_class());
        }
    }

    #[test]
    fn from_records_sorts_canonically() {
        let trace = small_trace();
        let mut shuffled = trace.sessions().to_vec();
        shuffled.reverse();
        let store = SessionStore::from_records(
            &shuffled,
            trace.horizon_seconds(),
            trace.population().len(),
        );
        assert_eq!(store.to_records(), trace.sessions());
    }

    #[test]
    fn window_index_finds_first_start() {
        let trace = small_trace();
        let store = SessionStore::from_trace(&trace);
        let starts = store.start_secs();
        for probe in [0, 1, 3_600, 86_400 + 7, 15 * 86_400, store.horizon_secs()] {
            let got = store.first_at_or_after(probe);
            let expect = starts.partition_point(|&s| s < probe);
            assert_eq!(got, expect, "probe {probe}");
        }
        // Window ranges tile the whole column.
        let mut covered = 0usize;
        let windows = store.horizon_secs().div_ceil(INDEX_WINDOW_SECS) as usize;
        for w in 0..windows {
            let r = store.window_range(w);
            assert_eq!(r.start, covered);
            covered = r.end;
            for i in r {
                assert_eq!(starts[i] / INDEX_WINDOW_SECS, w as u64);
            }
        }
        assert_eq!(covered, store.len());
        assert_eq!(store.window_range(windows + 5), store.len()..store.len());
    }

    #[test]
    fn empty_store_is_consistent() {
        let store = SessionStore::from_records(&[], 86_400, 10);
        assert!(store.is_empty());
        assert_eq!(store.first_at_or_after(0), 0);
        assert_eq!(store.first_at_or_after(90_000), 0);
        assert!(store.to_records().is_empty());
        let indices: [u32; 0] = [];
        let mut cursor = store.cursor(&indices);
        assert!(cursor.exhausted());
        assert_eq!(cursor.next_start_secs(), None);
        cursor.admit_until(1_000_000, |_| panic!("nothing to admit"));
    }

    #[test]
    fn cursor_admits_each_session_once_in_start_order() {
        let trace = small_trace();
        let store = SessionStore::from_trace(&trace);
        let indices: Vec<u32> = (0..store.len() as u32).collect();
        let mut cursor = store.cursor(&indices);
        let mut admitted = Vec::new();
        let dt = 6 * 3_600;
        let mut t = 0u64;
        while !cursor.exhausted() {
            cursor.admit_until(t, |i| admitted.push(i));
            if let Some(next) = cursor.next_start_secs() {
                assert!(next > t, "cursor must make progress");
            }
            t += dt;
        }
        assert_eq!(admitted.len(), store.len());
        assert!(admitted.windows(2).all(|w| w[0] < w[1]));
        // Every admitted index had started by its admission window.
        for (k, &i) in admitted.iter().enumerate().step_by(101) {
            let _ = k;
            assert!(store.start_secs()[i] <= t);
        }
    }

    #[test]
    fn segmented_store_matches_monolithic_views() {
        let trace = small_trace();
        let mono = SessionStore::from_trace(&trace);
        let seg = SegmentedStore::from_trace(&trace);
        assert_eq!(seg.num_segments() as u32, trace.config().days);
        assert_eq!(seg.len(), mono.len());
        assert!(!seg.is_empty());
        assert_eq!(seg.horizon_secs(), mono.horizon_secs());
        assert_eq!(seg.population_len(), mono.population_len());
        assert_eq!(seg.to_records(), mono.to_records());
        for i in (0..mono.len()).step_by(89) {
            assert_eq!(seg.record(i), mono.record(i));
        }
        // Segment d holds exactly day d's sessions, canonically ordered.
        for (d, s) in seg.segments().iter().enumerate() {
            let lo = d as u64 * SegmentedStore::SEGMENT_SECS;
            assert!(s
                .start_secs()
                .iter()
                .all(|&t| t >= lo && t < lo + SegmentedStore::SEGMENT_SECS));
            assert_eq!(s, seg.segment(d));
        }
        // Global lookups agree with the monolithic index.
        for probe in [
            0,
            59,
            3_600,
            86_399,
            86_400,
            15 * 86_400 + 7,
            seg.horizon_secs() + 5,
        ] {
            assert_eq!(
                seg.first_at_or_after(probe),
                mono.first_at_or_after(probe),
                "probe {probe}"
            );
        }
        let windows = (seg.horizon_secs() / INDEX_WINDOW_SECS) as usize;
        for w in (0..windows).step_by(7).chain([windows + 3]) {
            assert_eq!(seg.window_range(w), mono.window_range(w), "window {w}");
        }
    }

    #[test]
    fn segmented_from_records_and_day_segments_agree() {
        let trace = small_trace();
        let mut shuffled = trace.sessions().to_vec();
        shuffled.reverse();
        let from_records = SegmentedStore::from_records(
            &shuffled,
            trace.horizon_seconds(),
            trace.population().len(),
        );
        let from_trace = SegmentedStore::from_trace(&trace);
        assert_eq!(from_records, from_trace);
        let reassembled = SegmentedStore::from_day_segments(
            from_trace.segments().to_vec(),
            trace.horizon_seconds(),
            trace.population().len(),
        );
        assert_eq!(reassembled, from_trace);
    }

    #[test]
    fn segmented_empty_and_beyond_horizon_sessions() {
        let empty = SegmentedStore::from_records(&[], 2 * 86_400, 4);
        assert!(empty.is_empty());
        assert_eq!(empty.num_segments(), 2);
        assert_eq!(empty.first_at_or_after(0), 0);
        assert_eq!(empty.window_range(5), 0..0);
        assert_eq!(empty.window_range(1_000), 0..0);

        // A session starting beyond the horizon grows the segment list, as
        // the monolithic window index grows to cover it.
        let trace = small_trace();
        let mut records = vec![trace.sessions()[0]];
        records[0].start = SimTime(3 * 86_400 + 10);
        let seg = SegmentedStore::from_records(&records, 86_400, 10);
        assert_eq!(seg.num_segments(), 4);
        assert_eq!(seg.len(), 1);
        assert_eq!(seg.record(0), records[0]);
        assert_eq!(seg.first_at_or_after(0), 0);
        assert_eq!(seg.first_at_or_after(4 * 86_400), 1);
    }

    #[test]
    fn sort_key_maxima_track_columns() {
        let empty = SessionStore::from_records(&[], 86_400, 4);
        assert_eq!(empty.sort_key_maxima(), (0, 0, 0));

        let trace = small_trace();
        let store = SessionStore::from_trace(&trace);
        let sessions = trace.sessions();
        let expect = (
            sessions.iter().map(|s| s.start.as_secs()).max().unwrap(),
            sessions.iter().map(|s| s.user.0).max().unwrap(),
            sessions.iter().map(|s| s.content.0).max().unwrap(),
        );
        assert_eq!(store.sort_key_maxima(), expect);
    }

    #[test]
    fn cursor_over_subset_respects_subset_order() {
        let trace = small_trace();
        let store = SessionStore::from_trace(&trace);
        let subset: Vec<u32> = (0..store.len() as u32).filter(|i| i % 7 == 0).collect();
        let mut cursor = store.cursor(&subset);
        let mut seen = Vec::new();
        cursor.admit_until(store.horizon_secs(), |i| seen.push(i as u32));
        assert_eq!(seen, subset);
        assert!(cursor.exhausted());
    }
}
