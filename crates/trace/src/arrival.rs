//! Session arrival processes: diurnal shape, weekly shape and broadcast-age
//! decay.
//!
//! Session starts for one content item form a non-homogeneous Poisson
//! process. Its rate factorises into the item's total volume × a per-day
//! weight (catch-up decay after broadcast) × an hour-of-day weight (evening
//! prime time, with a weekend boost).

use serde::{Deserialize, Serialize};

/// Relative viewing intensity per hour of day. The default profile has the
/// catch-up-TV prime-time hump between 19:00 and 23:00.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    weights: [f64; 24],
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        Self::evening_peak()
    }
}

impl DiurnalProfile {
    /// The default evening-peak profile (normalised to sum to 1).
    pub fn evening_peak() -> Self {
        let raw: [f64; 24] = [
            0.55, 0.30, 0.15, 0.08, 0.05, 0.06, 0.12, 0.30, 0.50, 0.60, 0.65, 0.75, // 0-11
            0.90, 0.85, 0.80, 0.85, 1.00, 1.30, 1.80, 2.60, 3.00, 2.80, 1.90, 1.00, // 12-23
        ];
        Self::from_weights(raw).expect("static profile is valid")
    }

    /// A flat profile (uniform across hours) — used by ablations to isolate
    /// the effect of demand concentration.
    pub fn flat() -> Self {
        Self::from_weights([1.0; 24]).expect("static profile is valid")
    }

    /// Builds a profile from 24 non-negative hourly weights (normalised).
    ///
    /// Returns `None` if any weight is negative/non-finite or all are zero.
    pub fn from_weights(raw: [f64; 24]) -> Option<Self> {
        if raw.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut weights = raw;
        for w in &mut weights {
            *w /= total;
        }
        Some(Self { weights })
    }

    /// The normalised weight of hour `h` (0–23).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn weight(&self, hour: u32) -> f64 {
        self.weights[hour as usize]
    }

    /// All 24 normalised weights.
    pub fn weights(&self) -> &[f64; 24] {
        &self.weights
    }

    /// The peak viewing hour.
    pub fn peak_hour(&self) -> u32 {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .map(|(h, _)| h as u32)
            .expect("24 weights")
    }
}

/// Weekend multiplier applied on top of the diurnal profile (catch-up viewing
/// rises at weekends).
pub const WEEKEND_BOOST: f64 = 1.25;

/// Per-day view weight of an item across the traced month, given its
/// broadcast day: catch-up viewing decays exponentially after broadcast with
/// a 6-day half-life on top of a small evergreen floor; days before broadcast
/// get zero. Back-catalogue items (negative broadcast day) decay from before
/// the window, so they look nearly flat.
///
/// Weights are normalised over the `days` traced days; returns `None` when
/// `days == 0` or the item airs after the window's end.
pub fn age_decay_weights(broadcast_day: i32, days: u32) -> Option<Vec<f64>> {
    if days == 0 || broadcast_day >= days as i32 {
        return None;
    }
    const HALF_LIFE_DAYS: f64 = 6.0;
    const EVERGREEN_FLOOR: f64 = 0.04;
    let lambda = std::f64::consts::LN_2 / HALF_LIFE_DAYS;
    let mut weights = Vec::with_capacity(days as usize);
    for d in 0..days as i32 {
        let age = d - broadcast_day;
        let w = if age < 0 {
            0.0
        } else {
            (-lambda * f64::from(age)).exp() + EVERGREEN_FLOOR
        };
        weights.push(w);
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    for w in &mut weights {
        *w /= total;
    }
    Some(weights)
}

/// Normalised per-day view shares: day weights × weekend boost, rescaled to
/// sum to 1 over the window.
///
/// This is the day-level factor of [`window_share`] — hour-of-day weights
/// factor out of the non-homogeneous Poisson rate, so
/// `window_share(w, profile, d, h) == boosted_day_shares(w)[d] * profile.weight(h)`.
/// The generator precomputes this once per item instead of re-summing the
/// boost-weighted normaliser for every `(day, hour)` window.
///
/// Returns an empty vector when the weights sum to zero.
pub fn boosted_day_shares(day_weights: &[f64]) -> Vec<f64> {
    let mut shares: Vec<f64> = day_weights
        .iter()
        .enumerate()
        .map(|(d, w)| {
            let boost = if crate::time::SimTime::from_day_hour(d as u32, 0).is_weekend() {
                WEEKEND_BOOST
            } else {
                1.0
            };
            w * boost
        })
        .collect();
    let total: f64 = shares.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    for s in &mut shares {
        *s /= total;
    }
    shares
}

/// Combines day weights, the diurnal profile and the weekend boost into the
/// expected share of an item's monthly views falling in `(day, hour)`.
///
/// The combined shares over the whole window sum to 1.
pub fn window_share(day_weights: &[f64], profile: &DiurnalProfile, day: u32, hour: u32) -> f64 {
    let base: f64 = day_weights
        .iter()
        .enumerate()
        .map(|(d, w)| {
            let boost = if crate::time::SimTime::from_day_hour(d as u32, 0).is_weekend() {
                WEEKEND_BOOST
            } else {
                1.0
            };
            w * boost
        })
        .sum();
    let day_w = day_weights.get(day as usize).copied().unwrap_or(0.0);
    let boost = if crate::time::SimTime::from_day_hour(day, 0).is_weekend() {
        WEEKEND_BOOST
    } else {
        1.0
    };
    (day_w * boost / base) * profile.weight(hour)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_peaks_in_evening() {
        let p = DiurnalProfile::default();
        let peak = p.peak_hour();
        assert!((19..=22).contains(&peak), "peak at {peak}");
        let total: f64 = p.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Night trough well below the evening peak.
        assert!(p.weight(4) * 10.0 < p.weight(20));
    }

    #[test]
    fn profile_validation() {
        assert!(DiurnalProfile::from_weights([0.0; 24]).is_none());
        let mut bad = [1.0; 24];
        bad[3] = -0.1;
        assert!(DiurnalProfile::from_weights(bad).is_none());
        bad[3] = f64::NAN;
        assert!(DiurnalProfile::from_weights(bad).is_none());
    }

    #[test]
    fn flat_profile_is_uniform() {
        let p = DiurnalProfile::flat();
        for h in 0..24 {
            assert!((p.weight(h) - 1.0 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    fn decay_weights_normalise_and_decay() {
        let w = age_decay_weights(5, 30).unwrap();
        assert_eq!(w.len(), 30);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Zero before broadcast, maximum at broadcast day, decaying after.
        assert_eq!(w[4], 0.0);
        assert!(w[5] > w[6]);
        assert!(w[6] > w[12]);
        // Evergreen floor keeps late days non-zero.
        assert!(w[29] > 0.0);
    }

    #[test]
    fn back_catalogue_is_flat_ish() {
        let w = age_decay_weights(-200, 30).unwrap();
        let (min, max) = w.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
        assert!(
            max / min < 1.5,
            "old items should be nearly flat: {min}..{max}"
        );
    }

    #[test]
    fn decay_rejects_degenerate() {
        assert!(age_decay_weights(0, 0).is_none());
        assert!(age_decay_weights(30, 30).is_none());
        assert!(age_decay_weights(31, 30).is_none());
        // Broadcast on the last day is fine.
        assert!(age_decay_weights(29, 30).is_some());
    }

    #[test]
    fn window_shares_sum_to_one() {
        let day_w = age_decay_weights(3, 30).unwrap();
        let profile = DiurnalProfile::default();
        let mut total = 0.0;
        for d in 0..30 {
            for h in 0..24 {
                total += window_share(&day_w, &profile, d, h);
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn boosted_day_shares_factorise_window_share() {
        let day_w = age_decay_weights(4, 30).unwrap();
        let profile = DiurnalProfile::default();
        let shares = boosted_day_shares(&day_w);
        assert_eq!(shares.len(), 30);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for d in 0..30 {
            for h in [0, 9, 20] {
                let expected = window_share(&day_w, &profile, d, h);
                let got = shares[d as usize] * profile.weight(h);
                assert!(
                    (got - expected).abs() < 1e-15,
                    "day {d} hour {h}: {got} vs {expected}"
                );
            }
        }
        assert!(boosted_day_shares(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn weekend_hours_outweigh_weekdays() {
        let day_w = age_decay_weights(-100, 28).unwrap(); // flat item, 4 whole weeks
        let profile = DiurnalProfile::flat();
        // Day 0 is a Sunday, day 2 a Tuesday; same hour.
        let sunday = window_share(&day_w, &profile, 0, 20);
        let tuesday = window_share(&day_w, &profile, 2, 20);
        assert!(sunday > tuesday);
        assert!((sunday / tuesday - WEEKEND_BOOST).abs() < 0.02);
    }
}
