//! The **metro** preset: several city-scale workloads composed into one
//! metropolitan trace with disjoint per-city id ranges.
//!
//! The paper's consume-local economics are evaluated on one city (London,
//! Table I), but the ROADMAP north-star — "millions of users, heavy
//! traffic" — asks for metropolitan scale: multiple London-sized cities
//! served by the same five-ISP registry. [`MetroConfig`] describes such a
//! world as `cities × one TraceConfig`; [`MetroTrace`] instantiates one
//! deterministic [`TraceGenerator`] per city (each with its own derived
//! seed) and offsets every city's user and content ids by a fixed stride so
//! the composed id spaces are **disjoint and monotone in the city index**:
//!
//! ```text
//! user    id = city_user    + city × city.users
//! content id = city_content + city × city.catalogue_size
//! ```
//!
//! Two consequences the engine layers build on:
//!
//! * **Sharding by city is sharding by swarm.** Swarm keys start with the
//!   content id, so disjoint content ranges mean disjoint swarm key ranges
//!   — each city can be simulated as an independent shard and the per-shard
//!   ledgers merged commutatively (`consume-local-sim`'s
//!   `merge_shard_reports`), byte-identical to simulating the union stream.
//! * **The union sorts on the fast path.** A five-city London-scale metro
//!   reaches 18 M users (25 bits) and 120 K items (17 bits) over a 31-day
//!   horizon (22 bits of start seconds) — exactly the shapes the measured
//!   [`SortKeyLayout`](crate::generator::SortKeyLayout) was widened for.
//!   The old fixed 59-bit packing capped at 2²² users and would have pushed
//!   every city past the first onto the slow wide sort.
//!
//! Peak memory follows the per-day contract of
//! [`SegmentStream`]: a [`MetroStream`]
//! holds one day of each participating city at a time, never a whole city.
//!
//! # Example
//!
//! ```
//! use consume_local_trace::metro::{MetroConfig, MetroTrace};
//!
//! # fn main() -> Result<(), consume_local_trace::TraceError> {
//! // A tiny three-city metro; cities are full metros scaled way down.
//! let config = MetroConfig::five_city().with_cities(3).city_scaled(0.0005)?;
//! let metro = MetroTrace::new(config, 2018)?;
//! let mut union = metro.stream()?;
//! let day0 = union.next_segment().expect("three cities, one day");
//! assert!(!day0.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::generator::{
    merge_session_batches, SegmentStream, TraceConfig, TraceError, TraceGenerator,
};
use crate::session::SessionRecord;
use crate::store::SessionStore;

/// A metropolitan workload: `cities` statistically identical city traces
/// (each generated from its own derived seed) sharing one ISP registry,
/// with disjoint user and content id ranges per city.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroConfig {
    /// Number of cities composed into the metro (≥ 1).
    pub cities: u32,
    /// The per-city workload. Every city uses this exact configuration —
    /// same registry, same horizon — and differs only in its derived seed
    /// and id offsets.
    pub city: TraceConfig,
}

impl MetroConfig {
    /// The headline metro preset: **five London-scale cities** (5 ×
    /// [`TraceConfig::london_sep2013`] = 18 M users, 117.5 M target
    /// sessions, 120 K items over 30 days).
    pub fn five_city() -> Self {
        Self {
            cities: 5,
            city: TraceConfig::london_sep2013(),
        }
    }

    /// The benchmark preset past the old 4 M-user ceiling: five cities at
    /// 0.6 × London scale — **10.8 M users** (> 2²³), 70.5 M target
    /// sessions, 72 K items. Small enough to simulate within the
    /// full-scale-London RSS envelope when sharded city-by-city, large
    /// enough that the old 59-bit sort key could not have packed it.
    pub fn ten_million() -> Self {
        Self {
            cities: 5,
            city: TraceConfig::london_sep2013()
                .scaled(0.6)
                .expect("0.6 is a valid scale"),
        }
    }

    /// Replaces the city count (builder style).
    pub fn with_cities(mut self, cities: u32) -> Self {
        self.cities = cities;
        self
    }

    /// Scales every city by `scale ∈ (0, 1]` (see [`TraceConfig::scaled`]).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when `scale` is outside `(0, 1]`.
    pub fn city_scaled(mut self, scale: f64) -> Result<Self, TraceError> {
        self.city = self.city.scaled(scale)?;
        Ok(self)
    }

    /// Validates the composition: at least one city, a valid city config,
    /// and composed id spaces that fit `u32`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`TraceError`].
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.cities == 0 {
            return Err(TraceError::BadConfig {
                field: "cities",
                value: 0.0,
            });
        }
        self.city.validate()?;
        let users = u64::from(self.cities) * u64::from(self.city.users);
        if users > u64::from(u32::MAX) + 1 {
            return Err(TraceError::BadConfig {
                field: "metro_users",
                value: users as f64,
            });
        }
        let items = u64::from(self.cities) * u64::from(self.city.catalogue_size);
        if items > u64::from(u32::MAX) + 1 {
            return Err(TraceError::BadConfig {
                field: "metro_catalogue",
                value: items as f64,
            });
        }
        Ok(())
    }

    /// Total metro population across all cities.
    pub fn users(&self) -> u64 {
        u64::from(self.cities) * u64::from(self.city.users)
    }

    /// Total metro catalogue size across all cities.
    pub fn catalogue_size(&self) -> u64 {
        u64::from(self.cities) * u64::from(self.city.catalogue_size)
    }

    /// The traced horizon in seconds (shared by every city).
    pub fn horizon_seconds(&self) -> u64 {
        self.city.horizon_seconds()
    }

    /// First user id of `city` (ids are `offset .. offset + city.users`).
    pub fn user_offset(&self, city: u32) -> u32 {
        city * self.city.users
    }

    /// First content id of `city`.
    pub fn content_offset(&self, city: u32) -> u32 {
        city * self.city.catalogue_size
    }

    /// Upper bounds on the session sort-key maxima any trace of this config
    /// can reach, as `(max start seconds, max user id, max content id)` —
    /// the tuple [`SortKeyLayout::from_maxima`] and
    /// [`sort_key_fallback_required`] consume. Useful to check a metro
    /// shape sorts on the packed fast path *without* generating it.
    ///
    /// [`SortKeyLayout::from_maxima`]: crate::generator::SortKeyLayout::from_maxima
    /// [`sort_key_fallback_required`]: crate::generator::sort_key_fallback_required
    pub fn sort_key_maxima(&self) -> (u64, u32, u32) {
        (
            self.horizon_seconds().saturating_sub(1),
            (self.users().saturating_sub(1)) as u32,
            (self.catalogue_size().saturating_sub(1)) as u32,
        )
    }
}

/// Derives city `city`'s generator seed from the metro seed: a
/// splitmix64-style finalizer over the stride-mixed index, so city streams
/// are statistically independent while the whole metro stays a pure
/// function of one seed.
fn city_seed(base: u64, city: u32) -> u64 {
    let mut z = base.wrapping_add(
        u64::from(city)
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An instantiated metro: one deterministic [`TraceGenerator`] per city.
/// The generators are owned here so the borrowing day streams
/// ([`MetroStream`]) can be opened any number of times — union or per-city
/// shards — over one world.
#[derive(Debug)]
pub struct MetroTrace {
    config: MetroConfig,
    generators: Vec<TraceGenerator>,
    workers: usize,
}

impl MetroTrace {
    /// Builds the per-city generators from a validated config; city `c`
    /// generates from seed `city_seed(seed, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the configuration fails
    /// [`MetroConfig::validate`].
    pub fn new(config: MetroConfig, seed: u64) -> Result<Self, TraceError> {
        config.validate()?;
        let generators = (0..config.cities)
            .map(|c| TraceGenerator::new(config.city.clone(), city_seed(seed, c)))
            .collect();
        Ok(Self {
            config,
            generators,
            workers: 1,
        })
    }

    /// Fans per-city synthesis and the union merge across up to `workers`
    /// threads (clamped to at least one); emitted segments are
    /// byte-identical for every worker count, exactly as
    /// [`TraceGenerator::workers`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self.generators = self
            .generators
            .into_iter()
            .map(|g| g.workers(workers))
            .collect();
        self
    }

    /// The metro configuration.
    pub fn config(&self) -> &MetroConfig {
        &self.config
    }

    /// Total metro population (every stream reports this, union or shard,
    /// so per-shard reports align index-for-index).
    pub fn population_len(&self) -> usize {
        self.config.users() as usize
    }

    /// The replay horizon in seconds.
    pub fn horizon_secs(&self) -> u64 {
        self.config.horizon_seconds()
    }

    /// Opens the **union stream**: every city's day segments merged into
    /// one canonical-order segment per day. This is the unsharded reference
    /// the sharded runs are pinned byte-identical against.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the city configuration fails validation.
    pub fn stream(&self) -> Result<MetroStream<'_>, TraceError> {
        self.stream_of(0..self.config.cities)
    }

    /// Opens one **shard stream per city**, in city order. Each shard
    /// reports the *metro* population and horizon, so per-shard
    /// `SimReport`s (in `consume-local-sim`) have aligned user tables and
    /// merge commutatively.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the city configuration fails validation.
    pub fn shard_streams(&self) -> Result<Vec<MetroStream<'_>>, TraceError> {
        (0..self.config.cities)
            .map(|c| self.stream_of(c..c + 1))
            .collect()
    }

    /// Opens a stream over a contiguous city range.
    fn stream_of(&self, cities: std::ops::Range<u32>) -> Result<MetroStream<'_>, TraceError> {
        let lanes = cities
            .map(|c| {
                Ok(CityLane {
                    stream: self.generators[c as usize].segments()?,
                    user_offset: self.config.user_offset(c),
                    content_offset: self.config.content_offset(c),
                })
            })
            .collect::<Result<Vec<_>, TraceError>>()?;
        Ok(MetroStream {
            lanes,
            days: self.config.city.days,
            horizon_secs: self.horizon_secs(),
            population_len: self.population_len(),
            workers: self.workers,
            next_day: 0,
        })
    }
}

/// One city's resumable day stream plus its id offsets.
struct CityLane<'m> {
    stream: SegmentStream<'m>,
    user_offset: u32,
    content_offset: u32,
}

/// A bounded-memory day stream over one or more metro cities: each
/// [`MetroStream::next_segment`] call emits one day of every participating
/// city, id-offset and merged into canonical `(start, user, content)` order.
///
/// Offsetting each city's ids by a constant preserves the city's canonical
/// order, so the per-city day segments are valid pre-sorted batches for
/// [`merge_session_batches`] — the union merge runs on the same packed
/// fast path the generator uses, and the emitted segment is byte-identical
/// for any worker count. Only the participating cities' current day is ever
/// resident.
pub struct MetroStream<'m> {
    lanes: Vec<CityLane<'m>>,
    days: u32,
    horizon_secs: u64,
    population_len: usize,
    workers: usize,
    next_day: u32,
}

impl std::fmt::Debug for MetroStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetroStream")
            .field("cities", &self.lanes.len())
            .field("next_day", &self.next_day)
            .field("days", &self.days)
            .finish_non_exhaustive()
    }
}

impl MetroStream<'_> {
    /// Synthesises, offsets and merges the next day across every
    /// participating city; `None` once the horizon is exhausted.
    pub fn next_segment(&mut self) -> Option<SessionStore> {
        if self.next_day >= self.days {
            return None;
        }
        self.next_day += 1;
        let batches: Vec<Vec<SessionRecord>> = self
            .lanes
            .iter_mut()
            .map(|lane| {
                let segment = lane
                    .stream
                    .next_segment()
                    .expect("city streams share the metro day count");
                let mut records = segment.to_records();
                for r in &mut records {
                    r.user.0 += lane.user_offset;
                    r.content.0 += lane.content_offset;
                }
                records
            })
            .collect();
        let merged = merge_session_batches(&batches, self.workers);
        Some(SessionStore::from_sorted(
            &merged,
            self.horizon_secs,
            self.population_len,
        ))
    }

    /// The day index the next [`MetroStream::next_segment`] call emits.
    pub fn next_day(&self) -> u32 {
        self.next_day
    }

    /// Number of cities this stream spans (1 for a shard, `cities` for the
    /// union).
    pub fn cities(&self) -> usize {
        self.lanes.len()
    }

    /// The replay horizon in seconds.
    pub fn horizon_secs(&self) -> u64 {
        self.horizon_secs
    }

    /// The metro population size every emitted segment indexes into.
    pub fn population_len(&self) -> usize {
        self.population_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{sort_key_fallback_required, sort_sessions, SortKeyLayout};

    fn tiny() -> MetroConfig {
        MetroConfig::five_city()
            .with_cities(3)
            .city_scaled(0.0005)
            .unwrap()
    }

    #[test]
    fn validation_rejects_degenerate_compositions() {
        assert!(MetroConfig::five_city().with_cities(0).validate().is_err());
        // Composed id spaces must fit u32.
        let mut huge = MetroConfig::five_city();
        huge.cities = 4_000;
        assert!(huge.validate().is_err());
        assert!(tiny().validate().is_ok());
        assert!(MetroConfig::five_city().validate().is_ok());
        assert!(MetroConfig::ten_million().validate().is_ok());
    }

    #[test]
    fn presets_break_the_old_ceiling_on_the_fast_path() {
        // Both metro presets exceed the old 2²² user bound …
        assert!(MetroConfig::ten_million().users() > 10_000_000);
        assert!(MetroConfig::five_city().users() == 18_000_000);
        for config in [MetroConfig::ten_million(), MetroConfig::five_city()] {
            let maxima = config.sort_key_maxima();
            assert!(u64::from(maxima.1) >= 1 << 22, "past the old user bound");
            // … yet still pack into the measured 64-bit layout.
            assert!(
                !sort_key_fallback_required(maxima),
                "metro presets must sort on the packed fast path: {maxima:?}"
            );
            assert!(SortKeyLayout::from_maxima(maxima).is_some());
        }
    }

    #[test]
    fn id_offsets_are_disjoint_and_monotone() {
        let config = tiny();
        for c in 0..config.cities {
            assert_eq!(config.user_offset(c), c * config.city.users);
            assert_eq!(config.content_offset(c), c * config.city.catalogue_size);
        }
        let metro = MetroTrace::new(config.clone(), 7).unwrap();
        let mut union = metro.stream().unwrap();
        let mut seen_users = vec![false; metro.population_len()];
        while let Some(segment) = union.next_segment() {
            for i in 0..segment.len() {
                let r = segment.record(i);
                let city = r.user.0 / config.city.users;
                assert_eq!(
                    r.content.0 / config.city.catalogue_size,
                    city,
                    "user and content must agree on the city"
                );
                assert!(city < config.cities);
                seen_users[r.user.0 as usize] = true;
            }
        }
        // Every city contributed sessions.
        for c in 0..config.cities {
            let lo = config.user_offset(c) as usize;
            let hi = lo + config.city.users as usize;
            assert!(
                seen_users[lo..hi].iter().any(|&b| b),
                "city {c} contributed no sessions"
            );
        }
    }

    #[test]
    fn union_stream_equals_sorted_concatenation_of_shards() {
        let metro = MetroTrace::new(tiny(), 99).unwrap();
        let mut union = metro.stream().unwrap();
        let mut shards = metro.shard_streams().unwrap();
        assert_eq!(shards.len(), 3);
        loop {
            let day = union.next_segment();
            let shard_days: Vec<Option<SessionStore>> =
                shards.iter_mut().map(|s| s.next_segment()).collect();
            let Some(day) = day else {
                assert!(shard_days.iter().all(Option::is_none));
                break;
            };
            let mut concat: Vec<SessionRecord> = shard_days
                .iter()
                .flat_map(|s| s.as_ref().expect("shards share the day count").to_records())
                .collect();
            sort_sessions(&mut concat);
            assert_eq!(
                day.to_records(),
                concat,
                "union day must be the sorted union"
            );
            assert_eq!(day.population_len(), metro.population_len());
            assert_eq!(day.horizon_secs(), metro.horizon_secs());
        }
    }

    #[test]
    fn metro_is_deterministic_across_worker_counts() {
        let one = MetroTrace::new(tiny(), 41).unwrap();
        let mut a = one.stream().unwrap();
        let four = MetroTrace::new(tiny(), 41).unwrap().workers(4);
        let mut b = four.stream().unwrap();
        while let Some(day) = a.next_segment() {
            assert_eq!(Some(day), b.next_segment());
        }
        assert!(b.next_segment().is_none());
    }

    #[test]
    fn city_seeds_differ_and_are_stable() {
        let seeds: Vec<u64> = (0..5).map(|c| city_seed(2018, c)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "derived city seeds collide");
        assert_eq!(
            seeds,
            (0..5).map(|c| city_seed(2018, c)).collect::<Vec<_>>()
        );
    }
}
