//! A small M/M/∞ event simulator.
//!
//! Validates the analytical capacity model (Section III-B of the paper):
//! Poisson arrivals at rate `r`, exponential viewing times with mean `u`,
//! infinitely many "servers" (peers never queue). The theory says occupancy
//! is Poisson with mean `c = r·u` and the idle probability is `e^(−c)`.

use rand::Rng;

use consume_local_stats::dist::{DistError, Distribution, Exponential};

/// Results of one M/M/∞ run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Time-averaged number of concurrent viewers (the empirical capacity).
    pub mean_occupancy: f64,
    /// Fraction of time the swarm was empty (theory: `e^(−c)`).
    pub idle_fraction: f64,
    /// Fraction of time with exactly one viewer (no sharing possible).
    pub lonely_fraction: f64,
    /// Number of arrivals processed.
    pub arrivals: u64,
}

/// An M/M/∞ swarm occupancy simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmInfQueue {
    arrival_rate: f64,
    mean_duration: f64,
}

impl MmInfQueue {
    /// Creates a queue with Poisson arrival rate `arrival_rate` (per second)
    /// and mean session duration `mean_duration` (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] when either parameter is not positive and
    /// finite.
    pub fn new(arrival_rate: f64, mean_duration: f64) -> Result<Self, DistError> {
        // Validate through the distribution constructors.
        Exponential::new(arrival_rate)?;
        Exponential::with_mean(mean_duration)?;
        Ok(Self {
            arrival_rate,
            mean_duration,
        })
    }

    /// The theoretical capacity `c = r·u`.
    pub fn capacity(&self) -> f64 {
        self.arrival_rate * self.mean_duration
    }

    /// Simulates `horizon` seconds of swarm dynamics and returns
    /// time-averaged statistics.
    ///
    /// Uses a continuous-time event loop (arrival/departure events), so the
    /// averages are exact for the sampled trajectory rather than
    /// window-discretised.
    pub fn simulate<R: Rng + ?Sized>(&self, horizon: f64, rng: &mut R) -> QueueStats {
        if !horizon.is_finite() || horizon <= 0.0 {
            return QueueStats {
                mean_occupancy: 0.0,
                idle_fraction: 1.0,
                lonely_fraction: 0.0,
                arrivals: 0,
            };
        }
        let inter = Exponential::new(self.arrival_rate).expect("validated");
        let service = Exponential::with_mean(self.mean_duration).expect("validated");

        // Min-heap of departure times.
        let mut departures = std::collections::BinaryHeap::new();
        let mut t = 0.0f64;
        let mut next_arrival = inter.sample(rng);
        let mut occupancy = 0u64;
        let mut arrivals = 0u64;
        let mut weighted_occupancy = 0.0f64;
        let mut idle_time = 0.0f64;
        let mut lonely_time = 0.0f64;

        while t < horizon {
            let next_departure = departures
                .peek()
                .map(|std::cmp::Reverse(OrdF64(d))| *d)
                .unwrap_or(f64::INFINITY);
            let next_event = next_arrival.min(next_departure).min(horizon);
            let dt = next_event - t;
            weighted_occupancy += occupancy as f64 * dt;
            match occupancy {
                0 => idle_time += dt,
                1 => lonely_time += dt,
                _ => {}
            }
            t = next_event;
            if t >= horizon {
                break;
            }
            if next_arrival <= next_departure {
                occupancy += 1;
                arrivals += 1;
                departures.push(std::cmp::Reverse(OrdF64(t + service.sample(rng))));
                next_arrival = t + inter.sample(rng);
            } else {
                departures.pop();
                occupancy -= 1;
            }
        }

        QueueStats {
            mean_occupancy: weighted_occupancy / horizon,
            idle_fraction: idle_time / horizon,
            lonely_fraction: lonely_time / horizon,
            arrivals,
        }
    }
}

/// Total-order wrapper for finite f64 event times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("event times are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_stats::rng::SeedDerive;

    #[test]
    fn rejects_bad_params() {
        assert!(MmInfQueue::new(0.0, 10.0).is_err());
        assert!(MmInfQueue::new(1.0, -1.0).is_err());
        assert!(MmInfQueue::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn occupancy_matches_littles_law() {
        let mut rng = SeedDerive::new(42).stream("mminf");
        for &(r, u) in &[(0.01, 100.0), (0.1, 20.0), (1.0, 5.0)] {
            let q = MmInfQueue::new(r, u).unwrap();
            let stats = q.simulate(500_000.0, &mut rng);
            let c = q.capacity();
            assert!(
                (stats.mean_occupancy / c - 1.0).abs() < 0.05,
                "r={r} u={u}: occupancy {} vs c={c}",
                stats.mean_occupancy
            );
        }
    }

    #[test]
    fn idle_fraction_matches_poisson_zero() {
        let mut rng = SeedDerive::new(7).stream("mminf-idle");
        let q = MmInfQueue::new(0.05, 30.0).unwrap(); // c = 1.5
        let stats = q.simulate(1_000_000.0, &mut rng);
        let expected = (-q.capacity()).exp();
        assert!(
            (stats.idle_fraction - expected).abs() < 0.02,
            "idle {} vs e^-c {expected}",
            stats.idle_fraction
        );
        // P(L = 1) = c·e^(−c).
        let lonely = q.capacity() * expected;
        assert!(
            (stats.lonely_fraction - lonely).abs() < 0.02,
            "lonely {} vs {lonely}",
            stats.lonely_fraction
        );
    }

    #[test]
    fn arrival_count_matches_rate() {
        let mut rng = SeedDerive::new(9).stream("mminf-arrivals");
        let q = MmInfQueue::new(0.2, 10.0).unwrap();
        let horizon = 200_000.0;
        let stats = q.simulate(horizon, &mut rng);
        let expected = 0.2 * horizon;
        assert!(
            (stats.arrivals as f64 / expected - 1.0).abs() < 0.03,
            "arrivals {} vs {expected}",
            stats.arrivals
        );
    }

    #[test]
    fn zero_horizon_is_empty() {
        let mut rng = SeedDerive::new(1).stream("x");
        let q = MmInfQueue::new(1.0, 1.0).unwrap();
        let stats = q.simulate(0.0, &mut rng);
        assert_eq!(stats.arrivals, 0);
    }
}
