//! Per-window peer matching.
//!
//! Within one simulation window a sub-swarm has `L` active peers. The first
//! (earliest-joined) peer is the **fresh fetcher**: it streams the window's
//! chunk from the CDN (the paper's Eq. 2 keeps one copy per window on the
//! server). Every other peer may receive up to its per-window *need* from
//! fellow peers, each of whom can upload at most its per-window *budget*; any
//! unmet need falls back to the CDN.
//!
//! The default [`HierarchicalMatcher`] is the paper's closest-first managed
//! swarm: it drains needs against budgets within the same exchange point
//! first, then within the same PoP, then across the core. [`RandomMatcher`]
//! ignores distance (the ablation baseline) but accounts transfers at the
//! true layer of each matched pair.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use consume_local_topology::{IspId, Layer, UserLocation};

/// One active peer in a window: enough identity to compute path closeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Peer {
    /// The peer's ISP (peers of different ISPs always meet at the core).
    pub isp: IspId,
    /// The peer's attachment point within its ISP's tree.
    pub location: UserLocation,
}

/// The layer at which two peers' network paths meet.
///
/// Within one ISP this is the tree closeness; across ISPs traffic crosses
/// the core (peering happens behind both ISPs' metro networks).
pub fn closeness(a: &Peer, b: &Peer) -> Layer {
    if a.isp != b.isp {
        Layer::Core
    } else if a.location.exchange() == b.location.exchange() {
        Layer::ExchangePoint
    } else if a.location.pop() == b.location.pop() {
        Layer::PointOfPresence
    } else {
        Layer::Core
    }
}

/// Per-peer transfer attribution for one window (bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerTransfer {
    /// Received from other peers.
    pub from_peers: u64,
    /// Received from the CDN (fresh copy or unmet need).
    pub from_server: u64,
    /// Uploaded to other peers.
    pub uploaded: u64,
    /// Uploads split by [`Layer::index`] (sums to `uploaded`). Fault
    /// injection uses this to reassign a defecting uploader's bytes to the
    /// exact network layers they would have crossed.
    pub uploaded_by_layer: [u64; 3],
}

/// Outcome of matching one window.
///
/// Reusable: engines keep one outcome alive across windows and refill it
/// through [`Matcher::match_window_into`], so the per-peer attribution vector
/// is allocated once per swarm instead of once per window.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchOutcome {
    /// Bytes served by the CDN.
    pub server_bytes: u64,
    /// Bytes exchanged between peers, indexed by [`Layer::index`].
    pub peer_bytes_by_layer: [u64; 3],
    /// Per-peer attribution, parallel to the input peer slice.
    pub per_peer: Vec<PeerTransfer>,
}

impl MatchOutcome {
    /// Total peer-to-peer bytes across layers.
    pub fn peer_bytes(&self) -> u64 {
        self.peer_bytes_by_layer.iter().sum()
    }

    /// Total delivered bytes (server + peers).
    pub fn delivered_bytes(&self) -> u64 {
        self.server_bytes + self.peer_bytes()
    }
}

/// A per-window peer-matching strategy.
///
/// `needs[i]` is the maximum bytes peer `i` may *receive from peers* this
/// window; `budgets[i]` the maximum it may upload. `fetcher` designates the
/// fresh-copy peer: its full window demand is served by the CDN and its
/// `needs` entry is ignored. The remaining demand of every peer — its
/// residual need after matching — falls back to the CDN, so
/// `delivered = Σ demand` always holds for callers that set
/// `needs[i] = demand_i` caps; the engine instead passes
/// `needs[i] = min(q_i, demand_i)` and adds the peer-ineligible remainder
/// `demand_i − needs[i]` to the server itself (see the sim crate).
pub trait Matcher {
    /// Matches one window into a caller-owned outcome, overwriting whatever
    /// it held. This is the engine's hot-path entry point: a reused outcome
    /// plus the matcher's internal scratch make a window allocation-free
    /// once buffers have grown to the swarm's peak peer count.
    ///
    /// `peers`, `needs` and `budgets` must have equal lengths and
    /// `fetcher < peers.len()`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on length mismatches or an out-of-range
    /// `fetcher`.
    fn match_window_into(
        &mut self,
        peers: &[Peer],
        needs: &[u64],
        budgets: &[u64],
        fetcher: usize,
        out: &mut MatchOutcome,
    );

    /// Like [`Matcher::match_window_into`], with a caller-supplied hint that
    /// `peers` is the **same sequence** (same peers, same order, same
    /// `fetcher`) as this matcher's previous window. Needs and budgets may
    /// still differ — only *peer-derived* scratch (e.g. locality grouping)
    /// may be reused, so the outcome must be identical to the unhinted call.
    ///
    /// The engine's columnar window loop knows exactly when its active set
    /// changed (admissions/retirements drive its cached totals), which is
    /// what makes this hint free to produce; the default implementation
    /// ignores it.
    ///
    /// # Panics
    ///
    /// As [`Matcher::match_window_into`].
    fn match_window_into_hinted(
        &mut self,
        peers: &[Peer],
        needs: &[u64],
        budgets: &[u64],
        fetcher: usize,
        peers_unchanged: bool,
        out: &mut MatchOutcome,
    ) {
        let _ = peers_unchanged;
        self.match_window_into(peers, needs, budgets, fetcher, out);
    }

    /// Advances per-window matcher state past `count` consecutive
    /// **single-peer** windows without matching them.
    ///
    /// A lone peer is its window's fetcher, so such a window can produce no
    /// transfers and a trivial outcome — engines account runs of them in
    /// bulk (they dominate tail swarms) and call this instead of `count`
    /// single-peer [`Matcher::match_window_into`] calls. Implementations
    /// must leave any window-indexed state (upload rotation, RNG
    /// consumption) **exactly** where those `count` calls would have: the
    /// default no-op is correct for matchers whose single-peer windows touch
    /// no state (e.g. [`RandomMatcher`], whose length-≤1 shuffles draw
    /// nothing); [`HierarchicalMatcher`] advances its rotation counter.
    fn note_solo_windows(&mut self, count: u64) {
        let _ = count;
    }

    /// Captures the matcher's **window-indexed** state as a single word, for
    /// inclusion in an engine checkpoint.
    ///
    /// Scratch buffers (grouping, work vectors) are excluded: they are
    /// rebuilt on the next window and never affect outcomes (pinned by the
    /// truthful-hint byte-identity tests). Only state that advances with the
    /// window stream needs to survive a restore — the rotation counter for
    /// [`HierarchicalMatcher`], the RNG draw position for [`RandomMatcher`].
    /// Stateless matchers keep the default `0`.
    fn checkpoint_word(&self) -> u64 {
        0
    }

    /// Restores the state captured by [`Matcher::checkpoint_word`] into a
    /// freshly built matcher (same kind, same seed).
    ///
    /// After this call the matcher must produce byte-identical outcomes to
    /// one that lived through every window the word accounts for.
    fn restore_word(&mut self, word: u64) {
        let _ = word;
    }

    /// Matches one window, returning a fresh outcome (convenience wrapper
    /// over [`Matcher::match_window_into`]).
    ///
    /// # Panics
    ///
    /// Implementations may panic on length mismatches or an out-of-range
    /// `fetcher`.
    fn match_window(
        &mut self,
        peers: &[Peer],
        needs: &[u64],
        budgets: &[u64],
        fetcher: usize,
    ) -> MatchOutcome {
        let mut out = MatchOutcome::default();
        self.match_window_into(peers, needs, budgets, fetcher, &mut out);
        out
    }
}

/// Which matcher to instantiate (serialisable configuration surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MatcherKind {
    /// Closest-first managed matching (paper behaviour).
    #[default]
    Hierarchical,
    /// Locality-oblivious random matching (ablation baseline).
    Random,
}

impl MatcherKind {
    /// Instantiates the matcher; `seed` only affects [`RandomMatcher`].
    pub fn build(self, seed: u64) -> Box<dyn Matcher + Send> {
        match self {
            MatcherKind::Hierarchical => Box::new(HierarchicalMatcher::new()),
            MatcherKind::Random => Box::new(RandomMatcher::new(seed)),
        }
    }
}

/// Convenience: uniform per-peer `(needs, budgets)` for a window, as used
/// for the paper's bitrate-split swarms where every peer shares one bitrate.
///
/// `demand` is the per-peer window demand `β·Δτ` and `budget` the per-peer
/// upload allowance `q·Δτ`; needs are capped at `min(q, β)·Δτ` per the
/// model's Eq. 2.
pub fn uniform_window(n: usize, demand: u64, budget: u64) -> (Vec<u64>, Vec<u64>) {
    (vec![demand.min(budget); n], vec![budget; n])
}

/// The paper's closest-first managed matcher.
///
/// Upload assignment rotates across windows: the uploader scan within each
/// group starts at a position that advances every window, so over a
/// session's lifetime the upload burden — and hence the carbon credit — is
/// spread evenly across a swarm's members, as a managed coordinator would
/// do. The rotation is part of the matcher's state, which is why engines
/// construct one matcher per sub-swarm.
///
/// Grouping uses a **bucket index**: each peer's `(ISP, PoP, exchange)`
/// coordinates are packed into one integer key, and a single sort of the
/// peer indices by that key yields both grouping passes — same-exchange
/// peers form runs nested inside same-PoP runs, because an exchange point
/// determines its parent PoP (the tree invariant of
/// [`consume_local_topology::UserLocation`]). The keys, the
/// order and the working need/budget vectors are scratch buffers owned by
/// the matcher, so a window performs no allocation once they have grown to
/// the swarm's peak peer count.
///
/// The keys and their sorted order depend only on the *peer sequence*, not
/// on needs or budgets, so when the caller passes the peers-unchanged hint
/// ([`Matcher::match_window_into_hinted`]) the matcher reuses the previous
/// window's grouping outright — in a stable swarm the per-window
/// `O(L log L)` sort disappears and only the linear drain remains.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalMatcher {
    windows_matched: u64,
    keys: Vec<u128>,
    /// Peer indices sorted by `keys` — reusable across windows with an
    /// unchanged peer sequence.
    order: Vec<u32>,
    /// Identity order for the core pass (kept separate so the sorted
    /// `order` survives the window).
    core_order: Vec<u32>,
    /// Whether `keys`/`order` describe the previous call's peer sequence
    /// (they never do before the first call).
    grouping_built: bool,
    work: WorkBuffers,
}

impl HierarchicalMatcher {
    /// Creates a matcher with the rotation counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Bucket key: ISP, then parent PoP, then exchange, then peer index. Equal
/// `(isp, pop, exchange)` prefixes tie-break on the index, so sorting by the
/// packed key is exactly a stable sort on the location coordinates.
fn bucket_key(p: &Peer, index: usize) -> u128 {
    (u128::from(p.isp.0) << 96)
        | (u128::from(p.location.pop().0) << 64)
        | (u128::from(p.location.exchange().0) << 32)
        | index as u128
}

impl Matcher for HierarchicalMatcher {
    fn match_window_into(
        &mut self,
        peers: &[Peer],
        needs: &[u64],
        budgets: &[u64],
        fetcher: usize,
        out: &mut MatchOutcome,
    ) {
        self.match_window_into_hinted(peers, needs, budgets, fetcher, false, out);
    }

    fn match_window_into_hinted(
        &mut self,
        peers: &[Peer],
        needs: &[u64],
        budgets: &[u64],
        fetcher: usize,
        peers_unchanged: bool,
        out: &mut MatchOutcome,
    ) {
        validate_inputs(peers, needs, budgets, fetcher);
        let n = peers.len();
        let rotation = self.windows_matched as usize;
        self.windows_matched += 1;
        let mut state = MatchState::begin(&mut self.work, needs, budgets, fetcher, rotation, out);

        // One sort serves both locality passes (see the type-level docs) —
        // and both keys and order depend only on the peer sequence, so a
        // truthful peers-unchanged hint reuses last window's sort verbatim.
        if !(peers_unchanged && self.grouping_built && self.keys.len() == n) {
            self.keys.clear();
            self.keys
                .extend(peers.iter().enumerate().map(|(i, p)| bucket_key(p, i)));
            self.order.clear();
            self.order.extend(0..n as u32);
            let keys = &self.keys;
            self.order.sort_unstable_by_key(|&i| keys[i as usize]);
            self.grouping_built = true;
        }
        let keys = &self.keys;

        // Pass 1: within exchange points — runs of equal (isp, pop, exchange).
        state.drain_runs(&self.order, keys, 32, Layer::ExchangePoint);

        // Pass 2: within PoPs — runs of equal (isp, pop).
        if !state.done() {
            state.drain_runs(&self.order, keys, 64, Layer::PointOfPresence);
        }

        // Pass 3: anywhere (core), in peer-index order.
        if !state.done() {
            self.core_order.clear();
            self.core_order.extend(0..n as u32);
            state.drain_one_group(&self.core_order, Layer::Core);
        }

        state.finish();
    }

    fn note_solo_windows(&mut self, count: u64) {
        // The rotation is the only per-window state; a single-peer window's
        // drains never read it (no group reaches two members), so advancing
        // the counter is all `count` real calls would have done.
        self.windows_matched += count;
    }

    fn checkpoint_word(&self) -> u64 {
        self.windows_matched
    }

    fn restore_word(&mut self, word: u64) {
        self.windows_matched = word;
        // The grouping scratch describes no window of the restored run; the
        // next call rebuilds it (outcome-identical per the hint contract).
        self.grouping_built = false;
    }
}

/// An [`rand::RngCore`] wrapper that counts generator advances.
///
/// Every sampling path of the `rand` surface this workspace uses —
/// `next_u32`'s default, `gen_range`, `shuffle` — funnels through
/// `next_u64`, so the draw count alone pins the stream position: reseeding
/// from the original seed and discarding that many draws reproduces the
/// stream exactly. This is what makes a seeded RNG checkpointable without
/// serialising (private) generator internals.
#[derive(Debug)]
struct CountingRng {
    inner: StdRng,
    draws: u64,
}

impl CountingRng {
    fn seeded(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }
}

impl rand::RngCore for CountingRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// Locality-oblivious matcher: uploads are assigned in a seeded random order
/// regardless of distance. Transfers are still *accounted* at the matched
/// pair's true closeness layer, so the energy penalty of ignoring locality is
/// visible in the results (ablation A1).
#[derive(Debug)]
pub struct RandomMatcher {
    seed: u64,
    rng: CountingRng,
    uploaders: Vec<u32>,
    downloaders: Vec<u32>,
    work: WorkBuffers,
}

impl RandomMatcher {
    /// Creates a random matcher with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: CountingRng::seeded(seed),
            uploaders: Vec::new(),
            downloaders: Vec::new(),
            work: WorkBuffers::default(),
        }
    }
}

impl Matcher for RandomMatcher {
    fn match_window_into(
        &mut self,
        peers: &[Peer],
        needs: &[u64],
        budgets: &[u64],
        fetcher: usize,
        out: &mut MatchOutcome,
    ) {
        validate_inputs(peers, needs, budgets, fetcher);
        let n = peers.len();
        let mut state = MatchState::begin(&mut self.work, needs, budgets, fetcher, 0, out);
        self.uploaders.clear();
        self.uploaders.extend(0..n as u32);
        self.uploaders.shuffle(&mut self.rng);
        self.downloaders.clear();
        self.downloaders
            .extend((0..n as u32).filter(|&i| i as usize != fetcher));
        self.downloaders.shuffle(&mut self.rng);

        let mut j = 0usize;
        for &d in &self.downloaders {
            let d = d as usize;
            while state.needs()[d] > 0 {
                while j < self.uploaders.len() && state.budgets()[self.uploaders[j] as usize] == 0 {
                    j += 1;
                }
                if j >= self.uploaders.len() {
                    break;
                }
                let mut u = self.uploaders[j] as usize;
                if u == d {
                    let mut k = j + 1;
                    while k < self.uploaders.len()
                        && state.budgets()[self.uploaders[k] as usize] == 0
                    {
                        k += 1;
                    }
                    if k >= self.uploaders.len() {
                        break;
                    }
                    u = self.uploaders[k] as usize;
                }
                state.transfer(d, u, closeness(&peers[d], &peers[u]));
            }
        }
        state.finish();
    }

    fn checkpoint_word(&self) -> u64 {
        self.rng.draws
    }

    fn restore_word(&mut self, word: u64) {
        // Replay the stream to the recorded position. Restores are rare
        // (once per process resurrection) and the stream advances two draws
        // per multi-peer window, so the fast-forward is cheap in practice.
        self.rng = CountingRng::seeded(self.seed);
        use rand::RngCore;
        for _ in 0..word {
            let _ = self.rng.next_u64();
        }
    }
}

fn validate_inputs(peers: &[Peer], needs: &[u64], budgets: &[u64], fetcher: usize) {
    assert_eq!(peers.len(), needs.len(), "needs length must match peers");
    assert_eq!(
        peers.len(),
        budgets.len(),
        "budgets length must match peers"
    );
    assert!(fetcher < peers.len(), "fetcher index out of range");
}

/// Residual need/budget working vectors, owned by a matcher and reused
/// across windows.
#[derive(Debug, Clone, Default)]
struct WorkBuffers {
    needs: Vec<u64>,
    budgets: Vec<u64>,
}

/// Shared bookkeeping for matcher implementations: borrows the matcher's
/// scratch and the caller's outcome for the duration of one window.
struct MatchState<'a> {
    work: &'a mut WorkBuffers,
    out: &'a mut MatchOutcome,
    fetcher: usize,
    rotation: usize,
    need_total: u64,
    budget_total: u64,
}

impl<'a> MatchState<'a> {
    fn begin(
        work: &'a mut WorkBuffers,
        needs: &[u64],
        budgets: &[u64],
        fetcher: usize,
        rotation: usize,
        out: &'a mut MatchOutcome,
    ) -> Self {
        work.needs.clear();
        work.needs.extend_from_slice(needs);
        work.needs[fetcher] = 0; // the fetcher streams from the CDN
        work.budgets.clear();
        work.budgets.extend_from_slice(budgets);
        out.server_bytes = 0;
        out.peer_bytes_by_layer = [0; 3];
        out.per_peer.clear();
        out.per_peer.resize(needs.len(), PeerTransfer::default());
        let need_total = work.needs.iter().sum();
        let budget_total = work.budgets.iter().sum();
        Self {
            work,
            out,
            fetcher,
            rotation,
            need_total,
            budget_total,
        }
    }

    fn needs(&self) -> &[u64] {
        &self.work.needs
    }

    fn budgets(&self) -> &[u64] {
        &self.work.budgets
    }

    /// Whether no further transfer is possible (needs or budgets exhausted).
    fn done(&self) -> bool {
        self.need_total == 0 || self.budget_total == 0
    }

    /// Moves `min(need, budget)` bytes from uploader `u` to downloader `d`.
    fn transfer(&mut self, d: usize, u: usize, layer: Layer) {
        debug_assert_ne!(d, u, "self-transfer");
        let t = self.work.needs[d].min(self.work.budgets[u]);
        if t == 0 {
            return;
        }
        self.work.needs[d] -= t;
        self.work.budgets[u] -= t;
        self.need_total -= t;
        self.budget_total -= t;
        self.out.per_peer[d].from_peers += t;
        self.out.per_peer[u].uploaded += t;
        self.out.per_peer[u].uploaded_by_layer[layer.index()] += t;
        self.out.peer_bytes_by_layer[layer.index()] += t;
    }

    /// Drains needs against budgets inside each run of `order` whose bucket
    /// keys agree above `shift` bits, accounting transfers at `layer`.
    fn drain_runs(&mut self, order: &[u32], keys: &[u128], shift: u32, layer: Layer) {
        let n = order.len();
        let mut start = 0usize;
        while start < n {
            let group = keys[order[start] as usize] >> shift;
            let mut end = start + 1;
            while end < n && keys[order[end] as usize] >> shift == group {
                end += 1;
            }
            if end - start >= 2 {
                self.drain_one_group(&order[start..end], layer);
                if self.done() {
                    return;
                }
            }
            start = end;
        }
    }

    fn drain_one_group(&mut self, members: &[u32], layer: Layer) {
        let len = members.len();
        // Uploaders are scanned circularly starting at a rotating offset so
        // upload burden (and carbon credit) spreads across the group over
        // successive windows.
        let offset = self.rotation % len;
        let at = |step: usize| members[(offset + step) % len] as usize;
        // Two tiers: first spend the budgets of peers that are themselves
        // still downloading (their budget risks being stranded — a peer
        // cannot serve itself), then everyone else's. Without the tiering,
        // greedy can leave the final downloader facing only its own budget
        // while a pure uploader's budget was burned early.
        for require_need in [true, false] {
            let usable = |state: &Self, u: usize| {
                state.work.budgets[u] > 0 && (!require_need || state.work.needs[u] > 0)
            };
            let mut j = 0usize;
            for &d in members {
                let d = d as usize;
                if d == self.fetcher {
                    continue;
                }
                while self.work.needs[d] > 0 {
                    while j < len && !usable(self, at(j)) {
                        j += 1;
                    }
                    if j >= len {
                        break; // this tier is exhausted; try the next
                    }
                    let mut u = at(j);
                    if u == d {
                        // d cannot upload to itself; peek past it without
                        // discarding d's budget (it may serve later peers).
                        let mut k = j + 1;
                        while k < len && !usable(self, at(k)) {
                            k += 1;
                        }
                        if k >= len {
                            break; // only d itself is usable in this tier
                        }
                        u = at(k);
                    }
                    self.transfer(d, u, layer);
                }
            }
        }
    }

    fn finish(self) {
        // Unmet needs fall back to the CDN; the fetcher's full demand was
        // already zeroed into `needs[fetcher]` and is charged by the caller
        // via its own demand accounting — here we charge residual needs.
        let mut server = 0u64;
        for (i, need) in self.work.needs.iter().enumerate() {
            if i == self.fetcher {
                continue;
            }
            self.out.per_peer[i].from_server += need;
            server += need;
        }
        self.out.server_bytes = server;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_topology::{ExchangeId, IspTopology};

    fn topo() -> IspTopology {
        IspTopology::new(8, 2).unwrap() // exchanges 0..8, pops: e % 2
    }

    fn peer(isp: u8, exchange: u32) -> Peer {
        Peer {
            isp: IspId(isp),
            location: topo().location_of(ExchangeId(exchange)),
        }
    }

    /// 4 peers: two share exchange 0 (pop 0), one on exchange 2 (pop 0),
    /// one on exchange 1 (pop 1).
    fn quad() -> Vec<Peer> {
        vec![peer(0, 0), peer(0, 0), peer(0, 2), peer(0, 1)]
    }

    #[test]
    fn closeness_rules() {
        assert_eq!(closeness(&peer(0, 0), &peer(0, 0)), Layer::ExchangePoint);
        assert_eq!(closeness(&peer(0, 0), &peer(0, 2)), Layer::PointOfPresence);
        assert_eq!(closeness(&peer(0, 0), &peer(0, 1)), Layer::Core);
        assert_eq!(
            closeness(&peer(0, 0), &peer(1, 0)),
            Layer::Core,
            "cross-ISP is core"
        );
    }

    #[test]
    fn single_peer_everything_from_server() {
        let peers = vec![peer(0, 0)];
        let (needs, budgets) = uniform_window(1, 1000, 1000);
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        assert_eq!(
            out.server_bytes, 0,
            "fetcher demand is charged by the caller"
        );
        assert_eq!(out.peer_bytes(), 0);
        assert_eq!(out.per_peer[0], PeerTransfer::default());
    }

    #[test]
    fn pair_shares_fully_at_exchange() {
        let peers = vec![peer(0, 0), peer(0, 0)];
        let (needs, budgets) = uniform_window(2, 1000, 1000);
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        assert_eq!(out.peer_bytes_by_layer, [1000, 0, 0]);
        assert_eq!(out.server_bytes, 0);
        assert_eq!(out.per_peer[1].from_peers, 1000);
        assert_eq!(out.per_peer[0].uploaded, 1000);
    }

    #[test]
    fn budget_caps_respected_and_conservation_holds() {
        let peers = quad();
        let demand = 1000u64;
        let budget = 600u64; // q/β = 0.6
        let (needs, budgets) = uniform_window(4, demand, budget);
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        // Every downloader's need is min(1000, 600) = 600.
        for (i, t) in out.per_peer.iter().enumerate() {
            assert!(t.uploaded <= budget, "peer {i} exceeded budget");
            if i != 0 {
                assert_eq!(t.from_peers + t.from_server, 600);
            }
        }
        let total_up: u64 = out.per_peer.iter().map(|t| t.uploaded).sum();
        let total_down: u64 = out.per_peer.iter().map(|t| t.from_peers).sum();
        assert_eq!(total_up, total_down);
        assert_eq!(total_down, out.peer_bytes());
        // 3 downloaders × 600 need, ample budget (4 × 600 ≥ 1800): all peer.
        assert_eq!(out.peer_bytes(), 1800);
        assert_eq!(out.server_bytes, 0);
    }

    #[test]
    fn hierarchical_prefers_closer_layers() {
        let peers = quad();
        let (needs, budgets) = uniform_window(4, 1000, 1000);
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        // Peer 1 shares exchange 0 with the fetcher: served at ExP.
        // Peer 2 (exchange 2, pop 0) matches someone in pop 0 at PoP level.
        // Peer 3 (exchange 1, pop 1) has nobody in pop 1: served across core.
        assert_eq!(out.peer_bytes_by_layer[Layer::ExchangePoint.index()], 1000);
        assert_eq!(
            out.peer_bytes_by_layer[Layer::PointOfPresence.index()],
            1000
        );
        assert_eq!(out.peer_bytes_by_layer[Layer::Core.index()], 1000);
        assert_eq!(out.server_bytes, 0);
    }

    #[test]
    fn supply_shortage_falls_back_to_server() {
        // Fetcher plus 3 downloaders, but total budget below total need.
        let peers = quad();
        let needs = vec![0, 800, 800, 800];
        let budgets = vec![500, 500, 0, 0];
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        assert_eq!(out.peer_bytes(), 1000, "all budget consumed");
        assert_eq!(out.server_bytes, 2400 - 1000);
        let delivered: u64 = out
            .per_peer
            .iter()
            .map(|t| t.from_peers + t.from_server)
            .sum();
        assert_eq!(delivered, 2400);
    }

    #[test]
    fn fetcher_does_not_download_from_peers() {
        let peers = quad();
        let (needs, budgets) = uniform_window(4, 1000, 1000);
        for fetcher in 0..4 {
            let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, fetcher);
            assert_eq!(out.per_peer[fetcher].from_peers, 0);
            assert_eq!(out.per_peer[fetcher].from_server, 0);
        }
    }

    #[test]
    fn fetcher_can_still_upload() {
        let peers = vec![peer(0, 0), peer(0, 0)];
        let (needs, budgets) = uniform_window(2, 1000, 1000);
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        assert_eq!(out.per_peer[0].uploaded, 1000);
    }

    #[test]
    fn random_matcher_conserves_and_respects_budgets() {
        let peers = quad();
        let (needs, budgets) = uniform_window(4, 1000, 700);
        let mut m = RandomMatcher::new(9);
        let out = m.match_window(&peers, &needs, &budgets, 0);
        for t in &out.per_peer {
            assert!(t.uploaded <= 700);
        }
        let up: u64 = out.per_peer.iter().map(|t| t.uploaded).sum();
        assert_eq!(up, out.peer_bytes());
        // 3 downloaders × min(1000,700): enough aggregate budget (4×700).
        assert_eq!(out.peer_bytes(), 3 * 700);
    }

    #[test]
    fn random_is_worse_or_equal_on_locality() {
        // Many peers concentrated on one exchange: hierarchical matches all
        // of them locally; random frequently crosses layers.
        let mut peers: Vec<Peer> = (0..10).map(|_| peer(0, 0)).collect();
        peers.extend((0..10).map(|i| peer(0, 1 + (i % 7))));
        let (needs, budgets) = uniform_window(peers.len(), 1000, 1000);
        let hier = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        let mut rand_m = RandomMatcher::new(3);
        let rand = rand_m.match_window(&peers, &needs, &budgets, 0);
        assert_eq!(hier.peer_bytes(), rand.peer_bytes(), "same transfer volume");
        assert!(
            hier.peer_bytes_by_layer[0] >= rand.peer_bytes_by_layer[0],
            "hierarchical keeps at least as much traffic local: {:?} vs {:?}",
            hier.peer_bytes_by_layer,
            rand.peer_bytes_by_layer
        );
    }

    #[test]
    fn two_peers_single_uploader_self_skip() {
        // Downloader is the only one with budget: cannot serve itself.
        let peers = vec![peer(0, 0), peer(0, 0)];
        let needs = vec![0, 500];
        let budgets = vec![0, 9999];
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        assert_eq!(out.peer_bytes(), 0);
        assert_eq!(out.server_bytes, 500);
    }

    #[test]
    #[should_panic(expected = "fetcher index out of range")]
    fn rejects_bad_fetcher() {
        let peers = vec![peer(0, 0)];
        let _ = HierarchicalMatcher::new().match_window(&peers, &[0], &[0], 1);
    }

    #[test]
    #[should_panic(expected = "needs length")]
    fn rejects_mismatched_lengths() {
        let peers = vec![peer(0, 0)];
        let _ = HierarchicalMatcher::new().match_window(&peers, &[], &[0], 0);
    }

    #[test]
    fn matcher_kind_builds_both() {
        let peers = vec![peer(0, 0), peer(0, 0)];
        let (needs, budgets) = uniform_window(2, 100, 100);
        for kind in [MatcherKind::Hierarchical, MatcherKind::Random] {
            let mut m = kind.build(1);
            let out = m.match_window(&peers, &needs, &budgets, 0);
            assert_eq!(out.delivered_bytes(), 100);
        }
        assert_eq!(MatcherKind::default(), MatcherKind::Hierarchical);
    }

    #[test]
    fn large_group_linear_drain_terminates() {
        // Smoke test for the two-pointer drain: 5 000 peers on one exchange.
        let peers: Vec<Peer> = (0..5_000).map(|_| peer(0, 0)).collect();
        let (needs, budgets) = uniform_window(peers.len(), 100, 100);
        let out = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
        assert_eq!(out.peer_bytes(), (peers.len() as u64 - 1) * 100);
        assert_eq!(out.server_bytes, 0);
    }

    #[test]
    fn truthful_hint_is_byte_identical_across_windows() {
        // Same peer sequence across many windows with varying needs/budgets:
        // the hinted matcher (reused grouping) must replay exactly what a
        // fresh-sorting twin produces, window by window, including the
        // rotation state.
        let peers = quad();
        let mut hinted = HierarchicalMatcher::new();
        let mut unhinted = HierarchicalMatcher::new();
        for w in 0..50u64 {
            let needs = vec![0, 300 + w * 7, 900 - w * 3, 500];
            let budgets = vec![400, w * 11 % 600, 250, 800];
            let mut a = MatchOutcome::default();
            let mut b = MatchOutcome::default();
            hinted.match_window_into_hinted(&peers, &needs, &budgets, 0, w > 0, &mut a);
            unhinted.match_window_into(&peers, &needs, &budgets, 0, &mut b);
            assert_eq!(a, b, "window {w}");
        }
        // A membership change (hint goes false) re-sorts and stays correct.
        let grown: Vec<Peer> = peers.iter().copied().chain([peer(1, 3)]).collect();
        let (needs, budgets) = uniform_window(5, 1000, 1000);
        let mut a = MatchOutcome::default();
        let mut b = MatchOutcome::default();
        hinted.match_window_into_hinted(&grown, &needs, &budgets, 0, false, &mut a);
        unhinted.match_window_into(&grown, &needs, &budgets, 0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn note_solo_windows_matches_real_single_peer_calls() {
        // Interleave multi-peer windows with runs of single-peer windows:
        // taking the bulk path for the solo runs must leave both matchers in
        // exactly the state the one-by-one path produces (rotation for the
        // hierarchical matcher, RNG position for the random one).
        let peers = quad();
        let solo = vec![peer(0, 0)];
        let (needs, budgets) = uniform_window(4, 1000, 400);
        let (solo_needs, solo_budgets) = uniform_window(1, 1000, 400);
        for kind in [MatcherKind::Hierarchical, MatcherKind::Random] {
            let mut bulk = kind.build(17);
            let mut stepped = kind.build(17);
            for round in 0..4u64 {
                let k = round * 3 + 1;
                bulk.note_solo_windows(k);
                for _ in 0..k {
                    let out = stepped.match_window(&solo, &solo_needs, &solo_budgets, 0);
                    assert_eq!(out.peer_bytes(), 0, "{kind:?}: solo windows cannot match");
                    assert_eq!(out.server_bytes, 0);
                }
                assert_eq!(
                    bulk.match_window(&peers, &needs, &budgets, 0),
                    stepped.match_window(&peers, &needs, &budgets, 0),
                    "{kind:?}: divergence after {k} bulk solo windows"
                );
            }
        }
    }

    #[test]
    fn checkpoint_word_restores_mid_stream() {
        // Run W windows, capture the word, rebuild a fresh matcher of the
        // same kind/seed, restore — the pair must stay byte-identical for
        // every subsequent window (including solo bulk advances).
        let peers = quad();
        for kind in [MatcherKind::Hierarchical, MatcherKind::Random] {
            let mut live = kind.build(23);
            for w in 0..13u64 {
                let needs = vec![0, 200 + w * 5, 700, 400];
                let budgets = vec![300, 100, w * 9 % 500, 600];
                let _ = live.match_window(&peers, &needs, &budgets, 0);
                if w == 6 {
                    live.note_solo_windows(4);
                }
            }
            let word = live.checkpoint_word();
            let mut restored = kind.build(23);
            restored.restore_word(word);
            assert_eq!(restored.checkpoint_word(), word, "{kind:?}: word survives");
            for w in 0..10u64 {
                let needs = vec![0, 150, 900 - w * 11, 520];
                let budgets = vec![250, w * 13 % 700, 330, 410];
                assert_eq!(
                    live.match_window(&peers, &needs, &budgets, 0),
                    restored.match_window(&peers, &needs, &budgets, 0),
                    "{kind:?}: window {w} after restore"
                );
                if w == 3 {
                    live.note_solo_windows(2);
                    restored.note_solo_windows(2);
                }
            }
        }
    }

    #[test]
    fn default_hint_implementation_ignores_the_hint() {
        // RandomMatcher takes the trait default: a (vacuously untruthful)
        // hint must not change behaviour vs the unhinted entry point.
        let peers = quad();
        let (needs, budgets) = uniform_window(4, 1000, 700);
        let mut a_m = RandomMatcher::new(5);
        let mut b_m = RandomMatcher::new(5);
        for w in 0..10 {
            let mut a = MatchOutcome::default();
            let mut b = MatchOutcome::default();
            a_m.match_window_into_hinted(&peers, &needs, &budgets, 0, w > 0, &mut a);
            b_m.match_window_into(&peers, &needs, &budgets, 0, &mut b);
            assert_eq!(a, b, "window {w}");
        }
    }

    #[test]
    fn rotation_spreads_uploads_across_members() {
        // Co-located peers over many windows: the rotating scan must keep
        // every member participating in uploads. Exact equality is not
        // required (the still-downloading-first tier biases towards peers
        // that drain early), but nobody may dominate or starve.
        let peers = vec![peer(0, 0), peer(0, 0), peer(0, 0)];
        let (needs, budgets) = uniform_window(3, 100, 100);
        let mut m = HierarchicalMatcher::new();
        let mut uploads = [0u64; 3];
        for _ in 0..300 {
            let out = m.match_window(&peers, &needs, &budgets, 0);
            for (i, t) in out.per_peer.iter().enumerate() {
                uploads[i] += t.uploaded;
            }
        }
        let total: u64 = uploads.iter().sum();
        for (i, &u) in uploads.iter().enumerate() {
            let share = u as f64 / total as f64;
            assert!(
                (0.10..0.60).contains(&share),
                "peer {i} upload share {share}: {uploads:?}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary window: up to 24 peers across 2 ISPs / 8 exchanges,
        /// with arbitrary needs and budgets.
        fn window_strategy() -> impl Strategy<Value = (Vec<Peer>, Vec<u64>, Vec<u64>, usize)> {
            (2usize..24).prop_flat_map(|n| {
                (
                    proptest::collection::vec((0u8..2, 0u32..8), n..=n),
                    proptest::collection::vec(0u64..5_000, n..=n),
                    proptest::collection::vec(0u64..5_000, n..=n),
                    0..n,
                )
                    .prop_map(|(locs, needs, budgets, fetcher)| {
                        let peers: Vec<Peer> = locs.into_iter().map(|(i, e)| peer(i, e)).collect();
                        (peers, needs, budgets, fetcher)
                    })
            })
        }

        proptest! {
            #[test]
            fn prop_conservation_and_caps(
                (peers, needs, budgets, fetcher) in window_strategy()
            ) {
                for kind in [MatcherKind::Hierarchical, MatcherKind::Random] {
                    let mut m = kind.build(11);
                    let out = m.match_window(&peers, &needs, &budgets, fetcher);
                    // Upload/download books balance.
                    let up: u64 = out.per_peer.iter().map(|t| t.uploaded).sum();
                    let down: u64 = out.per_peer.iter().map(|t| t.from_peers).sum();
                    prop_assert_eq!(up, down);
                    prop_assert_eq!(down, out.peer_bytes());
                    // Budgets respected; needs satisfied exactly.
                    for (i, t) in out.per_peer.iter().enumerate() {
                        prop_assert!(t.uploaded <= budgets[i]);
                        if i == fetcher {
                            prop_assert_eq!(t.from_peers, 0);
                            prop_assert_eq!(t.from_server, 0);
                        } else {
                            prop_assert_eq!(t.from_peers + t.from_server, needs[i]);
                        }
                    }
                }
            }

            /// Uniform windows — the input class the engine actually
            /// produces for the paper's bitrate-split swarms (identical
            /// demand and budget per peer). On this class no self-lock can
            /// occur, so the managed matcher must match random's volume and
            /// dominate its locality. (On adversarial *heterogeneous*
            /// windows locality-first greedy may trade a byte of volume for
            /// a closer layer; see `prop_conservation_and_caps` for the
            /// universal invariants.)
            #[test]
            fn prop_uniform_windows_dominate_random(
                locs in proptest::collection::vec((0u8..2, 0u32..8), 2..24),
                demand in 1u64..5_000,
                ratio_pct in 10u64..=100,
                seed in 0u64..50,
            ) {
                let peers: Vec<Peer> = locs.into_iter().map(|(i, e)| peer(i, e)).collect();
                let budget = demand * ratio_pct / 100;
                let (needs, budgets) = uniform_window(peers.len(), demand, budget);
                let hier =
                    HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
                let rand =
                    RandomMatcher::new(seed).match_window(&peers, &needs, &budgets, 0);
                prop_assert_eq!(hier.peer_bytes(), rand.peer_bytes());
                prop_assert!(
                    hier.peer_bytes_by_layer[0] >= rand.peer_bytes_by_layer[0]
                );
                // Uniform supply always covers uniform demand: needs are
                // capped at the budget, and k−1 downloaders draw on k
                // budgets minus self-exclusion, which the tiered drain
                // never strands.
                prop_assert_eq!(
                    hier.peer_bytes(),
                    (peers.len() as u64 - 1) * demand.min(budget)
                );
            }
        }
    }
}
