//! Managed peer-to-peer swarm substrate.
//!
//! The paper assumes *managed* swarming (AntFarm / Akamai NetSession style):
//! a coordinator decides which peer uploads which bytes to whom, so rare-chunk
//! pathologies do not arise and peers can be matched **closest-first**. This
//! crate implements that coordinator:
//!
//! * [`policy`] — how sessions are partitioned into sub-swarms
//!   (ISP-friendly and bitrate-split by default, both relaxable for the
//!   ablation studies);
//! * [`matching`] — per-window peer matching: the default
//!   [`matching::HierarchicalMatcher`] drains demand within exchange points
//!   first, then PoPs, then across the core, against per-uploader budgets;
//!   [`matching::RandomMatcher`] ignores locality and serves as the ablation
//!   baseline;
//! * [`queue`] — a small M/M/∞ event simulator used to validate the
//!   analytical capacity model against simulated swarm dynamics.
//!
//! # Example
//!
//! ```
//! use consume_local_swarm::matching::{HierarchicalMatcher, Matcher, Peer, uniform_window};
//! use consume_local_topology::{ExchangeId, IspId, IspTopology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = IspTopology::london_table3()?;
//! let peers = vec![
//!     Peer { isp: IspId(0), location: topo.location_of(ExchangeId(7)) },
//!     Peer { isp: IspId(0), location: topo.location_of(ExchangeId(7)) },
//! ];
//! // 10 s at 1.5 Mb/s = 1 875 000 B demand; same upload budget (q/β = 1).
//! let (needs, budgets) = uniform_window(peers.len(), 1_875_000, 1_875_000);
//! let outcome = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
//! // Peer 0 is the fresh fetcher (its CDN download is charged by the
//! // caller); peer 1 streams everything from peer 0, exchange-locally.
//! assert_eq!(outcome.server_bytes, 0);
//! assert_eq!(outcome.peer_bytes_by_layer[0], 1_875_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod matching;
pub mod policy;
pub mod queue;

pub use matching::{HierarchicalMatcher, MatchOutcome, Matcher, MatcherKind, Peer, RandomMatcher};
pub use policy::{SwarmKey, SwarmPolicy};
