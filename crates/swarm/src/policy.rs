//! Sub-swarm partitioning policies.
//!
//! The paper's evaluation splits the viewers of a content item into
//! sub-swarms by ISP ("ISP-friendly P2P swarming … can provide a lower bound
//! on achievable savings") and by bitrate (an HD TV cannot stream from a
//! phone's low-bitrate copy). Either split can be disabled to reproduce the
//! ablation studies.

use serde::{Deserialize, Serialize};

use consume_local_topology::IspId;
use consume_local_trace::device::BitrateClass;
use consume_local_trace::{ContentId, SessionRecord};

/// Which dimensions partition a content item's viewers into sub-swarms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwarmPolicy {
    /// Peers are only matched within the same ISP (paper default: true).
    pub split_by_isp: bool,
    /// Peers are only matched within the same bitrate class (paper default:
    /// true).
    pub split_by_bitrate: bool,
}

impl Default for SwarmPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SwarmPolicy {
    /// The paper's evaluation policy: ISP-friendly, bitrate-split swarms.
    pub fn paper_default() -> Self {
        Self {
            split_by_isp: true,
            split_by_bitrate: true,
        }
    }

    /// Cross-ISP matching allowed (ablation A1 upper bound).
    pub fn cross_isp() -> Self {
        Self {
            split_by_isp: false,
            split_by_bitrate: true,
        }
    }

    /// Mixed-bitrate swarms (ablation A2).
    pub fn mixed_bitrate() -> Self {
        Self {
            split_by_isp: true,
            split_by_bitrate: false,
        }
    }

    /// The least restrictive policy: one swarm per content item.
    pub fn content_only() -> Self {
        Self {
            split_by_isp: false,
            split_by_bitrate: false,
        }
    }

    /// The sub-swarm key for a session under this policy.
    pub fn key_for(&self, session: &SessionRecord) -> SwarmKey {
        self.key_parts(session.content, session.isp, session.bitrate_class())
    }

    /// The sub-swarm key from raw session fields — the columnar
    /// [`SessionStore`](consume_local_trace::SessionStore) feeds the
    /// engine's grouping pass straight from its content/ISP/bitrate columns
    /// without reassembling row records.
    pub fn key_parts(&self, content: ContentId, isp: IspId, bitrate: BitrateClass) -> SwarmKey {
        SwarmKey {
            content,
            isp: self.split_by_isp.then_some(isp),
            bitrate: self.split_by_bitrate.then_some(bitrate),
        }
    }
}

/// Identity of one sub-swarm under a [`SwarmPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwarmKey {
    /// The content item.
    pub content: ContentId,
    /// The ISP, when ISP-splitting is on.
    pub isp: Option<IspId>,
    /// The bitrate class, when bitrate-splitting is on.
    pub bitrate: Option<BitrateClass>,
}

impl std::fmt::Display for SwarmKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.content)?;
        if let Some(isp) = self.isp {
            write!(f, "/{isp}")?;
        }
        if let Some(b) = self.bitrate {
            write!(f, "/{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_topology::IspTopology;
    use consume_local_trace::device::DeviceClass;
    use consume_local_trace::{SimTime, UserId};

    fn session(isp: u8, device: DeviceClass) -> SessionRecord {
        let topo = IspTopology::london_table3().unwrap();
        SessionRecord {
            user: UserId(1),
            content: ContentId(42),
            start: SimTime(0),
            duration_secs: 600,
            device,
            isp: IspId(isp),
            location: topo.location_of(consume_local_topology::ExchangeId(0)),
        }
    }

    #[test]
    fn paper_default_splits_both_ways() {
        let p = SwarmPolicy::default();
        let a = p.key_for(&session(0, DeviceClass::Desktop));
        let b = p.key_for(&session(1, DeviceClass::Desktop));
        let c = p.key_for(&session(0, DeviceClass::HdTv));
        assert_ne!(a, b, "different ISPs split");
        assert_ne!(a, c, "different bitrates split");
        assert_eq!(
            a,
            p.key_for(&session(0, DeviceClass::Tablet)),
            "same bitrate merges"
        );
    }

    #[test]
    fn cross_isp_merges_isps() {
        let p = SwarmPolicy::cross_isp();
        let a = p.key_for(&session(0, DeviceClass::Desktop));
        let b = p.key_for(&session(4, DeviceClass::Desktop));
        assert_eq!(a, b);
        assert_eq!(a.isp, None);
    }

    #[test]
    fn content_only_merges_everything() {
        let p = SwarmPolicy::content_only();
        let a = p.key_for(&session(0, DeviceClass::Mobile));
        let b = p.key_for(&session(3, DeviceClass::FullHdTv));
        assert_eq!(a, b);
        assert_eq!(
            a,
            SwarmKey {
                content: ContentId(42),
                isp: None,
                bitrate: None
            }
        );
    }

    #[test]
    fn key_parts_matches_key_for() {
        for policy in [
            SwarmPolicy::paper_default(),
            SwarmPolicy::cross_isp(),
            SwarmPolicy::mixed_bitrate(),
            SwarmPolicy::content_only(),
        ] {
            for (isp, device) in [(0u8, DeviceClass::Desktop), (3, DeviceClass::Mobile)] {
                let s = session(isp, device);
                assert_eq!(
                    policy.key_for(&s),
                    policy.key_parts(s.content, s.isp, s.bitrate_class()),
                    "{policy:?}"
                );
            }
        }
    }

    #[test]
    fn key_display_is_compact() {
        let p = SwarmPolicy::paper_default();
        let key = p.key_for(&session(0, DeviceClass::Desktop));
        assert_eq!(key.to_string(), "item42/ISP-1/1.5Mbps");
        let key = SwarmPolicy::content_only().key_for(&session(0, DeviceClass::Desktop));
        assert_eq!(key.to_string(), "item42");
    }
}
