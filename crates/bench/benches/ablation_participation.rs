//! Ablation A6 — participation: the paper's conclusion cites Akamai
//! NetSession, where "as little as 30 % of its users participate by
//! contributing upload capacity", as the motivation for the carbon-credit
//! incentive. This sweep quantifies what partial participation costs — and
//! therefore what the incentive is worth.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::figures::fig6;
use consume_local::prelude::*;
use consume_local_bench::{pct, save_csv, shared_experiment};

fn regenerate() {
    println!("\n=== Ablation A6: upload participation rate ===");
    let exp = shared_experiment();
    let mut csv = String::from("participation,offload,valancius,baliga,positive_v,positive_b\n");
    for rate in [0.3, 0.5, 0.7, 1.0] {
        let mut cfg = exp.sim_config().clone();
        cfg.participation_rate = rate;
        let report = exp.resimulate(cfg).expect("valid config");
        let v = report
            .total_savings(&EnergyParams::valancius())
            .unwrap_or(0.0);
        let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
        let f6 = fig6(&report, 8);
        let pos_v = f6.positive_share(consume_local::energy::ModelKind::Valancius);
        let pos_b = f6.positive_share(consume_local::energy::ModelKind::Baliga);
        println!(
            "participation {:>3.0}%: offload {} | savings V {} B {} | carbon-positive V {} B {}",
            rate * 100.0,
            pct(report.total.offload_share()),
            pct(v),
            pct(b),
            pct(pos_v),
            pct(pos_b),
        );
        csv.push_str(&format!(
            "{rate},{},{v},{b},{pos_v},{pos_b}\n",
            report.total.offload_share()
        ));
    }
    save_csv("ablation_participation.csv", &csv);
    println!("the Akamai-observed 30% participation forfeits most of the savings the");
    println!("system could deliver — the gap Section V's carbon credits are meant to close.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    let trace = TraceGenerator::new(
        TraceConfig::london_sep2013()
            .scaled(0.001)
            .expect("valid scale"),
        5,
    )
    .generate()
    .expect("valid config");
    c.bench_function("participation/simulation_rate0.3", |b| {
        let cfg = SimConfig {
            participation_rate: 0.3,
            ..Default::default()
        };
        let sim = Simulator::new(cfg);
        b.iter(|| sim.simulate(&trace))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
