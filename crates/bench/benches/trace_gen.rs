//! Trace-generation and engine-on-store perf record (`BENCH_3.json`).
//!
//! Times three things on the reference `medium` scenario (18 000 users,
//! ≈ 117 K sessions):
//!
//! 1. **Trace generation** — the parallel per-item pipeline at 1/2/8
//!    workers against the recorded pre-optimization serial baseline
//!    (measured at commit 583f985 on the development machine, best-of-3
//!    after warm-up, like every baseline in this record);
//! 2. **Columnarisation** — `SessionStore::from_trace`, the once-per-trace
//!    cost sweeps amortise across scenarios;
//! 3. **Engine on store** — `Simulator::run_store` on the prebuilt store at
//!    1 and 8 threads against the engine wall-times recorded in
//!    `BENCH_2.json` (no engine-path regression allowed).
//!
//! The combined record lands in `BENCH_3.json` at the workspace root
//! (schema `consume-local/bench-v1`); CI's `bench-quick` job regenerates it
//! with `CL_SWEEP_QUICK=1` (best-of-3 instead of 5, same workloads) and
//! fails if quick wall-times regress > 25 % against the committed record.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::export::json::JsonValue;
use consume_local::prelude::*;
use consume_local::trace::SessionStore;

/// Seed of the reference scenario (same as `sweep_engine` / `BENCH_2.json`).
const SEED: u64 = 2018;

/// Serial `TraceGenerator::generate` wall-time for the `medium` preset at
/// the pre-optimization baseline commit (583f985), measured on the
/// development machine: best-of-3 after warm-up.
const BASELINE_GENERATE_MS: f64 = 24.3;

/// Engine baselines for the store-replaying engine: the
/// `engine_hot_path.runs[]` wall-times of `BENCH_2.json` at the workspace
/// root (same machine/seed/preset), read rather than hard-coded so the
/// reference moves whenever `sweep_engine` regenerates that record.
fn baseline_engine_ms() -> Vec<(usize, Option<f64>)> {
    let path = consume_local_bench::workspace_root().join("BENCH_2.json");
    let runs = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok())
        .and_then(|doc| {
            let runs = doc.get("engine_hot_path")?.get("runs")?.as_array()?;
            runs.iter()
                .map(|run| {
                    let threads = run.get("threads")?.as_f64()? as usize;
                    let wall_ms = run.get("wall_ms")?.as_f64()?;
                    Some((threads, Some(wall_ms)))
                })
                .collect::<Option<Vec<_>>>()
        });
    runs.unwrap_or_else(|| {
        eprintln!(
            "  [warn] no engine baselines in {} — recording unbaselined runs",
            path.display()
        );
        vec![(1, None), (8, None)]
    })
}

fn timed_reps() -> usize {
    // Quick mode still takes a best-of-3: a 25 % regression gate sits on
    // these numbers, and a single rep is one scheduler hiccup away from a
    // false alarm.
    if std::env::var("CL_SWEEP_QUICK").is_ok() {
        3
    } else {
        5
    }
}

/// Best-of-N wall time (ms) after one warm-up call.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
    }
    best
}

fn speedup_json(s: Option<f64>) -> JsonValue {
    s.map_or(JsonValue::Null, JsonValue::Num)
}

fn trace_gen_record(reps: usize) -> (JsonValue, Trace) {
    let config = ScalePreset::Medium.apply(TraceConfig::london_sep2013());
    let users = config.users;
    println!("\n=== Trace generation (medium preset, {users} users) ===");
    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let generator = TraceGenerator::new(config.clone(), SEED).workers(workers);
        let wall_ms = best_of(reps, || generator.generate().expect("valid preset"));
        let speedup = consume_local::analytics::sweep::speedup(BASELINE_GENERATE_MS, wall_ms);
        println!(
            "workers={workers}: {wall_ms:.1} ms (serial baseline {BASELINE_GENERATE_MS:.1} ms, {}× speedup)",
            speedup.map_or("?".into(), |s| format!("{s:.2}"))
        );
        runs.push(
            JsonValue::object()
                .field("workers", workers)
                .field("wall_ms", wall_ms)
                .field("baseline_serial_ms", BASELINE_GENERATE_MS)
                .field("speedup", speedup_json(speedup)),
        );
    }
    let trace = TraceGenerator::new(config, SEED)
        .generate()
        .expect("valid preset");
    let doc = JsonValue::object()
        .field("preset", "medium")
        .field("seed", SEED)
        .field("users", u64::from(users))
        .field("sessions", trace.sessions().len())
        .field("runs", runs);
    (doc, trace)
}

fn columnarize_record(reps: usize, trace: &Trace) -> (JsonValue, SessionStore) {
    let wall_ms = best_of(reps, || SessionStore::from_trace(trace));
    println!("columnarize: {wall_ms:.2} ms (once per trace, shared across sweep scenarios)");
    let store = SessionStore::from_trace(trace);
    let doc = JsonValue::object()
        .field("wall_ms", wall_ms)
        .field("sessions", store.len());
    (doc, store)
}

fn engine_on_store_record(reps: usize, store: &SessionStore) -> JsonValue {
    println!("=== Engine on store ({} sessions) ===", store.len());
    let mut runs = Vec::new();
    for (threads, baseline_ms) in baseline_engine_ms() {
        let sim = Simulator::new(SimConfig {
            threads,
            ..Default::default()
        });
        let wall_ms = best_of(reps, || sim.simulate(store));
        let speedup =
            baseline_ms.and_then(|b| consume_local::analytics::sweep::speedup(b, wall_ms));
        println!(
            "threads={threads}: {wall_ms:.1} ms (BENCH_2 engine {} ms, {}×)",
            baseline_ms.map_or("?".into(), |b| format!("{b:.1}")),
            speedup.map_or("?".into(), |s| format!("{s:.2}"))
        );
        runs.push(
            JsonValue::object()
                .field("threads", threads)
                .field("wall_ms", wall_ms)
                .field(
                    "baseline_wall_ms",
                    baseline_ms.map_or(JsonValue::Null, JsonValue::Num),
                )
                .field("speedup", speedup_json(speedup)),
        );
    }
    JsonValue::object()
        .field(
            "scenario",
            "medium/london5/hierarchical/isp+bitrate/dt10/q1",
        )
        .field("baseline_source", "BENCH_2.json engine_hot_path")
        .field("runs", runs)
}

fn write_bench_record() {
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok();
    let reps = timed_reps();
    let (trace_gen, trace) = trace_gen_record(reps);
    let (columnarize, store) = columnarize_record(reps, &trace);
    let engine = engine_on_store_record(reps, &store);
    let doc = JsonValue::object()
        .field("schema", "consume-local/bench-v1")
        .field("pr", 3u64)
        .field("quick", quick)
        .field("baseline_commit", "583f985")
        .field("trace_gen", trace_gen)
        .field("columnarize", columnarize)
        .field("engine_on_store", engine);
    let path = consume_local_bench::workspace_root().join("BENCH_3.json");
    // Hard-fail on a write error: CI's regression gate reads this file next,
    // and silently keeping the committed copy would make the gate compare
    // the baseline against itself.
    match consume_local::export::write_text(&path, &(doc.render() + "\n")) {
        Ok(()) => println!("  [json] {}", path.display()),
        Err(e) => panic!("failed to write {}: {e}", path.display()),
    }
}

fn benches(c: &mut Criterion) {
    write_bench_record();
    // Criterion kernels at smoke scale so the timed closures stay short.
    let config = ScalePreset::Smoke.apply(TraceConfig::london_sep2013());
    let serial = TraceGenerator::new(config.clone(), SEED);
    let parallel = TraceGenerator::new(config, SEED).workers(8);
    let trace = serial.generate().expect("valid preset");
    let store = SessionStore::from_trace(&trace);
    let sim = Simulator::new(SimConfig {
        threads: 1,
        ..Default::default()
    });
    let mut group = c.benchmark_group("trace_gen");
    group.sample_size(10);
    group.bench_function("generate_smoke_serial", |b| b.iter(|| serial.generate()));
    group.bench_function("generate_smoke_w8", |b| b.iter(|| parallel.generate()));
    group.bench_function("columnarize_smoke", |b| {
        b.iter(|| SessionStore::from_trace(&trace))
    });
    group.bench_function("engine_store_smoke_t1", |b| b.iter(|| sim.simulate(&store)));
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
