//! Columnar-engine and parallel-merge perf record (`BENCH_4.json`).
//!
//! Times the two PR-4 wins plus the newly affordable `large` preset:
//!
//! 1. **Engine on store** — `Simulator::run_store` with the fully columnar
//!    window loop (SoA active set feeding `match_window_into` slices
//!    directly) on the reference `medium` scenario at 1 and 8 threads,
//!    against the engine wall-times recorded in `BENCH_3.json`
//!    (pre-columnar loop, measured at baseline commit d26db11);
//! 2. **Merge phase** — `merge_session_batches` (the hour-bucketed scatter +
//!    per-bucket compact-key sorts, ~40 % of generation wall-time) at
//!    1/2/8 workers, speedups against the in-run serial measurement — the
//!    per-bucket sorts fan out over disjoint bucket slices via
//!    `parallel_map_slices`, byte-identical for any worker count;
//! 3. **Large preset** — end-to-end generate (8 workers), columnarise and
//!    simulate (8 threads) at the `large` scale (≈ 180 K users / 1.2 M
//!    sessions), the first time this preset is cheap enough for a tracked
//!    record. Its fields are deliberately named `*_wall_ms` rather than
//!    `wall_ms` so the bench_guard gate skips them: quick mode times the
//!    large preset once (seconds per rep), which is affordability tracking,
//!    not a gateable kernel measurement.
//!
//! The combined record lands in `BENCH_4.json` at the workspace root
//! (schema `consume-local/bench-v1`); CI's `bench-quick` job regenerates it
//! with `CL_SWEEP_QUICK=1` and gates it **run-over-run** against the
//! previous CI run's artifact (`CL_BENCH_PREV`), falling back to the
//! committed record.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::export::json::JsonValue;
use consume_local::prelude::*;
use consume_local::trace::{merge_session_batches, SessionRecord, SessionStore};

/// Seed of the reference scenario (same as `trace_gen` / `BENCH_3.json`).
const SEED: u64 = 2018;

/// Engine baselines for the columnar window loop: the
/// `engine_on_store.runs[]` wall-times of the committed `BENCH_3.json`
/// (pre-columnar loop, same machine/seed/preset), read rather than
/// hard-coded so the reference moves whenever `trace_gen` regenerates that
/// record.
fn baseline_engine_ms() -> Vec<(usize, Option<f64>)> {
    let path = consume_local_bench::workspace_root().join("BENCH_3.json");
    let runs = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok())
        .and_then(|doc| {
            let runs = doc.get("engine_on_store")?.get("runs")?.as_array()?;
            runs.iter()
                .map(|run| {
                    let threads = run.get("threads")?.as_f64()? as usize;
                    let wall_ms = run.get("wall_ms")?.as_f64()?;
                    Some((threads, Some(wall_ms)))
                })
                .collect::<Option<Vec<_>>>()
        });
    runs.unwrap_or_else(|| {
        eprintln!(
            "  [warn] no engine baselines in {} — recording unbaselined runs",
            path.display()
        );
        vec![(1, None), (8, None)]
    })
}

fn timed_reps() -> usize {
    // Quick mode still takes a best-of-3: a regression gate sits on these
    // numbers, and a single rep is one scheduler hiccup away from a false
    // alarm.
    if std::env::var("CL_SWEEP_QUICK").is_ok() {
        3
    } else {
        5
    }
}

/// Best-of-N wall time (ms) after one warm-up call.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
    }
    best
}

/// Best-of-N without a warm-up call, returning the last repetition's output
/// — for the `large` preset, where every repetition costs seconds, the
/// first run warms the allocator enough, and the timed artifact is reused
/// downstream instead of being regenerated.
fn timed_cold<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn speedup_json(s: Option<f64>) -> JsonValue {
    s.map_or(JsonValue::Null, JsonValue::Num)
}

fn engine_on_store_record(reps: usize, store: &SessionStore) -> JsonValue {
    println!(
        "\n=== Columnar engine on store ({} sessions) ===",
        store.len()
    );
    let mut runs = Vec::new();
    for (threads, baseline_ms) in baseline_engine_ms() {
        let sim = Simulator::new(SimConfig {
            threads,
            ..Default::default()
        });
        let wall_ms = best_of(reps, || sim.simulate(store));
        let speedup =
            baseline_ms.and_then(|b| consume_local::analytics::sweep::speedup(b, wall_ms));
        println!(
            "threads={threads}: {wall_ms:.1} ms (BENCH_3 engine {} ms, {}×)",
            baseline_ms.map_or("?".into(), |b| format!("{b:.1}")),
            speedup.map_or("?".into(), |s| format!("{s:.2}"))
        );
        runs.push(
            JsonValue::object()
                .field("threads", threads)
                .field("wall_ms", wall_ms)
                .field(
                    "baseline_wall_ms",
                    baseline_ms.map_or(JsonValue::Null, JsonValue::Num),
                )
                .field("speedup", speedup_json(speedup)),
        );
    }
    JsonValue::object()
        .field(
            "scenario",
            "medium/london5/hierarchical/isp+bitrate/dt10/q1",
        )
        .field("baseline_source", "BENCH_3.json engine_on_store")
        .field("runs", runs)
}

fn merge_phase_record(reps: usize, trace: &Trace) -> JsonValue {
    // Rebuild the merge input the generator's synthesis phase emits:
    // per-item session batches in catalogue order.
    let items = trace.catalogue().len();
    let mut per_item: Vec<Vec<SessionRecord>> = vec![Vec::new(); items];
    for s in trace.sessions() {
        per_item[s.content.0 as usize].push(*s);
    }
    println!(
        "=== Merge phase ({} sessions, {} item batches) ===",
        trace.sessions().len(),
        items
    );
    let serial_ms = best_of(reps, || merge_session_batches(&per_item, 1));
    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let wall_ms = if workers == 1 {
            serial_ms
        } else {
            best_of(reps, || merge_session_batches(&per_item, workers))
        };
        let speedup = consume_local::analytics::sweep::speedup(serial_ms, wall_ms);
        println!(
            "workers={workers}: {wall_ms:.2} ms (serial {serial_ms:.2} ms, {}×)",
            speedup.map_or("?".into(), |s| format!("{s:.2}"))
        );
        runs.push(
            JsonValue::object()
                .field("workers", workers)
                .field("wall_ms", wall_ms)
                .field("baseline_serial_ms", serial_ms)
                .field("speedup", speedup_json(speedup)),
        );
    }
    JsonValue::object()
        .field("preset", "medium")
        .field("sessions", trace.sessions().len())
        .field("runs", runs)
}

fn large_preset_record(quick: bool) -> JsonValue {
    // One timed repetition in quick mode, two otherwise: the large preset
    // costs seconds per pass, and this entry tracks affordability, not a
    // tight kernel.
    let reps = if quick { 1 } else { 2 };
    let config = ScalePreset::Large.apply(TraceConfig::london_sep2013());
    let users = config.users;
    println!("=== Large preset ({users} users) ===");
    let generator = TraceGenerator::new(config, SEED).workers(8);
    let (generate_ms, trace) = timed_cold(reps, || generator.generate().expect("valid preset"));
    let (columnarize_ms, store) = timed_cold(reps, || SessionStore::from_trace(&trace));
    let sim = Simulator::new(SimConfig {
        threads: 8,
        ..Default::default()
    });
    let (simulate_ms, _) = timed_cold(reps, || sim.simulate(&store));
    println!(
        "generate(w8)={generate_ms:.0} ms columnarize={columnarize_ms:.0} ms \
         engine(t8)={simulate_ms:.0} ms ({} sessions)",
        store.len()
    );
    JsonValue::object()
        .field("preset", "large")
        .field("seed", SEED)
        .field("users", u64::from(users))
        .field("sessions", store.len())
        .field("generate_workers", 8u64)
        .field("engine_threads", 8u64)
        .field("generate_wall_ms", generate_ms)
        .field("columnarize_wall_ms", columnarize_ms)
        .field("engine_wall_ms", simulate_ms)
}

fn write_bench_record() {
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok();
    let reps = timed_reps();
    let config = ScalePreset::Medium.apply(TraceConfig::london_sep2013());
    let trace = TraceGenerator::new(config, SEED)
        .generate()
        .expect("valid preset");
    let store = SessionStore::from_trace(&trace);
    let engine = engine_on_store_record(reps, &store);
    let merge = merge_phase_record(reps, &trace);
    let large = large_preset_record(quick);
    let doc = JsonValue::object()
        .field("schema", "consume-local/bench-v1")
        .field("pr", 4u64)
        .field("quick", quick)
        .field("baseline_commit", "d26db11")
        .field("engine_on_store", engine)
        .field("merge_phase", merge)
        .field("large_preset", large);
    let path = consume_local_bench::workspace_root().join("BENCH_4.json");
    // Hard-fail on a write error: CI's regression gate reads this file next,
    // and silently keeping the committed copy would make the gate compare
    // the baseline against itself.
    match consume_local::export::write_text(&path, &(doc.render() + "\n")) {
        Ok(()) => println!("  [json] {}", path.display()),
        Err(e) => panic!("failed to write {}: {e}", path.display()),
    }
}

fn benches(c: &mut Criterion) {
    write_bench_record();
    // Criterion kernels at smoke scale so the timed closures stay short.
    let config = ScalePreset::Smoke.apply(TraceConfig::london_sep2013());
    let trace = TraceGenerator::new(config, SEED)
        .generate()
        .expect("valid preset");
    let mut per_item: Vec<Vec<SessionRecord>> = vec![Vec::new(); trace.catalogue().len()];
    for s in trace.sessions() {
        per_item[s.content.0 as usize].push(*s);
    }
    let store = SessionStore::from_trace(&trace);
    let sim = Simulator::new(SimConfig {
        threads: 1,
        ..Default::default()
    });
    let mut group = c.benchmark_group("columnar_engine");
    group.sample_size(10);
    group.bench_function("engine_store_smoke_t1", |b| b.iter(|| sim.simulate(&store)));
    group.bench_function("merge_smoke_serial", |b| {
        b.iter(|| merge_session_batches(&per_item, 1))
    });
    group.bench_function("merge_smoke_w8", |b| {
        b.iter(|| merge_session_batches(&per_item, 8))
    });
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
