//! Streaming per-day store perf record (`BENCH_5.json`).
//!
//! PR 5 lands the segmented pipeline (`TraceGenerator::segments` →
//! per-day `SessionStore` segments → `Simulator::run_trace_stream`), which
//! bounds peak trace memory to **one day-segment** instead of the whole
//! horizon. This bench records:
//!
//! 1. **Large preset, gated** — the `large` scale (≈ 180 K users / 1.2 M
//!    sessions) promoted from BENCH_4's affordability tracking to a
//!    multi-rep gated section: generate (8 workers), columnarise, the
//!    monolithic engine (`run_store`, 8 threads) and the bounded-memory
//!    streaming end-to-end pass (`run_trace_stream`). These entries use
//!    plain `wall_ms` field names, so CI's `bench_guard` gates them like
//!    every other kernel. The streaming report is asserted **byte-identical**
//!    to the monolithic one before the record is written.
//! 2. **Full preset, affordability** — the first tracked full-scale London
//!    entry (3.6 M users / 23.5 M sessions): one streaming
//!    generate-and-simulate pass. Its fields are deliberately named
//!    `*_wall_ms` so the `bench_guard` gate skips them (a single rep of a
//!    minutes-long run is affordability tracking, not a gateable kernel).
//!
//! Both sections also record the measured peak RSS of each pipeline
//! (`peak_rss_mb`, via `VmHWM` with a best-effort watermark reset between
//! pipelines) — the numbers behind README's memory-footprint table.
//!
//! The record lands in `BENCH_5.json` at the workspace root (schema
//! `consume-local/bench-v1`); CI's `bench-quick` job regenerates it with
//! `CL_SWEEP_QUICK=1` and gates the `wall_ms` entries against the
//! committed record and, run-over-run, the previous CI artifact. Set
//! `CL_BENCH_SKIP_FULL=1` to omit the full-preset pass locally (the guard
//! skips missing entries).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::export::json::JsonValue;
use consume_local::prelude::*;
use consume_local::trace::{SegmentedStore, SessionStore};
use consume_local_bench::{peak_rss_mb, reset_peak_rss, workspace_root};

/// Seed of the reference scenarios (same as `trace_gen` / `columnar_engine`).
const SEED: u64 = 2018;

/// Generation workers / engine threads for the large and full passes (the
/// committed record machine is single-core; the worker counts are part of
/// the recorded configuration, as in `BENCH_4.json`).
const WORKERS: usize = 8;

fn timed_reps() -> usize {
    // Multi-rep even in quick mode: these numbers are gated, and a single
    // rep is one scheduler hiccup away from a false alarm.
    if std::env::var("CL_SWEEP_QUICK").is_ok() {
        2
    } else {
        3
    }
}

/// Best-of-N without a warm-up call, returning the last repetition's output
/// — every repetition of these passes costs seconds, the first run warms
/// the allocator enough, and the timed artifact is reused downstream.
/// The previous repetition's output is dropped **before** the next one
/// builds: these passes feed the recorded peak-RSS readings, and holding
/// two traces/stores at once would bias them high.
fn timed_cold<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        drop(last.take());
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn rss_json(mb: Option<f64>) -> JsonValue {
    mb.map_or(JsonValue::Null, JsonValue::Num)
}

/// The gated large-preset section: monolithic pipeline stages vs the
/// streaming end-to-end pass, with per-pipeline peak RSS.
fn large_record(reps: usize) -> JsonValue {
    let config = ScalePreset::Large.apply(TraceConfig::london_sep2013());
    let users = config.users;
    println!("\n=== Large preset, gated ({users} users) ===");
    let generator = TraceGenerator::new(config, SEED).workers(WORKERS);
    let sim = Simulator::new(SimConfig {
        threads: WORKERS,
        ..Default::default()
    });

    // Monolithic pipeline: whole trace resident, then columns, then engine.
    reset_peak_rss();
    let (generate_ms, trace) = timed_cold(reps, || generator.generate().expect("valid preset"));
    let (columnarize_ms, store) = timed_cold(reps, || SessionStore::from_trace(&trace));
    let (engine_ms, monolithic_report) = timed_cold(reps, || sim.simulate(&store));
    let monolithic_peak = peak_rss_mb();
    let sessions = store.len();
    drop(store);
    drop(trace);

    // Streaming pipeline: generate + simulate with one resident day.
    reset_peak_rss();
    let (stream_ms, stream_report) = timed_cold(reps, || {
        let mut stream = generator.segments().expect("valid preset");
        sim.simulate(&mut stream)
    });
    let stream_peak = peak_rss_mb();
    // The acceptance bar for the whole pipeline: identical bytes.
    assert_eq!(
        stream_report, monolithic_report,
        "streaming large report must be byte-identical to the monolithic path"
    );

    println!(
        "generate(w{WORKERS})={generate_ms:.0} ms columnarize={columnarize_ms:.0} ms \
         engine(t{WORKERS})={engine_ms:.0} ms | stream end-to-end={stream_ms:.0} ms \
         ({sessions} sessions)"
    );
    println!(
        "peak RSS: monolithic {} MB, streaming {} MB",
        monolithic_peak.map_or("?".into(), |m| format!("{m:.0}")),
        stream_peak.map_or("?".into(), |m| format!("{m:.0}")),
    );
    JsonValue::object()
        .field("preset", "large")
        .field("seed", SEED)
        .field("users", u64::from(users))
        .field("sessions", sessions)
        .field(
            "generate",
            JsonValue::object()
                .field("workers", WORKERS)
                .field("wall_ms", generate_ms),
        )
        .field(
            "columnarize",
            JsonValue::object().field("wall_ms", columnarize_ms),
        )
        .field(
            "engine_monolithic",
            JsonValue::object()
                .field("threads", WORKERS)
                .field("wall_ms", engine_ms),
        )
        .field(
            "stream_end_to_end",
            JsonValue::object()
                .field("threads", WORKERS)
                .field("wall_ms", stream_ms),
        )
        .field("monolithic_peak_rss_mb", rss_json(monolithic_peak))
        .field("stream_peak_rss_mb", rss_json(stream_peak))
}

/// The ungated full-preset affordability entry: one streaming
/// generate-and-simulate pass over full-scale September-2013 London.
fn full_record() -> JsonValue {
    let config = ScalePreset::Full.apply(TraceConfig::london_sep2013());
    let users = config.users;
    println!("\n=== Full preset, streaming affordability ({users} users) ===");
    let generator = TraceGenerator::new(config, SEED).workers(WORKERS);
    let sim = Simulator::new(SimConfig {
        threads: WORKERS,
        ..Default::default()
    });
    reset_peak_rss();
    let start = Instant::now();
    let mut stream = generator.segments().expect("valid preset");
    let report = sim.simulate(&mut stream);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let peak = peak_rss_mb();
    let sessions: u64 = report.swarms.iter().map(|s| s.sessions).sum();
    let offload = report.total.offload_share();
    let savings_v = report.total_savings(&consume_local::energy::EnergyParams::valancius());
    let savings_b = report.total_savings(&consume_local::energy::EnergyParams::baliga());
    println!(
        "stream generate+simulate={:.1} s ({sessions} sessions, {} swarms), peak RSS {} MB",
        wall_ms / 1e3,
        report.swarms.len(),
        peak.map_or("?".into(), |m| format!("{m:.0}")),
    );
    println!(
        "full-scale London: offload {:.1}%, savings valancius {:.1}% / baliga {:.1}%",
        offload * 100.0,
        savings_v.unwrap_or(0.0) * 100.0,
        savings_b.unwrap_or(0.0) * 100.0,
    );
    let savings = |s: Option<f64>| s.map_or(JsonValue::Null, JsonValue::Num);
    JsonValue::object()
        .field("preset", "full")
        .field("seed", SEED)
        .field("users", u64::from(users))
        .field("sessions", sessions)
        .field("stream_workers", WORKERS)
        .field("engine_threads", WORKERS)
        .field("stream_generate_simulate_wall_ms", wall_ms)
        .field("peak_rss_mb", rss_json(peak))
        .field("swarms", report.swarms.len())
        .field("offload_share", offload)
        .field(
            "savings",
            JsonValue::object()
                .field("valancius", savings(savings_v))
                .field("baliga", savings(savings_b)),
        )
}

fn write_bench_record() {
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok();
    let reps = timed_reps();
    let large = large_record(reps);
    let mut doc = JsonValue::object()
        .field("schema", "consume-local/bench-v1")
        .field("pr", 5u64)
        .field("quick", quick)
        .field("baseline_commit", "4bee6a6")
        .field("large_gated", large);
    if std::env::var("CL_BENCH_SKIP_FULL").is_err() {
        doc = doc.field("full_preset", full_record());
    } else {
        println!("\n[skip] CL_BENCH_SKIP_FULL set — omitting the full-preset pass");
    }
    let path = workspace_root().join("BENCH_5.json");
    // Hard-fail on a write error: CI's regression gate reads this file next,
    // and silently keeping the committed copy would make the gate compare
    // the baseline against itself.
    match consume_local::export::write_text(&path, &(doc.render() + "\n")) {
        Ok(()) => println!("  [json] {}", path.display()),
        Err(e) => panic!("failed to write {}: {e}", path.display()),
    }
}

fn benches(c: &mut Criterion) {
    write_bench_record();
    // Criterion kernels at smoke scale so the timed closures stay short.
    let config = ScalePreset::Smoke.apply(TraceConfig::london_sep2013());
    let generator = TraceGenerator::new(config, SEED);
    let trace = generator.generate().expect("valid preset");
    let segmented = SegmentedStore::from_trace(&trace);
    let sim = Simulator::new(SimConfig {
        threads: 1,
        ..Default::default()
    });
    let mut group = c.benchmark_group("segmented_store");
    group.sample_size(10);
    group.bench_function("generate_segmented_smoke", |b| {
        b.iter(|| generator.generate_segmented().expect("valid preset"))
    });
    group.bench_function("engine_segmented_smoke_t1", |b| {
        b.iter(|| sim.simulate(&segmented))
    });
    group.bench_function("stream_end_to_end_smoke_t1", |b| {
        b.iter(|| {
            let mut stream = generator.segments().expect("valid preset");
            sim.simulate(&mut stream)
        })
    });
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
