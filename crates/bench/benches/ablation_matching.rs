//! Ablation A1 — matching strategy: the paper's closest-first managed
//! matcher vs locality-oblivious random matching. Same transfer volume,
//! different layer mix, different energy outcome.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::prelude::*;
use consume_local::swarm::matching::uniform_window;
use consume_local::swarm::{HierarchicalMatcher, Matcher, Peer, RandomMatcher};
use consume_local::topology::{IspTopology, Layer};
use consume_local_bench::{pct, save_csv, shared_experiment};
use rand::Rng;
use rand::SeedableRng;

fn regenerate() {
    println!("\n=== Ablation A1: hierarchical vs random peer matching ===");
    let exp = shared_experiment();
    let mut csv = String::from("matcher,offload,exp_share,pop_share,core_share,valancius,baliga\n");
    for (label, matcher) in [
        ("hierarchical", MatcherKind::Hierarchical),
        ("random", MatcherKind::Random),
    ] {
        let mut cfg = exp.sim_config().clone();
        cfg.matcher = matcher;
        let report = exp.resimulate(cfg).expect("valid config");
        let peer = report.total.peer_bytes().max(1) as f64;
        let shares: Vec<f64> = report
            .total
            .peer_bytes_by_layer
            .iter()
            .map(|&b| b as f64 / peer)
            .collect();
        let v = report
            .total_savings(&EnergyParams::valancius())
            .unwrap_or(0.0);
        let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
        println!(
            "{label:>13}: offload {} | peer bytes at ExP {} / PoP {} / Core {} | savings V {} B {}",
            pct(report.total.offload_share()),
            pct(shares[0]),
            pct(shares[1]),
            pct(shares[2]),
            pct(v),
            pct(b),
        );
        csv.push_str(&format!(
            "{label},{},{},{},{},{v},{b}\n",
            report.total.offload_share(),
            shares[0],
            shares[1],
            shares[2]
        ));
    }
    save_csv("ablation_matching.csv", &csv);
    println!("closest-first matching keeps more bytes exchange-local; random matching");
    println!("moves the same bytes but burns more network energy per bit.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    // Kernel: one 200-peer window under each matcher.
    let topo = IspTopology::london_table3().expect("published topology");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let peers: Vec<Peer> = (0..200)
        .map(|_| Peer {
            isp: IspId(rng.gen_range(0..2)),
            location: topo.random_location(&mut rng),
        })
        .collect();
    let (needs, budgets) = uniform_window(peers.len(), 1_875_000, 1_875_000);
    c.bench_function("matching/hierarchical_200peers", |b| {
        let mut m = HierarchicalMatcher::new();
        b.iter(|| m.match_window(&peers, &needs, &budgets, 0))
    });
    c.bench_function("matching/random_200peers", |b| {
        let mut m = RandomMatcher::new(7);
        b.iter(|| m.match_window(&peers, &needs, &budgets, 0))
    });
    // Sanity: both preserve volume.
    let hier = HierarchicalMatcher::new().match_window(&peers, &needs, &budgets, 0);
    let rand_out = RandomMatcher::new(7).match_window(&peers, &needs, &budgets, 0);
    assert_eq!(hier.peer_bytes(), rand_out.peer_bytes());
    assert!(
        hier.peer_bytes_by_layer[Layer::ExchangePoint.index()]
            >= rand_out.peer_bytes_by_layer[Layer::ExchangePoint.index()]
    );
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(group);
