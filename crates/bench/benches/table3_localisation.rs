//! Table III — localisation probabilities of the metropolitan tree layers
//! for the published ISP-1 topology.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use consume_local::figures::tables;
use consume_local::topology::IspTopology;
use consume_local_bench::save_csv;

fn regenerate() {
    println!("\n=== Table III: localisation probabilities (ISP-1) ===");
    let rows = tables::table3();
    println!("{}", tables::render_table3(&rows));
    let mut csv = String::from("layer,count,probability\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{}\n",
            r.layer.short_name(),
            r.count,
            r.probability
        ));
    }
    save_csv("table3_localisation.csv", &csv);
}

fn benches(c: &mut Criterion) {
    regenerate();
    let topo = IspTopology::london_table3().expect("published topology");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let users: Vec<_> = (0..1_000).map(|_| topo.random_location(&mut rng)).collect();
    // Kernel: pairwise closeness classification over 1 000 users.
    c.bench_function("table3/closeness_1k_pairs", |b| {
        b.iter(|| {
            let mut counts = [0u32; 3];
            for pair in users.windows(2) {
                counts[topo.closeness(&pair[0], &pair[1]).index()] += 1;
            }
            counts
        })
    });
}

criterion_group!(group, benches);
criterion_main!(group);
