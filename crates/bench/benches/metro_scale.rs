//! Metro-scale sharded-run perf record (`BENCH_8.json`).
//!
//! PR 10 breaks the 4 M-user ceiling: the session sort key is re-packed
//! from measured maxima, quiescent swarm state spills to frozen form, and
//! the metro presets (`consume_local::trace::metro`) compose several
//! city-scale workloads with disjoint id ranges so a run can be
//! **sharded by city** (= by swarm) and folded back byte-identically
//! through `Simulator::simulate_sharded`. This bench records:
//!
//! 1. **Small metro, gated** — a 3-city composition at 1/500 city scale:
//!    the union-stream end-to-end pass vs the sequential sharded pass,
//!    multi-rep, byte-identity asserted. These entries use plain `wall_ms`
//!    field names, so CI's `bench_guard` gates them like every other
//!    kernel.
//! 2. **Ten-million preset, affordability** — `MetroConfig::ten_million()`
//!    (5 cities × 0.6-scale London ≈ 10.8 M users, > 2²² per-user ids on
//!    every session): one sharded end-to-end pass and one union-stream
//!    pass, reports asserted **byte-identical before the record is
//!    written**. Fields are named `*_wall_ms` so the gate skips them (a
//!    single rep of a minutes-long run is affordability tracking, not a
//!    gateable kernel). The sharded pass's `sharded_peak_rss_mb` is the
//!    scale headline: only one city's engine state is ever resident, so a
//!    10.8 M-user month fits the full-London RSS envelope.
//!
//! Both sections record per-pipeline peak RSS (`VmHWM`, best-effort
//! watermark reset between pipelines). The record lands in `BENCH_8.json`
//! at the workspace root (schema `consume-local/bench-v1`); CI's
//! `bench-quick` job regenerates it with `CL_SWEEP_QUICK=1` and gates the
//! `wall_ms` entries against the committed record and, run-over-run, the
//! previous CI artifact. Set `CL_BENCH_SKIP_FULL=1` to omit the
//! ten-million pass locally (the guard skips missing entries).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::export::json::JsonValue;
use consume_local::prelude::*;
use consume_local::trace::metro::{MetroConfig, MetroTrace};
use consume_local_bench::{peak_rss_mb, reset_peak_rss, workspace_root};

/// Seed of the reference scenarios (same as the other perf records).
const SEED: u64 = 2018;

/// Generation workers / engine threads (part of the recorded
/// configuration, as in `BENCH_5.json`).
const WORKERS: usize = 8;

fn timed_reps() -> usize {
    // Multi-rep even in quick mode: these numbers are gated, and a single
    // rep is one scheduler hiccup away from a false alarm.
    if std::env::var("CL_SWEEP_QUICK").is_ok() {
        2
    } else {
        3
    }
}

/// Best-of-N without a warm-up call, returning the last repetition's
/// output; the previous repetition is dropped before the next one builds
/// so the recorded peak-RSS readings stay unbiased.
fn timed_cold<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        drop(last.take());
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn rss_json(mb: Option<f64>) -> JsonValue {
    mb.map_or(JsonValue::Null, JsonValue::Num)
}

/// One sharded end-to-end pass: every city simulated in turn, reports
/// folded through the commutative merge.
fn run_sharded(metro: &MetroTrace, sim: &Simulator) -> SimReport {
    sim.simulate_sharded(
        metro
            .shard_streams()
            .expect("valid metro config")
            .iter_mut()
            .map(|s| &mut *s),
    )
    .expect("city shards partition the swarm space")
}

/// One union-stream end-to-end pass: all cities merged day by day.
fn run_union(metro: &MetroTrace, sim: &Simulator) -> SimReport {
    sim.simulate(&mut metro.stream().expect("valid metro config"))
}

/// The gated small-metro section: union vs sharded end-to-end passes,
/// byte-identity asserted, per-pipeline peak RSS.
fn metro_gated(reps: usize) -> JsonValue {
    let config = MetroConfig::five_city()
        .with_cities(3)
        .city_scaled(0.002)
        .expect("valid scale");
    let users = config.users();
    let cities = config.cities;
    println!("\n=== Small metro, gated ({cities} cities, {users} users) ===");
    let metro = MetroTrace::new(config, SEED)
        .expect("valid metro config")
        .workers(WORKERS);
    let sim = Simulator::new(SimConfig {
        threads: WORKERS,
        ..Default::default()
    });

    reset_peak_rss();
    let (union_ms, union_report) = timed_cold(reps, || run_union(&metro, &sim));
    let union_peak = peak_rss_mb();

    reset_peak_rss();
    let (sharded_ms, sharded_report) = timed_cold(reps, || run_sharded(&metro, &sim));
    let sharded_peak = peak_rss_mb();

    // The acceptance bar for the whole sharded mode: identical bytes.
    assert_eq!(
        sharded_report, union_report,
        "sharded metro report must be byte-identical to the union stream"
    );
    let sessions: u64 = union_report.swarms.iter().map(|s| s.sessions).sum();

    println!(
        "union={union_ms:.0} ms sharded={sharded_ms:.0} ms \
         ({sessions} sessions, {} swarms)",
        union_report.swarms.len()
    );
    println!(
        "peak RSS: union {} MB, sharded {} MB",
        union_peak.map_or("?".into(), |m| format!("{m:.0}")),
        sharded_peak.map_or("?".into(), |m| format!("{m:.0}")),
    );
    JsonValue::object()
        .field("preset", "metro-small")
        .field("seed", SEED)
        .field("cities", u64::from(cities))
        .field("users", users)
        .field("sessions", sessions)
        .field(
            "union_end_to_end",
            JsonValue::object()
                .field("threads", WORKERS)
                .field("wall_ms", union_ms),
        )
        .field(
            "sharded_end_to_end",
            JsonValue::object()
                .field("threads", WORKERS)
                .field("wall_ms", sharded_ms),
        )
        .field("union_peak_rss_mb", rss_json(union_peak))
        .field("sharded_peak_rss_mb", rss_json(sharded_peak))
}

/// The ungated ten-million affordability entry: the ≥ 10 M-user metro
/// month end to end, sharded then union, byte-identity asserted.
fn ten_million_record() -> JsonValue {
    let config = MetroConfig::ten_million();
    let users = config.users();
    let cities = config.cities;
    println!("\n=== Ten-million preset, affordability ({cities} cities, {users} users) ===");
    assert!(users > 10_000_000, "the preset must clear 10 M users");
    let metro = MetroTrace::new(config, SEED)
        .expect("valid metro config")
        .workers(WORKERS);
    let sim = Simulator::new(SimConfig {
        threads: WORKERS,
        ..Default::default()
    });

    // Sharded first: its watermark is the scale headline (one city's
    // engine state resident at a time).
    reset_peak_rss();
    let start = Instant::now();
    let sharded_report = run_sharded(&metro, &sim);
    let sharded_ms = start.elapsed().as_secs_f64() * 1e3;
    let sharded_peak = peak_rss_mb();

    reset_peak_rss();
    let start = Instant::now();
    let union_report = run_union(&metro, &sim);
    let union_ms = start.elapsed().as_secs_f64() * 1e3;
    let union_peak = peak_rss_mb();

    assert_eq!(
        sharded_report, union_report,
        "10.8 M-user sharded report must be byte-identical to the union stream"
    );
    assert!(
        union_report.warnings.is_empty(),
        "the ten-million preset must stay on the compact sort-key fast path"
    );
    let sessions: u64 = union_report.swarms.iter().map(|s| s.sessions).sum();
    let offload = union_report.total.offload_share();

    println!(
        "sharded={:.1} s union={:.1} s ({sessions} sessions, {} swarms)",
        sharded_ms / 1e3,
        union_ms / 1e3,
        union_report.swarms.len()
    );
    println!(
        "peak RSS: sharded {} MB, union {} MB | offload {:.1}%",
        sharded_peak.map_or("?".into(), |m| format!("{m:.0}")),
        union_peak.map_or("?".into(), |m| format!("{m:.0}")),
        offload * 100.0,
    );
    JsonValue::object()
        .field("preset", "metro-ten-million")
        .field("seed", SEED)
        .field("cities", u64::from(cities))
        .field("users", users)
        .field("sessions", sessions)
        .field("stream_workers", WORKERS)
        .field("engine_threads", WORKERS)
        .field("sharded_end_to_end_wall_ms", sharded_ms)
        .field("union_end_to_end_wall_ms", union_ms)
        .field("sharded_peak_rss_mb", rss_json(sharded_peak))
        .field("union_peak_rss_mb", rss_json(union_peak))
        .field("swarms", union_report.swarms.len())
        .field("offload_share", offload)
}

fn write_bench_record() {
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok();
    let reps = timed_reps();
    let gated = metro_gated(reps);
    let mut doc = JsonValue::object()
        .field("schema", "consume-local/bench-v1")
        .field("pr", 10u64)
        .field("quick", quick)
        .field("baseline_commit", "7abab86")
        .field("metro_gated", gated);
    if std::env::var("CL_BENCH_SKIP_FULL").is_err() {
        doc = doc.field("ten_million", ten_million_record());
    } else {
        println!("\n[skip] CL_BENCH_SKIP_FULL set — omitting the ten-million pass");
    }
    let path = workspace_root().join("BENCH_8.json");
    // Hard-fail on a write error: CI's regression gate reads this file next,
    // and silently keeping the committed copy would make the gate compare
    // the baseline against itself.
    match consume_local::export::write_text(&path, &(doc.render() + "\n")) {
        Ok(()) => println!("  [json] {}", path.display()),
        Err(e) => panic!("failed to write {}: {e}", path.display()),
    }
}

fn benches(c: &mut Criterion) {
    write_bench_record();
    // Criterion kernels at smoke scale so the timed closures stay short.
    let metro = MetroTrace::new(
        MetroConfig::five_city()
            .with_cities(2)
            .city_scaled(0.0005)
            .expect("valid scale"),
        SEED,
    )
    .expect("valid metro config");
    let sim = Simulator::new(SimConfig {
        threads: 1,
        ..Default::default()
    });
    let mut group = c.benchmark_group("metro_scale");
    group.sample_size(10);
    group.bench_function("metro_union_smoke_t1", |b| {
        b.iter(|| run_union(&metro, &sim))
    });
    group.bench_function("metro_sharded_smoke_t1", |b| {
        b.iter(|| run_sharded(&metro, &sim))
    });
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
