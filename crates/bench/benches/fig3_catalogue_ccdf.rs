//! Fig. 3 — CCDF of per-swarm capacities (left panel) and per-swarm energy
//! savings (right panel) across the whole content catalogue, plus the
//! §IV-B-2 headline statistics (median vs top-1 % savings).

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::figures::fig3;
use consume_local_bench::{bench_scale, pct, save_csv, shared_experiment};

fn regenerate() {
    println!(
        "\n=== Fig. 3: catalogue-wide distributions (scale {}) ===",
        bench_scale()
    );
    let exp = shared_experiment();
    let data = fig3(exp.report());

    println!("{} swarms with traffic", data.swarms);
    println!("capacity CCDF (left panel):");
    for (x, y) in data.capacity_ccdf.iter().step_by(10) {
        println!("  P(capacity > {x:9.4}) = {y:.4}");
    }
    let mut csv = String::from("capacity,ccdf\n");
    for (x, y) in &data.capacity_ccdf {
        csv.push_str(&format!("{x},{y}\n"));
    }
    save_csv("fig3_capacity_ccdf.csv", &csv);

    println!("savings CCDF (right panel) and headline stats:");
    let mut csv = String::from("model,savings,ccdf\n");
    for (model, series) in &data.savings_ccdf {
        for (x, y) in series {
            csv.push_str(&format!("{model:?},{x},{y}\n"));
        }
    }
    save_csv("fig3_savings_ccdf.csv", &csv);
    for ((model, median), (_, top)) in data.median_savings.iter().zip(&data.top1pct_savings) {
        println!(
            "  {model:?}: median per-swarm savings {} | top-1% swarms (demand-weighted) {}",
            pct(*median),
            pct(*top)
        );
    }
    println!("paper (full scale): median ≈ 2%, top-1% > 21% (Baliga) / 33% (Valancius)");
}

fn benches(c: &mut Criterion) {
    regenerate();
    let exp = shared_experiment();
    c.bench_function("fig3/distribution_extraction", |b| {
        b.iter(|| fig3(exp.report()))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
