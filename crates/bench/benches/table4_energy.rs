//! Table IV — the per-bit energy parameters of both published models, plus
//! the derived per-bit delivery costs ψ the rest of the reproduction uses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use consume_local::energy::{CostModel, EnergyParams, Traffic};
use consume_local::figures::tables;
use consume_local::topology::Layer;
use consume_local_bench::save_csv;

fn regenerate() {
    println!("\n=== Table IV: energy parameters ===");
    let rows = tables::table4();
    println!("{}", tables::render_table4(&rows));
    let mut csv = String::from("variable,symbol,valancius,baliga\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{}\n",
            r.variable, r.symbol, r.valancius, r.baliga
        ));
    }
    save_csv("table4_energy.csv", &csv);

    println!("Derived per-bit delivery costs (nJ/bit):");
    for params in EnergyParams::published() {
        let m = CostModel::new(params);
        println!(
            "  {:<10} ψ_s = {:8.2}   ψ_p(ExP) = {:7.2}   ψ_p(PoP) = {:7.2}   ψ_p(Core) = {:7.2}",
            params.name(),
            m.server_cost_per_bit().as_nanojoules(),
            m.peer_cost_per_bit(Layer::ExchangePoint).as_nanojoules(),
            m.peer_cost_per_bit(Layer::PointOfPresence).as_nanojoules(),
            m.peer_cost_per_bit(Layer::Core).as_nanojoules(),
        );
    }
}

fn benches(c: &mut Criterion) {
    regenerate();
    let model = CostModel::new(EnergyParams::valancius());
    let traffic = Traffic::from_bytes(1_875_000);
    c.bench_function("table4/energy_pricing", |b| {
        b.iter(|| {
            let mut total = model.server_energy(black_box(traffic));
            for layer in Layer::ALL {
                total += model.peer_energy(black_box(traffic), layer);
            }
            total
        })
    });
}

criterion_group!(group, benches);
criterion_main!(group);
