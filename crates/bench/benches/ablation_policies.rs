//! Ablation A2 — swarm-splitting policy: the paper's ISP-friendly,
//! bitrate-split swarms versus each relaxation. Restrictions shrink swarms
//! and therefore savings; ISP-friendliness is the "lower bound" policy.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::prelude::*;
use consume_local_bench::{pct, save_csv, shared_experiment};

fn regenerate() {
    println!("\n=== Ablation A2: swarm-splitting policies ===");
    let exp = shared_experiment();
    let policies = [
        ("isp+bitrate (paper)", SwarmPolicy::paper_default()),
        ("bitrate only", SwarmPolicy::cross_isp()),
        ("isp only", SwarmPolicy::mixed_bitrate()),
        ("content only", SwarmPolicy::content_only()),
    ];
    let mut csv = String::from("policy,swarms,offload,valancius,baliga\n");
    for (label, policy) in policies {
        let mut cfg = exp.sim_config().clone();
        cfg.policy = policy;
        let report = exp.resimulate(cfg).expect("valid config");
        let v = report
            .total_savings(&EnergyParams::valancius())
            .unwrap_or(0.0);
        let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
        println!(
            "{label:>20}: {:>6} swarms | offload {} | savings V {} B {}",
            report.swarms.len(),
            pct(report.total.offload_share()),
            pct(v),
            pct(b),
        );
        csv.push_str(&format!(
            "{label},{},{},{v},{b}\n",
            report.swarms.len(),
            report.total.offload_share()
        ));
    }
    save_csv("ablation_policies.csv", &csv);
    println!("every split the paper applies costs offload — the reported savings are a");
    println!("lower bound, exactly as §IV-B-1 argues.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    // Kernel: a full simulation run at 1/1000 scale under the default policy.
    let trace = TraceGenerator::new(
        TraceConfig::london_sep2013()
            .scaled(0.001)
            .expect("valid scale"),
        5,
    )
    .generate()
    .expect("valid config");
    c.bench_function("policies/simulation_0.001", |b| {
        b.iter(|| Simulator::new(SimConfig::default()).simulate(&trace))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
