//! The closed form's raison d'être: Eq. 12 evaluates in nanoseconds where
//! the brute-force Poisson summation takes microseconds and the trace-driven
//! simulation takes seconds — that is what makes it usable "for network
//! planning purposes" (§IV-B-2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use consume_local::analytics::{numeric, planning, SavingsModel};
use consume_local::energy::{CostModel, EnergyParams};
use consume_local::topology::IspTopology;

fn regenerate() {
    println!("\n=== Closed form vs numeric reference ===");
    let topo = IspTopology::london_table3().expect("published topology");
    let model = SavingsModel::new(EnergyParams::valancius(), &topo, 1.0).expect("valid ratio");
    let cost = CostModel::new(EnergyParams::valancius());
    println!("capacity   closed-form S    numeric S      |Δ|");
    for c in [0.1, 1.0, 10.0, 100.0] {
        let closed = model.savings(c);
        let brute = numeric::savings_numeric(&cost, &topo, 1.0, c);
        println!(
            "{c:>8} {closed:>14.6} {brute:>12.6} {:>10.2e}",
            (closed - brute).abs()
        );
    }
    let target = planning::capacity_for_savings(&model, 0.30).expect("reachable");
    println!("planning query: S(c) = 30% at c ≈ {target:.2}");
}

fn benches(c: &mut Criterion) {
    regenerate();
    let topo = IspTopology::london_table3().expect("published topology");
    let model = SavingsModel::new(EnergyParams::valancius(), &topo, 1.0).expect("valid ratio");
    let cost = CostModel::new(EnergyParams::valancius());
    c.bench_function("closed_form/savings_c10", |b| {
        b.iter(|| model.savings(black_box(10.0)))
    });
    c.bench_function("numeric/savings_c10", |b| {
        b.iter(|| numeric::savings_numeric(&cost, &topo, 1.0, black_box(10.0)))
    });
    c.bench_function("closed_form/planning_inverse", |b| {
        b.iter(|| planning::capacity_for_savings(&model, black_box(0.30)))
    });
}

criterion_group!(group, benches);
criterion_main!(group);
