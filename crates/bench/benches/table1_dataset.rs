//! Table I — dataset description: users, IP addresses and sessions for
//! September 2013 and July 2014, measured from the synthetic traces and
//! projected to full scale next to the paper's values.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::figures::tables;
use consume_local::trace::stats::{PAPER_JUL2014, PAPER_SEP2013};
use consume_local::trace::{TraceConfig, TraceGenerator};
use consume_local_bench::{bench_scale, save_csv};

fn regenerate() {
    println!("\n=== Table I: description of the dataset ===");
    let scale = bench_scale();
    let mut csv = String::from("month,row,measured,projected,paper\n");
    for (label, config, paper) in [
        ("Sep 2013", TraceConfig::london_sep2013(), PAPER_SEP2013),
        ("July 2014", TraceConfig::london_jul2014(), PAPER_JUL2014),
    ] {
        let trace = TraceGenerator::new(config.scaled(scale).expect("valid scale"), 2013)
            .generate()
            .expect("valid config");
        let table = tables::table1(label, &trace, scale);
        println!("{}", table.render(paper));
        for (row, measured, projected, target) in [
            (
                "users",
                table.measured.active_users as f64,
                table.projected_users,
                paper.0,
            ),
            (
                "ips",
                table.measured.active_households as f64,
                table.projected_ips,
                paper.1,
            ),
            (
                "sessions",
                table.measured.sessions as f64,
                table.projected_sessions,
                paper.2,
            ),
        ] {
            csv.push_str(&format!("{label},{row},{measured},{projected},{target}\n"));
        }
    }
    save_csv("table1_dataset.csv", &csv);
}

fn benches(c: &mut Criterion) {
    regenerate();
    // Kernel: generating a month-long trace at 1/1000 scale.
    let config = TraceConfig::london_sep2013()
        .scaled(0.001)
        .expect("valid scale");
    c.bench_function("table1/trace_generation_0.001", |b| {
        b.iter(|| {
            TraceGenerator::new(config.clone(), 7)
                .generate()
                .expect("valid config")
        })
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
