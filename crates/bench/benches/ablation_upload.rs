//! Ablation A4 — upload capability: the paper's q/β sweep extended past
//! 1.0 and compared against an absolute-uplink model (the ≈4.3 Mb/s average
//! UK uplink the paper cites). Beyond q = β extra uplink is wasted for
//! streaming delivery — "upload bandwidth is not a limitation".

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::prelude::*;
use consume_local_bench::{pct, save_csv, shared_experiment};

fn regenerate() {
    println!("\n=== Ablation A4: upload capability ===");
    let exp = shared_experiment();
    let mut csv = String::from("upload,offload,valancius,baliga\n");
    for ratio in [0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0] {
        let mut cfg = exp.sim_config().clone();
        cfg.upload = UploadModel::Ratio(ratio);
        let report = exp.resimulate(cfg).expect("valid config");
        let v = report
            .total_savings(&EnergyParams::valancius())
            .unwrap_or(0.0);
        let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
        println!(
            "q/β = {ratio:>3}: offload {} | savings V {} B {}",
            pct(report.total.offload_share()),
            pct(v),
            pct(b)
        );
        csv.push_str(&format!(
            "ratio {ratio},{},{v},{b}\n",
            report.total.offload_share()
        ));
    }
    // The 2017 UK average uplink from the paper's §IV-B-1.
    let mut cfg = exp.sim_config().clone();
    cfg.upload = UploadModel::AbsoluteBps(4_300_000);
    let report = exp.resimulate(cfg).expect("valid config");
    let v = report
        .total_savings(&EnergyParams::valancius())
        .unwrap_or(0.0);
    let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
    println!(
        "4.3 Mb/s : offload {} | savings V {} B {}   (uncapped UK-average uplink)",
        pct(report.total.offload_share()),
        pct(v),
        pct(b)
    );
    csv.push_str(&format!(
        "4.3Mbps,{},{v},{b}\n",
        report.total.offload_share()
    ));
    save_csv("ablation_upload.csv", &csv);
    println!("savings grow linearly with q/β up to 1.0 and saturate beyond — peers cannot");
    println!("usefully upload faster than the stream's bitrate to a single downloader.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    let trace = TraceGenerator::new(
        TraceConfig::london_sep2013()
            .scaled(0.001)
            .expect("valid scale"),
        5,
    )
    .generate()
    .expect("valid config");
    c.bench_function("upload/simulation_absolute_4.3Mbps", |b| {
        let cfg = SimConfig {
            upload: UploadModel::AbsoluteBps(4_300_000),
            ..Default::default()
        };
        let sim = Simulator::new(cfg);
        b.iter(|| sim.simulate(&trace))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
