//! Fig. 4 — aggregate energy savings per day across the month, for ISPs 1,
//! 4 and 5 (the paper's selection), simulation vs Eq. 12 theory, under both
//! energy models.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::figures::fig4;
use consume_local::prelude::*;
use consume_local_bench::{bench_scale, pct, save_csv, shared_experiment};

const ISPS: [IspId; 3] = [IspId(0), IspId(3), IspId(4)];

fn regenerate() {
    println!(
        "\n=== Fig. 4: daily aggregate savings (scale {}) ===",
        bench_scale()
    );
    let exp = shared_experiment();
    let registry = exp.trace().config().registry.clone();
    let series = fig4(exp.report(), &registry, &ISPS);

    let mut csv = String::from("model,isp,day,sim,theory\n");
    for s in &series {
        let theory: std::collections::HashMap<u32, f64> = s.theory.iter().copied().collect();
        let mean_theory = if s.theory.is_empty() {
            0.0
        } else {
            s.theory.iter().map(|(_, v)| v).sum::<f64>() / s.theory.len() as f64
        };
        println!(
            "{} / {:?}: monthly mean sim {} | theory {} over {} days",
            s.isp,
            s.model,
            pct(s.sim_monthly_mean()),
            pct(mean_theory),
            s.sim.len()
        );
        for &(day, sim) in &s.sim {
            csv.push_str(&format!(
                "{:?},{},{},{},{}\n",
                s.model,
                s.isp,
                day,
                sim,
                theory.get(&day).copied().unwrap_or(f64::NAN)
            ));
        }
    }
    save_csv("fig4_daily_savings.csv", &csv);
    println!("paper (full scale): biggest ISP averages ≈30% (Valancius) / ≈18% (Baliga);");
    println!("scaled runs sit lower (smaller swarms) with the same ISP/model ordering.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    let exp = shared_experiment();
    let registry = exp.trace().config().registry.clone();
    c.bench_function("fig4/daily_aggregation", |b| {
        b.iter(|| fig4(exp.report(), &registry, &ISPS))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
