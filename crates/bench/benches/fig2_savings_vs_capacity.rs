//! Fig. 2 — energy savings vs swarm capacity: Eq. 12 theory curves with
//! trace-driven simulation dots, for the paper's three exemplar popularity
//! tiers (~100 K / ~10 K / ~1 K monthly views), both energy models, the
//! top-5 ISPs, and q/β ∈ {0.2, 0.4, 0.6, 0.8, 1.0}.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::figures::{fig2, Fig2Options};
use consume_local::prelude::*;
use consume_local::trace::Popularity;
use consume_local_bench::{pct, save_csv};

/// The exemplar trace: a 3-item catalogue whose views ladder down the
/// paper's tiers at *absolute* (unscaled) volumes, so the capacities match
/// the paper's x-axis directly.
fn exemplar_trace() -> Trace {
    let mut config = TraceConfig::london_sep2013();
    config.catalogue_size = 3;
    config.popularity = Popularity::Zipf { exponent: 3.35 };
    config.sessions_target = 112_000;
    config.users = 40_000;
    TraceGenerator::new(config, 2013)
        .generate()
        .expect("valid config")
}

fn regenerate() {
    println!("\n=== Fig. 2: savings vs capacity (theory curves + simulation dots) ===");
    let trace = exemplar_trace();
    let opts = Fig2Options::default();
    let panels = fig2(&trace, &SimConfig::default(), &opts);

    let mut dots_csv = String::from("model,tier,isp,ratio,capacity,sim,theory\n");
    let mut curves_csv = String::from("model,tier,ratio,capacity,savings\n");
    for panel in &panels {
        println!(
            "--- {:?} / {} (item {}, ≈{:.0} expected views) ---",
            panel.model,
            panel.tier.label(),
            panel.item,
            panel.expected_views
        );
        for ratio in &opts.ratios {
            let dots: Vec<_> = panel
                .dots
                .iter()
                .filter(|d| (d.ratio - ratio).abs() < 1e-9)
                .collect();
            if dots.is_empty() {
                continue;
            }
            let wmean = |f: &dyn Fn(&&consume_local::figures::Fig2Dot) -> f64| -> f64 {
                let num: f64 = dots.iter().map(|d| f(d) * d.capacity).sum();
                let den: f64 = dots.iter().map(|d| d.capacity).sum();
                num / den.max(1e-12)
            };
            println!(
                "  q/β={ratio}: {} dots, cap {:.2}–{:.2}, sim {} vs theory {}",
                dots.len(),
                dots.iter()
                    .map(|d| d.capacity)
                    .fold(f64::INFINITY, f64::min),
                dots.iter().map(|d| d.capacity).fold(0.0, f64::max),
                pct(wmean(&|d| d.sim)),
                pct(wmean(&|d| d.theory)),
            );
        }
        println!(
            "  mean |sim − theory| over dots: {}",
            pct(panel.mean_theory_gap())
        );
        for d in &panel.dots {
            dots_csv.push_str(&format!(
                "{:?},{:?},{},{},{},{},{}\n",
                panel.model, panel.tier, d.isp, d.ratio, d.capacity, d.sim, d.theory
            ));
        }
        for (ratio, curve) in &panel.curves {
            for (c, s) in curve {
                curves_csv.push_str(&format!(
                    "{:?},{:?},{},{},{}\n",
                    panel.model, panel.tier, ratio, c, s
                ));
            }
        }
    }
    save_csv("fig2_dots.csv", &dots_csv);
    save_csv("fig2_curves.csv", &curves_csv);
}

fn benches(c: &mut Criterion) {
    regenerate();
    let trace = exemplar_trace();
    // Kernel: one full-ratio simulation of the exemplar swarms.
    c.bench_function("fig2/exemplar_simulation_ratio1", |b| {
        b.iter(|| Simulator::new(SimConfig::with_ratio(1.0)).simulate(&trace))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
