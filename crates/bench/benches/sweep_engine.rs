//! The sweep subsystem's benchmark and the engine hot-path perf record.
//!
//! Two jobs:
//!
//! 1. **Engine hot path** — times `Simulator::run` on the reference
//!    large-scale scenario (the `medium` preset: 18 000 users / ≈ 117 K
//!    sessions, ≥ 10 K-user bar) at 1 and 8 threads, and compares against
//!    the recorded pre-optimization baseline;
//! 2. **Scenario sweep** — runs a parameter-grid sweep through the
//!    [`SweepRunner`] (reduced `ci_quick` grid when `CL_SWEEP_QUICK` is
//!    set, the `ablations` grid at small scale otherwise).
//!
//! Both results land in `BENCH_2.json` at the workspace root — the perf
//! trajectory record CI regenerates and uploads on every run.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::export::json::JsonValue;
use consume_local::prelude::*;
use consume_local::sweep::{SweepConfig, SweepGrid, SweepRunner};
use consume_local::trace::ScalePreset;

/// Seed of the reference engine scenario (also used by the recorded
/// baseline measurements below).
const ENGINE_SEED: u64 = 2018;

/// Pre-optimization engine wall-times for the reference scenario, measured
/// at the seed commit (73e63f1, PR 1) on the development machine:
/// best-of-3 after warm-up, `medium` preset, default `SimConfig`.
/// Absolute times differ across machines; the committed `BENCH_2.json`
/// pairs these with same-machine post-optimization numbers.
const BASELINE_WALL_MS: [(usize, f64); 2] = [(1, 1595.7), (8, 1566.6)];

/// Best-of-3 wall time (ms) for one `Simulator::simulate`, after one warm-up.
fn time_run(sim: &Simulator, trace: &Trace) -> f64 {
    let _ = sim.simulate(trace);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let report = sim.simulate(trace);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&report);
        best = best.min(ms);
    }
    best
}

fn engine_hot_path() -> JsonValue {
    let config = ScalePreset::Medium.apply(TraceConfig::london_sep2013());
    let users = config.users;
    let trace = TraceGenerator::new(config, ENGINE_SEED)
        .generate()
        .expect("valid preset");
    println!(
        "\n=== Engine hot path ({} users, {} sessions) ===",
        users,
        trace.sessions().len()
    );
    let mut runs = Vec::new();
    for (threads, baseline_ms) in BASELINE_WALL_MS {
        let sim = Simulator::new(SimConfig {
            threads,
            ..Default::default()
        });
        let wall_ms = time_run(&sim, &trace);
        let speedup = consume_local::analytics::sweep::speedup(baseline_ms, wall_ms);
        println!(
            "threads={threads}: {wall_ms:.1} ms (baseline {baseline_ms:.1} ms, {}× speedup)",
            speedup.map_or("?".into(), |s| format!("{s:.2}"))
        );
        runs.push(
            JsonValue::object()
                .field("threads", threads)
                .field("wall_ms", wall_ms)
                .field("baseline_wall_ms", baseline_ms)
                .field("speedup", speedup.map_or(JsonValue::Null, JsonValue::Num)),
        );
    }
    JsonValue::object()
        .field(
            "scenario",
            "medium/london5/hierarchical/isp+bitrate/dt10/q1",
        )
        .field("seed", ENGINE_SEED)
        .field("users", u64::from(users))
        .field("sessions", trace.sessions().len())
        .field("baseline_commit", "73e63f1")
        .field("runs", runs)
}

fn sweep_results(quick: bool) -> JsonValue {
    let grid = if quick {
        SweepGrid::ci_quick()
    } else {
        SweepGrid::ablations(ScalePreset::Small)
    };
    let config = SweepConfig {
        grid,
        seed: ENGINE_SEED,
        ..Default::default()
    };
    let runner = SweepRunner::new(config).expect("bench grids are valid");
    println!(
        "=== Scenario sweep ({} scenarios, quick={quick}) ===",
        runner.scenarios().len()
    );
    let report = runner.run();
    if let Some(summary) = report.summary() {
        println!(
            "mean savings {:.1}%, total wall {:.1} s",
            summary.savings.mean * 100.0,
            summary.total_wall_ms / 1e3
        );
    }
    report.to_json()
}

fn write_bench_record() {
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok();
    let doc = JsonValue::object()
        .field("schema", "consume-local/bench-v1")
        .field("pr", 2u64)
        .field("quick", quick)
        .field("engine_hot_path", engine_hot_path())
        .field("sweep", sweep_results(quick));
    let path = consume_local_bench::workspace_root().join("BENCH_2.json");
    // Hard-fail on a write error so CI never uploads (or gates against) a
    // stale record that silently kept the committed bytes.
    match consume_local::export::write_text(&path, &(doc.render() + "\n")) {
        Ok(()) => println!("  [json] {}", path.display()),
        Err(e) => panic!("failed to write {}: {e}", path.display()),
    }
}

fn benches(c: &mut Criterion) {
    write_bench_record();
    // Criterion kernels at smoke scale so the timed closures stay short.
    let trace = TraceGenerator::new(
        ScalePreset::Smoke.apply(TraceConfig::london_sep2013()),
        ENGINE_SEED,
    )
    .generate()
    .expect("valid preset");
    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);
    let sequential = Simulator::new(SimConfig {
        threads: 1,
        ..Default::default()
    });
    group.bench_function("engine_smoke_t1", |b| {
        b.iter(|| sequential.simulate(&trace))
    });
    let runner = SweepRunner::new(SweepConfig {
        grid: SweepGrid::paper_point(),
        seed: ENGINE_SEED,
        ..Default::default()
    })
    .expect("valid grid");
    group
        .sample_size(3)
        .bench_function("sweep_paper_point", |b| b.iter(|| runner.run()));
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
