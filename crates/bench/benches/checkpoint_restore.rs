//! Checkpoint/restore perf record (`BENCH_7.json`).
//!
//! PR 9 lands crash-safe checkpointing: a long-running engine snapshots
//! its complete resumable state at a configurable cadence and, after a
//! crash, resumes from the newest snapshot byte-identically
//! (`consume_local_sim::checkpoint`). This bench records what that safety
//! costs on the `medium` preset (18 000 users / ≈ 117 K sessions — the
//! same scenario BENCH_2 and BENCH_6 gate, so the records stay
//! comparable):
//!
//! 1. **Checkpointed run** — `simulate_days_checkpointed` over the daily
//!    segment stream with a snapshot after every day close, against the
//!    plain `simulate` baseline at 1, 2 and 8 threads. Each thread count's
//!    `wall_ms` is gated by CI's `bench_guard`; the derived `overhead_pct`
//!    figure rides along ungated.
//! 2. **Snapshot size + write/restore cost** — one mid-run state (half the
//!    month pushed) serialized to disk and read back; `snapshot/write` and
//!    `snapshot/restore` carry gated `wall_ms` entries, `snapshot_bytes`
//!    rides along ungated.
//!
//! Every checkpointed report is asserted byte-identical to the baseline,
//! and the restored run is finished on the remaining days and asserted
//! identical too, before the record is written — a perf record of a wrong
//! answer would be worse than none.
//!
//! The record lands in `BENCH_7.json` at the workspace root (schema
//! `consume-local/bench-v1`); CI's `bench-quick` job regenerates it with
//! `CL_SWEEP_QUICK=1` and gates the `wall_ms` entries.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::export::json::JsonValue;
use consume_local::prelude::*;
use consume_local::sim::checkpoint;
use consume_local_bench::workspace_root;

/// Seed of the reference scenario (same as `sweep_engine` / BENCH_2).
const SEED: u64 = 2018;

/// Worker counts the checkpointed path must hold its throughput at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn timed_reps() -> usize {
    // Multi-rep even in quick mode: these numbers are gated, and a single
    // rep is one scheduler hiccup away from a false alarm.
    if std::env::var("CL_SWEEP_QUICK").is_ok() {
        2
    } else {
        3
    }
}

/// Best-of-N wall time (ms) plus the last repetition's output, after one
/// warm-up call.
fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let _ = f();
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn scratch_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "consume-local-bench-checkpoint-{}.ckpt",
        std::process::id()
    ))
}

fn clean(path: &std::path::Path) {
    for suffix in ["", ".tmp", ".prev"] {
        let mut os = path.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(std::path::PathBuf::from(os));
    }
}

fn checkpoint_overhead(reps: usize) -> JsonValue {
    let config = ScalePreset::Medium.apply(TraceConfig::london_sep2013());
    let users = config.users;
    let trace = TraceGenerator::new(config, SEED)
        .generate()
        .expect("valid preset");
    let seg = SegmentedStore::from_trace(&trace);
    let sessions = seg.len();
    let path = scratch_path();
    clean(&path);
    println!("\n=== Checkpointed run vs batch ({users} users, {sessions} sessions) ===");

    let mut runs = Vec::new();
    let mut expect_t8 = None;
    for threads in THREAD_COUNTS {
        let sim = Simulator::new(SimConfig {
            threads,
            ..Default::default()
        });
        let (baseline_ms, expect) = timed(reps, || sim.simulate(&seg));
        let (wall_ms, (report, written)) = timed(reps, || {
            let mut ck = Checkpointer::new(CheckpointPolicy::every_day_closes(1, &path));
            let report = sim
                .simulate_days_checkpointed(&seg, &mut ck, |_| {})
                .expect("snapshot writes to tmp succeed");
            (report, ck.checkpoints_written())
        });
        assert_eq!(
            report, expect,
            "checkpointed run must be byte-identical to the batch report at {threads} threads"
        );
        let overhead_pct = 100.0 * (wall_ms - baseline_ms) / baseline_ms;
        println!(
            "threads={threads}: batch {baseline_ms:.1} ms, checkpointed {wall_ms:.1} ms \
             ({overhead_pct:+.1}%, {written} snapshots)"
        );
        runs.push(
            JsonValue::object()
                .field("threads", threads)
                .field("wall_ms", wall_ms)
                .field("batch_wall_ms", baseline_ms)
                .field("overhead_pct", overhead_pct)
                .field("checkpoints", written),
        );
        if threads == 8 {
            expect_t8 = Some(expect);
        }
    }

    // Snapshot size and raw write/restore cost on one mid-run state: half
    // the month pushed, live swarms and carried sessions in flight.
    let sim = Simulator::new(SimConfig {
        threads: 8,
        ..Default::default()
    });
    let mut run = sim.begin(seg.horizon_secs(), seg.population_len());
    let cut = seg.num_segments() / 2;
    for segment in &seg.segments()[..cut] {
        run.push_segment(segment);
    }
    let mut buf = Vec::new();
    run.checkpoint(&mut buf).expect("in-memory snapshot");
    let snapshot_bytes = buf.len();
    let (write_ms, ()) = timed(reps.max(3), || {
        checkpoint::write_snapshot_file(&run, &path).expect("snapshot write")
    });
    let (restore_ms, mut resumed) = timed(reps.max(3), || {
        checkpoint::read_snapshot_file(&path).expect("snapshot restore")
    });
    println!(
        "snapshot: {:.2} MB, write {write_ms:.1} ms, restore {restore_ms:.1} ms",
        snapshot_bytes as f64 / 1e6
    );
    for segment in &seg.segments()[cut..] {
        resumed.push_segment(segment);
    }
    assert_eq!(
        resumed.finish(),
        expect_t8.expect("threads sweep covered 8"),
        "restored run must finish byte-identically to the uninterrupted run"
    );
    clean(&path);

    JsonValue::object()
        .field(
            "scenario",
            "medium/london5/hierarchical/isp+bitrate/dt10/q1",
        )
        .field("seed", SEED)
        .field("users", u64::from(users))
        .field("sessions", sessions)
        .field("cadence", "every_day_closes(1)")
        .field("runs", runs)
        .field(
            "snapshot",
            JsonValue::object()
                .field("bytes", snapshot_bytes)
                .field("days_pushed", cut)
                .field("write", JsonValue::object().field("wall_ms", write_ms))
                .field("restore", JsonValue::object().field("wall_ms", restore_ms)),
        )
}

fn write_bench_record() {
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok();
    let doc = JsonValue::object()
        .field("schema", "consume-local/bench-v1")
        .field("pr", 9u64)
        .field("quick", quick)
        .field("baseline_commit", "0f669d0")
        .field("checkpoint_restore", checkpoint_overhead(timed_reps()));
    let path = workspace_root().join("BENCH_7.json");
    // Hard-fail on a write error: CI's regression gate reads this file next,
    // and silently keeping the committed copy would make the gate compare
    // the baseline against itself.
    match consume_local::export::write_text(&path, &(doc.render() + "\n")) {
        Ok(()) => println!("  [json] {}", path.display()),
        Err(e) => panic!("failed to write {}: {e}", path.display()),
    }
}

fn benches(c: &mut Criterion) {
    write_bench_record();
    // Criterion kernels at smoke scale so the timed closures stay short.
    let trace = TraceGenerator::new(
        ScalePreset::Smoke.apply(TraceConfig::london_sep2013()),
        SEED,
    )
    .generate()
    .expect("valid preset");
    let seg = SegmentedStore::from_trace(&trace);
    let sim = Simulator::new(SimConfig {
        threads: 1,
        ..Default::default()
    });
    let mut run = sim.begin(seg.horizon_secs(), seg.population_len());
    for segment in &seg.segments()[..seg.num_segments() / 2] {
        run.push_segment(segment);
    }
    let mut snapshot = Vec::new();
    run.checkpoint(&mut snapshot).expect("in-memory snapshot");
    let mut group = c.benchmark_group("checkpoint_restore");
    group.sample_size(10);
    group.bench_function("snapshot_smoke", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(snapshot.len());
            run.checkpoint(&mut out).expect("in-memory snapshot");
            out
        })
    });
    group.bench_function("restore_smoke", |b| {
        b.iter(|| Simulator::resume(&mut snapshot.as_slice()).expect("valid snapshot"))
    });
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
