//! §VI future-work extensions, quantified: predictive preloading, edge
//! caching and live streaming — the three directions the paper's conclusion
//! names, implemented on the same engine.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::prelude::*;
use consume_local::sim::EdgeCache;
use consume_local::trace::live::{live_event_trace, LiveEvent};
use consume_local::trace::{ContentId, SimTime};
use consume_local_bench::{pct, save_csv, shared_experiment};

fn regenerate() {
    println!("\n=== §VI extensions: preloading, edge caching, live streaming ===");
    let exp = shared_experiment();
    let mut csv = String::from("extension,setting,offload,valancius,baliga\n");

    println!("-- predictive preloading (Take-Away-TV style) --");
    for f in [0.0, 0.2, 0.4, 0.6] {
        let mut cfg = exp.sim_config().clone();
        cfg.preload_fraction = f;
        let report = exp.resimulate(cfg).expect("valid config");
        let v = report
            .total_savings(&EnergyParams::valancius())
            .unwrap_or(0.0);
        let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
        println!(
            "  preload {:>3.0}%: offload {} | savings V {} B {}",
            f * 100.0,
            pct(report.total.offload_share()),
            pct(v),
            pct(b)
        );
        csv.push_str(&format!(
            "preload,{f},{},{v},{b}\n",
            report.total.offload_share()
        ));
    }
    println!("  preloading shifts shareable prime-time bytes to unshared prefetch — it");
    println!("  *competes* with peer assistance unless the prefetch itself is peer-fed.");

    println!("-- exchange-point edge caches --");
    for top in [0u32, 10, 50, 200] {
        let mut cfg = exp.sim_config().clone();
        cfg.edge_cache = (top > 0).then_some(EdgeCache { top_items: top });
        let report = exp.resimulate(cfg).expect("valid config");
        let v = report
            .total_savings(&EnergyParams::valancius())
            .unwrap_or(0.0);
        let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
        let cache_share = report.total.cache_bytes as f64 / report.total.demand_bytes as f64;
        println!(
            "  top-{top:<4} cached: cache share {} | savings V {} B {}",
            pct(cache_share),
            pct(v),
            pct(b)
        );
        csv.push_str(&format!("cache,{top},{cache_share},{v},{b}\n"));
    }

    println!("-- live streaming (one 500K-viewer broadcast evening) --");
    let base = TraceConfig::london_sep2013()
        .scaled(0.05)
        .expect("valid scale");
    let event = LiveEvent {
        content: ContentId(0),
        start: SimTime::from_day_hour(5, 20),
        duration_secs: 2 * 3600,
        viewers: 25_000, // 500K at full scale
        join_jitter_secs: 420.0,
    };
    let trace =
        live_event_trace(&base, shared_population(&base), &[event], 2013).expect("valid event");
    let report = Simulator::new(exp.sim_config().clone()).simulate(&trace);
    let v = report
        .total_savings(&EnergyParams::valancius())
        .unwrap_or(0.0);
    let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
    println!(
        "  live event: offload {} | savings V {} B {} (approaching the Eq. 12 asymptotes",
        pct(report.total.offload_share()),
        pct(v),
        pct(b)
    );
    println!("  of {} / {})", pct(0.646), pct(0.370));
    csv.push_str(&format!(
        "live,500k,{},{v},{b}\n",
        report.total.offload_share()
    ));
    save_csv("extension_futurework.csv", &csv);
}

fn shared_population(base: &TraceConfig) -> consume_local::trace::Population {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    consume_local::trace::Population::generate(base.users, &base.registry, &mut rng)
        .expect("positive population")
}

fn benches(c: &mut Criterion) {
    regenerate();
    let base = TraceConfig::london_sep2013()
        .scaled(0.01)
        .expect("valid scale");
    let event = LiveEvent {
        content: ContentId(0),
        start: SimTime::from_day_hour(5, 20),
        duration_secs: 3600,
        viewers: 5_000,
        join_jitter_secs: 300.0,
    };
    let population = shared_population(&base);
    c.bench_function("extensions/live_event_simulation", |b| {
        let trace = live_event_trace(&base, population.clone(), std::slice::from_ref(&event), 7)
            .expect("valid event");
        let sim = Simulator::new(SimConfig::default());
        b.iter(|| sim.simulate(&trace))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
