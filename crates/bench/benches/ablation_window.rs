//! Ablation A3 — window size Δτ: the paper fixes Δτ = 10 s; this sweep
//! shows the results are insensitive to the exact choice (quantisation is a
//! second-order effect) while runtime scales inversely with Δτ.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::prelude::*;
use consume_local_bench::{pct, save_csv, shared_experiment};

fn regenerate() {
    println!("\n=== Ablation A3: window size Δτ ===");
    let exp = shared_experiment();
    let mut csv = String::from("window_secs,offload,valancius,baliga\n");
    for window in [2u64, 5, 10, 30, 60] {
        let mut cfg = exp.sim_config().clone();
        cfg.window_secs = window;
        let report = exp.resimulate(cfg).expect("valid config");
        let v = report
            .total_savings(&EnergyParams::valancius())
            .unwrap_or(0.0);
        let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
        println!(
            "Δτ = {window:>2} s: offload {} | savings V {} B {}",
            pct(report.total.offload_share()),
            pct(v),
            pct(b)
        );
        csv.push_str(&format!(
            "{window},{},{v},{b}\n",
            report.total.offload_share()
        ));
    }
    save_csv("ablation_window.csv", &csv);
}

fn benches(c: &mut Criterion) {
    regenerate();
    let trace = TraceGenerator::new(
        TraceConfig::london_sep2013()
            .scaled(0.001)
            .expect("valid scale"),
        5,
    )
    .generate()
    .expect("valid config");
    let mut group = c.benchmark_group("window");
    for window in [5u64, 10, 60] {
        group.bench_function(format!("simulation_dt{window}"), |b| {
            let cfg = SimConfig {
                window_secs: window,
                ..Default::default()
            };
            let sim = Simulator::new(cfg);
            b.iter(|| sim.simulate(&trace))
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
