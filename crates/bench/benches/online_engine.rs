//! Online ingest engine perf record (`BENCH_6.json`).
//!
//! PR 7 lands the online serving mode: sessions arrive through a bounded
//! channel with backpressure and watermarks cut the stream into batches
//! the engine simulates while it is still open (`consume_local_sim::online`).
//! This bench records the cost of that arrangement against the batch path
//! it must reproduce byte for byte:
//!
//! 1. **Batch reference** — `Simulator::simulate(&store)` on the `medium`
//!    preset (18 000 users / ≈ 117 K sessions) at 1, 2 and 8 threads; the
//!    same scenario BENCH_2 gates, so the two records stay comparable.
//! 2. **Max-throughput replay** — `online::replay` over the same store
//!    with hourly watermark ticks and the default 1024-envelope channel:
//!    the sustained events/sec mode where only backpressure throttles the
//!    producer. Each thread count's `wall_ms` is gated by CI's
//!    `bench_guard` (committed anchor + run-over-run); the derived
//!    `events_per_sec` figure rides along ungated.
//!
//! Every replay's report is asserted byte-identical to the batch reference
//! (and once against the deprecated `run_store` wrapper) before the record
//! is written — a perf record of a wrong answer would be worse than none.
//!
//! The record lands in `BENCH_6.json` at the workspace root (schema
//! `consume-local/bench-v1`); CI's `bench-quick` job regenerates it with
//! `CL_SWEEP_QUICK=1` and gates the `wall_ms` entries.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::export::json::JsonValue;
use consume_local::prelude::*;
use consume_local::sim::online::{self, ReplayConfig};
use consume_local::trace::SessionStore;
use consume_local_bench::workspace_root;

/// Seed of the reference scenario (same as `sweep_engine` / BENCH_2).
const SEED: u64 = 2018;

/// Worker counts the online path must hold its throughput at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn timed_reps() -> usize {
    // Multi-rep even in quick mode: these numbers are gated, and a single
    // rep is one scheduler hiccup away from a false alarm.
    if std::env::var("CL_SWEEP_QUICK").is_ok() {
        2
    } else {
        3
    }
}

/// Best-of-N wall time (ms) plus the last repetition's output, after one
/// warm-up call.
fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let _ = f();
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn online_vs_batch(reps: usize) -> JsonValue {
    let config = ScalePreset::Medium.apply(TraceConfig::london_sep2013());
    let users = config.users;
    let trace = TraceGenerator::new(config, SEED)
        .generate()
        .expect("valid preset");
    let store = SessionStore::from_trace(&trace);
    let sessions = store.len();
    let replay_config = ReplayConfig::default(); // max throughput, hourly ticks
    println!("\n=== Online ingest vs batch ({users} users, {sessions} sessions) ===");
    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let sim = Simulator::new(SimConfig {
            threads,
            ..Default::default()
        });
        let (batch_ms, expect) = timed(reps, || sim.simulate(&store));
        if threads == THREAD_COUNTS[0] {
            // The deprecated wrapper must still be the same bytes — checked
            // once so the record can never describe a divergent engine.
            #[allow(deprecated)]
            // lint:allow(deprecated-sim-entry) pins the record against the legacy entry point
            let legacy = sim.run_store(&store);
            assert_eq!(legacy, expect);
        }
        let (wall_ms, streamed) = timed(reps, || online::replay(&sim, &store, &replay_config));
        let (report, stats) = streamed;
        assert_eq!(
            report, expect,
            "online replay must be byte-identical to the batch report at {threads} threads"
        );
        assert_eq!(stats.events, sessions as u64);
        let events_per_sec = stats.events as f64 / (wall_ms / 1e3);
        println!(
            "threads={threads}: batch {batch_ms:.1} ms, online {wall_ms:.1} ms \
             ({events_per_sec:.0} events/s, {} watermarks, {} day closes)",
            stats.watermarks, stats.days_closed
        );
        runs.push(
            JsonValue::object()
                .field("threads", threads)
                .field("wall_ms", wall_ms)
                .field("batch_wall_ms", batch_ms)
                .field("events_per_sec", events_per_sec)
                .field("watermarks", stats.watermarks)
                .field("days_closed", stats.days_closed),
        );
    }
    JsonValue::object()
        .field(
            "scenario",
            "medium/london5/hierarchical/isp+bitrate/dt10/q1",
        )
        .field("seed", SEED)
        .field("users", u64::from(users))
        .field("sessions", sessions)
        .field("tick_secs", replay_config.tick_secs)
        .field("capacity", replay_config.capacity)
        .field("runs", runs)
}

fn write_bench_record() {
    let quick = std::env::var("CL_SWEEP_QUICK").is_ok();
    let doc = JsonValue::object()
        .field("schema", "consume-local/bench-v1")
        .field("pr", 7u64)
        .field("quick", quick)
        .field("baseline_commit", "785bb7a")
        .field("online_replay", online_vs_batch(timed_reps()));
    let path = workspace_root().join("BENCH_6.json");
    // Hard-fail on a write error: CI's regression gate reads this file next,
    // and silently keeping the committed copy would make the gate compare
    // the baseline against itself.
    match consume_local::export::write_text(&path, &(doc.render() + "\n")) {
        Ok(()) => println!("  [json] {}", path.display()),
        Err(e) => panic!("failed to write {}: {e}", path.display()),
    }
}

fn benches(c: &mut Criterion) {
    write_bench_record();
    // Criterion kernels at smoke scale so the timed closures stay short.
    let trace = TraceGenerator::new(
        ScalePreset::Smoke.apply(TraceConfig::london_sep2013()),
        SEED,
    )
    .generate()
    .expect("valid preset");
    let store = SessionStore::from_trace(&trace);
    let sim = Simulator::new(SimConfig {
        threads: 1,
        ..Default::default()
    });
    let config = ReplayConfig::default();
    let mut group = c.benchmark_group("online_engine");
    group.sample_size(10);
    group.bench_function("replay_smoke_t1", |b| {
        b.iter(|| online::replay(&sim, &store, &config))
    });
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
