//! Fig. 6 — CDF of per-user carbon credit transfer after the CDN passes its
//! saved server energy to uploading users, under both energy models.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::carbon::CreditReport;
use consume_local::energy::EnergyParams;
use consume_local::figures::fig6;
use consume_local_bench::{bench_scale, pct, save_csv, shared_experiment};

fn regenerate() {
    println!(
        "\n=== Fig. 6: per-user CCT distribution (scale {}) ===",
        bench_scale()
    );
    let exp = shared_experiment();
    let data = fig6(exp.report(), 160);

    let mut csv = String::from("model,cct,cdf\n");
    for (model, series) in &data.series {
        for (x, y) in series {
            csv.push_str(&format!("{model:?},{x},{y}\n"));
        }
    }
    save_csv("fig6_user_cct_cdf.csv", &csv);

    for (model, report) in &data.reports {
        println!(
            "{model:?}: {} users | carbon positive {} | neutral {} | negative {} | median CCT {:+.2}",
            report.users(),
            pct(report.carbon_positive_share()),
            report.carbon_neutral(),
            report.carbon_negative(),
            report.median_cct().unwrap_or(0.0),
        );
    }
    println!("paper (full scale): ≈41% (Valancius) / >70% (Baliga) carbon positive;");
    println!("scaled runs sit lower (smaller head swarms) with the same model ordering.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    let exp = shared_experiment();
    let traffic: Vec<(u64, u64)> = exp
        .report()
        .users
        .iter()
        .map(|u| (u.watched_bytes, u.uploaded_bytes))
        .collect();
    c.bench_function("fig6/credit_report", |b| {
        b.iter(|| CreditReport::from_traffic(traffic.iter().copied(), &EnergyParams::baliga()))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
