//! Fig. 5 — end-to-end, CDN and user savings plus the carbon credit
//! transfer as functions of swarm capacity (closed form, q/β = 1, both
//! energy models).

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::figures::fig5;
use consume_local_bench::{pct, save_csv};

fn regenerate() {
    println!("\n=== Fig. 5: savings and credit transfer vs capacity ===");
    let curves = fig5(160);
    let mut csv = String::from("model,capacity,end_to_end,cdn,user,cct\n");
    for c in &curves {
        for i in 0..c.capacities.len() {
            csv.push_str(&format!(
                "{:?},{},{},{},{},{}\n",
                c.model, c.capacities[i], c.end_to_end[i], c.cdn[i], c.user[i], c.cct[i]
            ));
        }
        let last = c.capacities.len() - 1;
        println!(
            "{:?}: S(∞) → {} | CDN → {} | user → {} | CCT(∞) → {:+.0}% | carbon-neutral at c ≈ {:.2}",
            c.model,
            pct(c.end_to_end[last]),
            pct(c.cdn[last]),
            pct(c.user[last]),
            c.cct[last] * 100.0,
            c.neutrality_capacity().unwrap_or(f64::NAN),
        );
    }
    save_csv("fig5_credit_curves.csv", &csv);
    println!("paper: CCT asymptotes +18% (Valancius) / +58% (Baliga) — reproduced exactly.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    c.bench_function("fig5/closed_form_160pts", |b| b.iter(|| fig5(160)));
}

criterion_group!(group, benches);
criterion_main!(group);
