//! Ablation A5 — popularity calibration: how much the aggregate savings
//! depend on demand concentration. This is the single biggest lever behind
//! the paper's full-scale headline numbers (DESIGN.md §2, EXPERIMENTS.md):
//! the same engine under a flatter single-Zipf catalogue produces far less
//! sharing than the catch-up-TV broken power law.

use criterion::{criterion_group, criterion_main, Criterion};

use consume_local::prelude::*;
use consume_local::trace::Popularity;
use consume_local_bench::{bench_scale, pct, save_csv};

fn run(popularity: Popularity, label: &str, csv: &mut String) {
    let mut config = TraceConfig::london_sep2013()
        .scaled(bench_scale())
        .expect("valid scale");
    config.popularity = popularity;
    let trace = TraceGenerator::new(config, 2013)
        .generate()
        .expect("valid config");
    let report = Simulator::new(SimConfig::default()).simulate(&trace);
    let v = report
        .total_savings(&EnergyParams::valancius())
        .unwrap_or(0.0);
    let b = report.total_savings(&EnergyParams::baliga()).unwrap_or(0.0);
    println!(
        "{label:>28}: offload {} | savings V {} B {}",
        pct(report.total.offload_share()),
        pct(v),
        pct(b)
    );
    csv.push_str(&format!(
        "{label},{},{v},{b}\n",
        report.total.offload_share()
    ));
}

fn regenerate() {
    println!(
        "\n=== Ablation A5: demand concentration (scale {}) ===",
        bench_scale()
    );
    let mut csv = String::from("popularity,offload,valancius,baliga\n");
    run(
        Popularity::Zipf { exponent: 0.55 },
        "single Zipf s=0.55",
        &mut csv,
    );
    run(
        Popularity::Zipf { exponent: 0.8 },
        "single Zipf s=0.80",
        &mut csv,
    );
    run(
        Popularity::catchup_tv(),
        "broken power law (default)",
        &mut csv,
    );
    run(
        Popularity::BrokenZipf {
            head_exponent: 0.3,
            tail_exponent: 1.4,
            break_fraction: 0.03,
        },
        "heavier head",
        &mut csv,
    );
    save_csv("ablation_popularity.csv", &csv);
    println!("aggregate savings track how much traffic sits in high-capacity head swarms;");
    println!("reproducing the paper's 30%/18% headline requires the real trace's (not");
    println!("public) demand concentration — see EXPERIMENTS.md.");
}

fn benches(c: &mut Criterion) {
    regenerate();
    // Kernel: popularity weight construction for a full-size catalogue.
    c.bench_function("popularity/weights_24000", |b| {
        b.iter(|| Popularity::catchup_tv().weights(24_000))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
