//! Shared plumbing for the figure-regeneration benches.
//!
//! Every bench under `benches/` does two jobs:
//!
//! 1. **Regenerate** its table/figure: print the paper-shaped rows/series to
//!    stdout and drop machine-readable CSVs under
//!    `target/paper-figures/` for external plotting;
//! 2. **Benchmark** the computational kernel behind it with Criterion.
//!
//! The workload scale for the trace-driven figures defaults to 5 % of
//! September-2013 London and can be overridden with `CL_BENCH_SCALE`
//! (e.g. `CL_BENCH_SCALE=0.25 cargo bench -p consume-local-bench`).
//! EXPERIMENTS.md records the scale used for the committed numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use consume_local::experiment::Experiment;

/// The workload scale for trace-driven benches (`CL_BENCH_SCALE`, default
/// 0.05).
pub fn bench_scale() -> f64 {
    std::env::var("CL_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(0.05)
}

/// The shared full-catalogue experiment all distribution figures draw from.
///
/// # Panics
///
/// Panics if the experiment cannot be built (static configuration, so only
/// on programmer error).
pub fn shared_experiment() -> Experiment {
    Experiment::builder()
        .scale(bench_scale())
        .seed(2013)
        .build()
        .expect("bench experiment config is valid")
}

/// The workspace root, regardless of the bench binary's working directory —
/// where repo-level artefacts such as `BENCH_*.json` live.
pub fn workspace_root() -> PathBuf {
    // crates/bench/ → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Output directory for the regenerated figure data: the *workspace*
/// `target/paper-figures/`, regardless of the bench binary's working
/// directory.
pub fn figures_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace_root().join("target"));
    target.join("paper-figures")
}

/// Writes one CSV artefact and reports where it went.
pub fn save_csv(name: &str, csv: &str) {
    let path = figures_dir().join(name);
    match consume_local::export::write_csv(&path, csv) {
        Ok(()) => println!("  [csv] {}", path.display()),
        Err(e) => eprintln!("  [csv] failed to write {}: {e}", path.display()),
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// The process's peak resident set size (`VmHWM`) in mebibytes, or `None`
/// where `/proc` is unavailable (non-Linux). Pair with
/// [`reset_peak_rss`] to attribute a peak to one pipeline stage.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Resets the kernel's peak-RSS watermark (`echo 5 > /proc/self/clear_refs`)
/// so the next [`peak_rss_mb`] reading reflects only allocations made after
/// this call. Returns whether the reset was accepted (best-effort: some
/// kernels/sandboxes refuse the write, in which case readings stay
/// process-lifetime peaks).
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}
