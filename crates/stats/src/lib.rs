//! Statistical substrate for the `consume-local` workspace.
//!
//! The workspace deliberately keeps its dependency footprint small, so the
//! random-variate machinery that a crate like `rand_distr` would normally
//! provide is implemented (and property-tested) here:
//!
//! * [`dist`] — seeded samplers for the distributions the workload generator
//!   and the M/M/∞ swarm model need: [`dist::Poisson`], [`dist::Exponential`],
//!   [`dist::Zipf`], [`dist::LogNormal`], [`dist::Pareto`] and a Walker-alias
//!   [`dist::Categorical`].
//! * [`edf`] — empirical distribution functions (CDF/CCDF/quantiles), used to
//!   reproduce the distribution figures of the paper (Figs. 3 and 6).
//! * [`histogram`] — linear- and log-bucketed histograms.
//! * [`summary`] — streaming (Welford) and batch summary statistics.
//! * [`grid`] — linear and logarithmic sweep grids for parameter sweeps.
//! * [`rng`] — a deterministic seed-derivation helper so that independent
//!   simulation components get independent, reproducible RNG streams.
//! * [`par`] — the slot-ordered `parallel_map` every parallel layer of the
//!   workspace (trace generation, the sim engine, sweeps) fans out with.
//!
//! # Example
//!
//! ```
//! use consume_local_stats::dist::{Distribution, Poisson};
//! use consume_local_stats::rng::SeedDerive;
//!
//! # fn main() -> Result<(), consume_local_stats::dist::DistError> {
//! let mut rng = SeedDerive::new(42).stream("example");
//! let poisson = Poisson::new(3.0)?;
//! let draw = poisson.sample(&mut rng);
//! assert!(draw < 1000.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod edf;
pub mod grid;
pub mod histogram;
pub mod par;
pub mod rng;
pub mod summary;

pub use dist::{DistError, Distribution};
pub use edf::Edf;
pub use histogram::Histogram;
pub use rng::SeedDerive;
pub use summary::{OnlineStats, Summary};
