//! Batch and streaming summary statistics.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A one-pass (Welford) accumulator for mean/variance plus min/max.
///
/// Used by the simulation engine to aggregate per-window quantities without
/// retaining every sample.
///
/// # Example
///
/// ```
/// use consume_local_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.variance() - 1.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample. Non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let tf = total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / tf;
        self.mean += delta * other.count as f64 / tf;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of accumulated samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A batch summary of a sample: count, mean, std-dev, extrema and quartiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite samples summarised.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (nearest rank).
    pub p25: f64,
    /// Median (nearest rank).
    pub median: f64,
    /// Third quartile (nearest rank).
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample; returns `None` when no finite samples exist.
    pub fn of<I: IntoIterator<Item = f64>>(samples: I) -> Option<Summary> {
        let mut xs: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("filtered"));
        let n = xs.len();
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        let q = |p: f64| xs[(((p * n as f64).ceil() as usize).clamp(1, n)) - 1];
        Some(Summary {
            count: n,
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: xs[0],
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            max: xs[n - 1],
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p25={:.4} med={:.4} p75={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.p25,
            self.median,
            self.p75,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 31 % 97) as f64) / 7.0).collect();
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        let s = Summary::of(xs.iter().copied()).unwrap();
        assert!((o.mean() - s.mean).abs() < 1e-9);
        assert!((o.std_dev() - s.std_dev).abs() < 1e-9);
        assert_eq!(o.min().unwrap(), s.min);
        assert_eq!(o.max().unwrap(), s.max);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt().sin()).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..333] {
            a.push(x);
        }
        for &x in &xs[333..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(4.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn empty_and_singleton() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(Summary::of(std::iter::empty()), None);
        let one = Summary::of([5.0]).unwrap();
        assert_eq!(one.count, 1);
        assert_eq!(one.median, 5.0);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(1.0);
        s.push(f64::INFINITY);
        assert_eq!(s.count(), 1);
        let sum = Summary::of([f64::NAN, 2.0, f64::INFINITY]).unwrap();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.mean, 2.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = s.to_string();
        assert!(out.contains("n=4"));
        assert!(out.contains("med="));
    }
}
