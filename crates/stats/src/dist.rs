//! Random-variate distributions used across the workspace.
//!
//! All samplers implement [`Distribution`] and are generic over any
//! [`rand::Rng`]. Constructors validate their parameters and return
//! [`DistError`] on invalid input, never panicking.

use std::fmt;

use rand::Rng;

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A rate/shape/scale parameter must be strictly positive and finite.
    NotPositive {
        /// The parameter name as written in the constructor signature.
        param: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A collection parameter (weights, support) must be non-empty.
    Empty {
        /// The parameter name as written in the constructor signature.
        param: &'static str,
    },
    /// Weights must be non-negative, finite and sum to a positive value.
    BadWeights,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NotPositive { param, value } => {
                write!(
                    f,
                    "parameter `{param}` must be positive and finite, got {value}"
                )
            }
            DistError::Empty { param } => write!(f, "parameter `{param}` must be non-empty"),
            DistError::BadWeights => {
                write!(
                    f,
                    "weights must be non-negative and finite with a positive sum"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

fn require_positive(param: &'static str, value: f64) -> Result<f64, DistError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(DistError::NotPositive { param, value })
    }
}

/// A distribution that can be sampled with any RNG.
pub trait Distribution {
    /// The type of the values produced by the sampler.
    type Value;

    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Draws `n` values into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Self::Value> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform draw in `(0, 1]` — never exactly zero, so `ln` is always finite.
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - rng.gen::<f64>()
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// Poisson distribution with mean `lambda`.
///
/// Sampling uses Knuth's product method for small means (`O(lambda)`, never
/// underflows below the chunk bound) and Hörmann's exact PTRS
/// transformed-rejection sampler for large means (`O(1)`, ≈ 94 % first-try
/// acceptance) — the trace generator draws day-level arrival counts with
/// means in the thousands.
///
/// # Example
///
/// ```
/// use consume_local_stats::dist::{Distribution, Poisson};
/// # use rand::SeedableRng;
/// let p = Poisson::new(4.2).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = p.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Chunk size below which Knuth's method is numerically safe
    /// (`e^-32 ≈ 1.3e-14` is far above `f64::MIN_POSITIVE`).
    const CHUNK: f64 = 32.0;

    /// Creates a Poisson distribution with mean `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] if `lambda` is not finite and
    /// strictly positive.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        Ok(Self {
            lambda: require_positive("lambda", lambda)?,
        })
    }

    /// The mean (and variance) of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    fn sample_chunk<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
        debug_assert!(lambda <= Self::CHUNK);
        let threshold = (-lambda).exp();
        let mut k = 0u64;
        let mut product = open_unit(rng);
        while product > threshold {
            k += 1;
            product *= open_unit(rng);
        }
        k
    }

    /// Hörmann's PTRS transformed-rejection sampler: exact Poisson variates
    /// in `O(1)` for `lambda ≳ 10` (≈ 94 % first-try acceptance, two uniform
    /// draws and no transcendentals on the fast path). The trace generator's
    /// day-level arrival counts reach means in the thousands, where the
    /// `O(lambda)` product method pays one RNG draw per expected event.
    fn sample_ptrs<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
        debug_assert!(lambda > Self::CHUNK);
        let b = 0.931 + 2.53 * lambda.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        let log_lambda = lambda.ln();
        loop {
            let u = rng.gen::<f64>() - 0.5;
            let v = open_unit(rng);
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let accept = (v * inv_alpha / (a / (us * us) + b)).ln();
            if accept <= k * log_lambda - lambda - ln_factorial(k as u64) {
                return k as u64;
            }
        }
    }

    /// Probability mass function `P(X = k)`.
    ///
    /// Computed in log space, so it is accurate for large `k` and `lambda`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.log_pmf(k).exp()
    }

    /// Natural log of the probability mass function.
    pub fn log_pmf(&self, k: u64) -> f64 {
        let kf = k as f64;
        kf * self.lambda.ln() - self.lambda - ln_factorial(k)
    }
}

impl Distribution for Poisson {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda > Self::CHUNK {
            return Self::sample_ptrs(self.lambda, rng) as f64;
        }
        Self::sample_chunk(self.lambda, rng) as f64
    }
}

/// `ln(k!)` via Stirling's series for large `k`, exact products below 20.
pub fn ln_factorial(k: u64) -> f64 {
    if k < 20 {
        let mut acc = 0.0f64;
        for i in 2..=k {
            acc += (i as f64).ln();
        }
        acc
    } else {
        let x = (k + 1) as f64;
        // Stirling series for ln Γ(x).
        (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x * x * x)
    }
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// Exponential distribution with rate `rate` (mean `1/rate`).
///
/// Used for M/M/∞ service times and Poisson-process inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] if `rate` is not finite and
    /// strictly positive.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        Ok(Self {
            rate: require_positive("rate", rate)?,
        })
    }

    /// Creates an exponential distribution with the given mean (`1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] if `mean` is not finite and
    /// strictly positive.
    pub fn with_mean(mean: f64) -> Result<Self, DistError> {
        Ok(Self {
            rate: 1.0 / require_positive("mean", mean)?,
        })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Distribution for Exponential {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open_unit(rng).ln() / self.rate
    }
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`.
///
/// This is the canonical popularity model for video-on-demand catalogues and
/// drives the content catalogue of the synthetic iPlayer-like workload
/// (Section IV of the paper: "a few popular items but a large majority of
/// unpopular items").
///
/// Sampling is `O(log n)` by binary search over the precomputed CDF.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Empty`] when `n == 0` and
    /// [`DistError::NotPositive`] for a non-positive exponent.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::Empty { param: "n" });
        }
        let s = require_positive("s", s)?;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Self { cdf, exponent: s })
    }

    /// Number of ranks in the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k` (1-based). Returns 0 outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[k - 1];
        let lo = if k >= 2 { self.cdf[k - 2] } else { 0.0 };
        hi - lo
    }

    /// The relative weight of rank `k` against rank 1 (`k^-s`).
    pub fn relative_weight(&self, k: usize) -> f64 {
        (k as f64).powf(-self.exponent)
    }
}

impl Distribution for Zipf {
    /// Ranks are 1-based, matching the conventional Zipf formulation.
    type Value = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen::<f64>();
        // partition_point returns the index of the first cdf entry >= u,
        // which is exactly the 0-based rank; +1 converts to 1-based.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) + 1
    }
}

// ---------------------------------------------------------------------------
// Normal / LogNormal
// ---------------------------------------------------------------------------

/// Normal distribution (Box–Muller polar sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and `std_dev > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] if `std_dev` is not finite and
    /// strictly positive, or if `mean` is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !mean.is_finite() {
            return Err(DistError::NotPositive {
                param: "mean",
                value: mean,
            });
        }
        Ok(Self {
            mean,
            std_dev: require_positive("std_dev", std_dev)?,
        })
    }

    /// The location parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The scale parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Marsaglia polar method; rejection loop terminates with prob. 1.
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// The quantile function `Φ⁻¹` scaled to this distribution: the value
    /// below which a fraction `p` of the mass lies.
    ///
    /// Evaluated with Acklam's rational approximation (relative error
    /// ≲ 1.2 × 10⁻⁹). Returns `-∞` at `p = 0` and `+∞` at `p = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std_dev * standard_normal_quantile(p)
    }
}

/// The standard normal quantile `Φ⁻¹(p)` (Acklam's approximation).
///
/// # Panics
///
/// Panics if `p` is NaN or outside `[0, 1]`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "quantile needs p in [0, 1], got {p}"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let tail = |q: f64| {
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    if p < P_LOW {
        tail((-2.0 * p.ln()).sqrt())
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -tail((-2.0 * (1.0 - p).ln()).sqrt())
    }
}

impl Distribution for Normal {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard(rng)
    }
}

/// Log-normal distribution parameterised by the *underlying* normal's
/// `mu` and `sigma`.
///
/// Session watch-times in catch-up TV are heavy-tailed and well approximated
/// by a log-normal; see the trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal whose logarithm has mean `mu` and std-dev `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] on non-finite `mu` or non-positive
    /// `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(Self {
            normal: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a log-normal with a target *linear-space* mean and the given
    /// log-space `sigma`.
    ///
    /// Solves `mean = exp(mu + sigma²/2)` for `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] on non-positive `mean` or `sigma`.
    pub fn with_mean(mean: f64, sigma: f64) -> Result<Self, DistError> {
        let mean = require_positive("mean", mean)?;
        let sigma = require_positive("sigma", sigma)?;
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Log-space location parameter.
    pub fn mu(&self) -> f64 {
        self.normal.mean()
    }

    /// Log-space scale parameter.
    pub fn sigma(&self) -> f64 {
        self.normal.std_dev()
    }

    /// The linear-space mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu() + self.sigma() * self.sigma() / 2.0).exp()
    }

    /// The quantile function `exp(mu + sigma · Φ⁻¹(p))`.
    ///
    /// Returns `0` at `p = 0` and `+∞` at `p = 1`; the natural input to a
    /// [`TabulatedQuantile`] when millions of draws are needed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        if p == 0.0 {
            return 0.0;
        }
        self.normal.quantile(p).exp()
    }
}

impl Distribution for LogNormal {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

// ---------------------------------------------------------------------------
// Tabulated quantile (inverse-transform sampling from a precomputed table)
// ---------------------------------------------------------------------------

/// Inverse-transform sampler over a precomputed quantile table.
///
/// Trades a one-off `O(resolution)` table build for `O(1)` samples with a
/// **single** uniform draw and no transcendental functions — the
/// trace generator draws one watched-fraction per session, millions per
/// full-scale trace, and the exact log-normal sampler (polar normal + `exp`)
/// dominates that loop. Sampling linearly interpolates between table knots,
/// so the result is an approximation whose CDF error is bounded by the knot
/// spacing `1/resolution`; the extreme tails are squashed to the
/// `0.5/resolution` and `1 − 0.5/resolution` quantiles.
///
/// # Example
///
/// ```
/// use consume_local_stats::dist::{Distribution, LogNormal, TabulatedQuantile};
/// # use rand::SeedableRng;
/// let exact = LogNormal::with_mean(0.72, 0.5).unwrap();
/// let fast = TabulatedQuantile::from_quantile(1024, |p| exact.quantile(p)).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mean: f64 = (0..20_000).map(|_| fast.sample(&mut rng)).sum::<f64>() / 20_000.0;
/// assert!((mean / 0.72 - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TabulatedQuantile {
    /// `resolution + 1` knots: `table[k] ≈ Q(k / resolution)`.
    table: Vec<f64>,
}

impl TabulatedQuantile {
    /// Tabulates `quantile` at `resolution + 1` evenly spaced probabilities.
    ///
    /// The endpoint knots are evaluated at `0.5/resolution` and
    /// `1 − 0.5/resolution` so distributions with infinite support stay
    /// finite in the table.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] when `resolution` is zero and
    /// [`DistError::BadWeights`] when the tabulated values are non-finite or
    /// decreasing (not a quantile function).
    pub fn from_quantile(
        resolution: usize,
        quantile: impl Fn(f64) -> f64,
    ) -> Result<Self, DistError> {
        if resolution == 0 {
            return Err(DistError::NotPositive {
                param: "resolution",
                value: 0.0,
            });
        }
        let k = resolution as f64;
        let table: Vec<f64> = (0..=resolution)
            .map(|i| quantile((i as f64 / k).clamp(0.5 / k, 1.0 - 0.5 / k)))
            .collect();
        if table.iter().any(|v| !v.is_finite()) || table.windows(2).any(|w| w[0] > w[1]) {
            return Err(DistError::BadWeights);
        }
        Ok(Self { table })
    }

    /// The number of interpolation intervals in the table.
    pub fn resolution(&self) -> usize {
        self.table.len() - 1
    }
}

impl Distribution for TabulatedQuantile {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let pos = rng.gen::<f64>() * self.resolution() as f64;
        let i = (pos as usize).min(self.resolution() - 1);
        let frac = pos - i as f64;
        self.table[i] + (self.table[i + 1] - self.table[i]) * frac
    }
}

// ---------------------------------------------------------------------------
// Pareto
// ---------------------------------------------------------------------------

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
///
/// Models the highly skewed per-user activity the paper reports ("per-user
/// consumption patterns are highly skewed towards a small share of very
/// active users").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with `x_min > 0` and `alpha > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotPositive`] on non-positive parameters.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, DistError> {
        Ok(Self {
            x_min: require_positive("x_min", x_min)?,
            alpha: require_positive("alpha", alpha)?,
        })
    }

    /// The scale (minimum value) parameter.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// The shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The mean, or `None` when `alpha <= 1` (infinite mean).
    pub fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

impl Distribution for Pareto {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.x_min / open_unit(rng).powf(1.0 / self.alpha)
    }
}

// ---------------------------------------------------------------------------
// Categorical (Walker alias method)
// ---------------------------------------------------------------------------

/// Categorical distribution over `0..n` with arbitrary non-negative weights.
///
/// Built with Walker's alias method: `O(n)` construction, `O(1)` sampling.
/// Used for device-class and ISP market-share draws, where millions of
/// samples are taken per generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights_norm: Vec<f64>,
}

impl Categorical {
    /// Builds the alias table from the given weights.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Empty`] for an empty weight list and
    /// [`DistError::BadWeights`] for negative/non-finite weights or an
    /// all-zero sum.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(DistError::Empty { param: "weights" });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(DistError::BadWeights);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistError::BadWeights);
        }
        let n = weights.len();
        let weights_norm: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut scaled: Vec<f64> = weights_norm.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias = vec![0usize; n];
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are 1.0 within FP error.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(Self {
            prob,
            alias,
            weights_norm,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the distribution has zero categories (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalised probability of category `i` (0 outside the support).
    pub fn probability(&self, i: usize) -> f64 {
        self.weights_norm.get(i).copied().unwrap_or(0.0)
    }
}

impl Categorical {
    /// Alias-method sample from a **single** `u64` draw: the high 32 bits
    /// pick the bucket (multiply-shift range reduction), the low 32 bits form
    /// the acceptance fraction.
    ///
    /// Halves the RNG traffic of [`Distribution::sample`] in tight loops
    /// (the trace generator takes three categorical draws per session). The
    /// bucket choice carries a range-reduction bias below `n / 2³²` and the
    /// fraction has 32-bit granularity — both far beyond the statistical
    /// resolution of any table in this workspace.
    pub fn sample_fast<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen::<u64>();
        let i = ((self.prob.len() as u64 * (x >> 32)) >> 32) as usize;
        let frac = (x & 0xffff_ffff) as f64 / (1u64 << 32) as f64;
        if frac < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

impl Distribution for Categorical {
    type Value = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedDerive;
    use rand::rngs::StdRng;

    fn rng(label: &str) -> StdRng {
        SeedDerive::new(0xC0FFEE).stream(label)
    }

    #[test]
    fn poisson_rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn poisson_mean_and_variance_match() {
        let mut r = rng("poisson");
        for &lambda in &[0.2, 1.0, 7.5, 40.0, 150.0] {
            let p = Poisson::new(lambda).unwrap();
            let n = 40_000usize;
            let samples = p.sample_n(&mut r, n);
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let tol = 5.0 * (lambda / n as f64).sqrt() + 0.01;
            assert!((mean - lambda).abs() < tol, "mean {mean} vs {lambda}");
            assert!(
                (var - lambda).abs() < 0.15 * lambda + 0.05,
                "var {var} vs {lambda}"
            );
        }
    }

    #[test]
    fn poisson_ptrs_tracks_the_pmf() {
        // lambda above the chunk bound exercises the PTRS path; the
        // empirical frequencies must match the exact pmf bin by bin.
        let lambda = 120.0;
        let p = Poisson::new(lambda).unwrap();
        let mut r = rng("ptrs");
        let n = 60_000usize;
        let mut freq_of = std::collections::HashMap::new();
        for _ in 0..n {
            let k = p.sample(&mut r) as u64;
            *freq_of.entry(k).or_insert(0u32) += 1;
            assert!(
                (k as f64 - lambda).abs() < 10.0 * lambda.sqrt(),
                "sample {k} implausibly far from the mean"
            );
        }
        for k in [90u64, 110, 120, 130, 150] {
            let freq = f64::from(freq_of.get(&k).copied().unwrap_or(0)) / n as f64;
            let expect = p.pmf(k);
            let tol = 4.0 * (expect / n as f64).sqrt() + 2e-4;
            assert!(
                (freq - expect).abs() < tol,
                "k={k}: freq {freq} vs pmf {expect}"
            );
        }
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let p = Poisson::new(6.3).unwrap();
        let total: f64 = (0..200).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sum {total}");
    }

    #[test]
    fn ln_factorial_matches_exact() {
        let mut exact = 0.0f64;
        for k in 1..=170u64 {
            exact += (k as f64).ln();
            let approx = ln_factorial(k);
            assert!(
                (approx - exact).abs() < 1e-6 * exact.max(1.0),
                "k={k}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng("exp");
        let e = Exponential::with_mean(25.0).unwrap();
        assert!((e.mean() - 25.0).abs() < 1e-12);
        let n = 50_000;
        let mean = e.sample_n(&mut r, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 25.0).abs() < 0.6, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng("exp-pos");
        let e = Exponential::new(3.0).unwrap();
        assert!(e.sample_n(&mut r, 10_000).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn zipf_pmf_is_normalised_and_monotone() {
        let z = Zipf::new(1000, 0.9).unwrap();
        let total: f64 = (1..=1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..1000 {
            assert!(z.pmf(k) >= z.pmf(k + 1));
        }
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(1001), 0.0);
    }

    #[test]
    fn zipf_empirical_head_matches_pmf() {
        let z = Zipf::new(50, 1.1).unwrap();
        let mut r = rng("zipf");
        let n = 100_000usize;
        let mut counts = vec![0usize; 51];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().take(6).skip(1) {
            let emp = count as f64 / n as f64;
            let th = z.pmf(k);
            assert!((emp - th).abs() < 0.01, "rank {k}: {emp} vs {th}");
        }
    }

    #[test]
    fn zipf_rejects_degenerate() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
    }

    #[test]
    fn normal_moments() {
        let nd = Normal::new(-3.0, 2.0).unwrap();
        let mut r = rng("normal");
        let n = 60_000;
        let xs = nd.sample_n(&mut r, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean + 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let ln = LogNormal::with_mean(1500.0, 0.8).unwrap();
        assert!((ln.mean() - 1500.0).abs() < 1e-6);
        let mut r = rng("lognormal");
        let n = 200_000;
        let mean = ln.sample_n(&mut r, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 1500.0).abs() < 30.0, "mean {mean}");
    }

    #[test]
    fn pareto_tail_and_mean() {
        let p = Pareto::new(1.0, 2.5).unwrap();
        assert!((p.mean().unwrap() - (2.5 / 1.5)).abs() < 1e-12);
        assert_eq!(Pareto::new(1.0, 0.9).unwrap().mean(), None);
        let mut r = rng("pareto");
        let xs = p.sample_n(&mut r, 50_000);
        assert!(xs.iter().all(|&x| x >= 1.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0 / 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn categorical_alias_matches_weights() {
        let weights = [0.1, 0.0, 3.0, 1.5, 0.4];
        let c = Categorical::new(&weights).unwrap();
        let mut r = rng("cat");
        let n = 200_000usize;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..n {
            counts[c.sample(&mut r)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let emp = counts[i] as f64 / n as f64;
            let th = w / total;
            assert!((emp - th).abs() < 0.01, "cat {i}: {emp} vs {th}");
            assert!((c.probability(i) - th).abs() < 1e-12);
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
    }

    #[test]
    fn categorical_rejects_bad_input() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[1.0, -0.5]).is_err());
        assert!(Categorical::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn categorical_single_category() {
        let c = Categorical::new(&[42.0]).unwrap();
        let mut r = rng("cat1");
        assert_eq!(c.sample(&mut r), 0);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = Poisson::new(-2.0).unwrap_err();
        assert!(e.to_string().contains("lambda"));
        let e = Categorical::new(&[]).unwrap_err();
        assert!(e.to_string().contains("weights"));
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        // Φ⁻¹ reference values (Abramowitz & Stegun).
        assert!((standard_normal_quantile(0.5)).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((standard_normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((standard_normal_quantile(0.999) - 3.090_232_306).abs() < 1e-6);
        assert!((standard_normal_quantile(1e-6) + 4.753_424_309).abs() < 1e-5);
        assert_eq!(standard_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(standard_normal_quantile(1.0), f64::INFINITY);
        let n = Normal::new(10.0, 2.0).unwrap();
        assert!((n.quantile(0.975) - (10.0 + 2.0 * 1.959_963_985)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "quantile needs p in [0, 1]")]
    fn normal_quantile_rejects_out_of_range() {
        let _ = standard_normal_quantile(1.5);
    }

    #[test]
    fn lognormal_quantile_inverts_the_median_and_tails() {
        let d = LogNormal::new(0.3, 0.5).unwrap();
        assert!((d.quantile(0.5) - 0.3f64.exp()).abs() < 1e-9);
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), f64::INFINITY);
        // Quantiles are the monotone inverse of the CDF: increasing in p.
        assert!(d.quantile(0.2) < d.quantile(0.4));
    }

    #[test]
    fn tabulated_quantile_tracks_the_exact_sampler() {
        let exact = LogNormal::with_mean(0.72, 0.5).unwrap();
        let fast = TabulatedQuantile::from_quantile(2048, |p| exact.quantile(p)).unwrap();
        assert_eq!(fast.resolution(), 2048);
        let mut r = rng("tabulated");
        let n = 40_000;
        let (mut sum_fast, mut sum_exact) = (0.0, 0.0);
        for _ in 0..n {
            sum_fast += fast.sample(&mut r).clamp(0.02, 1.0);
            sum_exact += exact.sample(&mut r).clamp(0.02, 1.0);
        }
        let (m_fast, m_exact) = (sum_fast / n as f64, sum_exact / n as f64);
        assert!(
            (m_fast / m_exact - 1.0).abs() < 0.02,
            "tabulated mean {m_fast} vs exact {m_exact}"
        );
    }

    #[test]
    fn tabulated_quantile_rejects_degenerate_tables() {
        assert!(TabulatedQuantile::from_quantile(0, |p| p).is_err());
        assert!(TabulatedQuantile::from_quantile(8, |_| f64::NAN).is_err());
        // A decreasing "quantile" is not a quantile.
        assert!(TabulatedQuantile::from_quantile(8, |p| -p).is_err());
        // The open-support endpoints stay finite via the half-knot clamp.
        let std_normal = TabulatedQuantile::from_quantile(64, standard_normal_quantile).unwrap();
        let mut r = rng("tabnorm");
        for _ in 0..1000 {
            assert!(std_normal.sample(&mut r).is_finite());
        }
    }

    #[test]
    fn categorical_sample_fast_matches_weights() {
        let weights = [0.5, 0.0, 0.3, 0.2];
        let c = Categorical::new(&weights).unwrap();
        let mut r = rng("catfast");
        let n = 80_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[c.sample_fast(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        for (i, &w) in weights.iter().enumerate() {
            let freq = f64::from(counts[i]) / f64::from(n);
            assert!(
                (freq - w).abs() < 0.01,
                "category {i}: freq {freq} vs weight {w}"
            );
        }
    }
}
