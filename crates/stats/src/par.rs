//! Slot-ordered parallel mapping over an index range — and over disjoint
//! mutable sub-slices of one buffer.
//!
//! The one concurrency idiom the workspace uses: fan `0..n` out across
//! scoped worker threads with an atomic work-stealing cursor, and place each
//! result at its *index-ordered* slot, never at its completion-ordered one —
//! which is what makes the trace generator, the simulation engine and the
//! sweep runner deterministic for any worker count.
//!
//! [`parallel_map`] covers read-only fan-out (each task produces a value);
//! [`parallel_map_slices`] covers in-place fan-out: one shared buffer is
//! split into caller-described non-overlapping chunks, and each worker
//! mutates the chunks it steals through an exclusive `&mut [T]`. Both are
//! `unsafe`-free (the crate forbids `unsafe_code`): the disjointness that
//! slice-parallel libraries prove with raw pointers falls out of iterated
//! `split_at_mut`.
//!
//! [`parallel_join`] rounds out the trio for the two-sided case: run a
//! producer and a consumer concurrently and hand both results back — the
//! online ingest engine pairs a replay producer with the simulating
//! consumer this way.
//!
//! The primitives live here, at the bottom of the crate graph, so every
//! layer above (`trace`, `sim`, `core`) can share them;
//! `consume_local_sim::par` re-exports all three under its historical path.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What a worker hands back through its join handle: either its buffered
/// `(index, result)` pairs, or the first panic it caught together with the
/// slot index of the task that raised it.
type WorkerOutcome<T> = Result<Vec<(usize, T)>, (usize, Box<dyn Any + Send>)>;

/// Renders a caught panic payload for re-raising with slot context.
fn payload_text(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Joins every worker, then re-raises the lowest-slot captured panic (if
/// any) as a single panic naming `primitive` and the originating slot.
/// Picking the lowest slot keeps the surfaced message independent of
/// thread schedule and worker count.
fn collect_outcomes<T>(outcomes: Vec<WorkerOutcome<T>>, primitive: &str) -> Vec<Vec<(usize, T)>> {
    let mut buffers = Vec::with_capacity(outcomes.len());
    let mut first: Option<(usize, Box<dyn Any + Send>)> = None;
    for outcome in outcomes {
        match outcome {
            Ok(buffer) => buffers.push(buffer),
            Err((slot, payload)) => {
                let better = match &first {
                    None => true,
                    Some((s, _)) => slot < *s,
                };
                if better {
                    first = Some((slot, payload));
                }
            }
        }
    }
    if let Some((slot, payload)) = first {
        panic!(
            "{primitive}: task for slot {slot} panicked: {}",
            payload_text(payload.as_ref())
        );
    }
    buffers
}

/// Maps `0..n` through `f` across at most `workers` scoped threads.
///
/// Output order is by index. `workers` is clamped to `n` (and at least one
/// thread runs even for `n == 0`, trivially exiting).
///
/// Workers buffer `(index, result)` pairs locally and hand the buffers back
/// through their join handles — no shared lock anywhere, so the primitive
/// scales down to fine-grained tasks (the trace generator pushes thousands
/// of small per-item syntheses through it) as well as the engine's coarse
/// per-swarm shards.
///
/// # Panics
///
/// If `f` panics, the panic is caught on the worker, every other worker is
/// still joined, and a single panic is re-raised on the caller naming the
/// lowest slot index whose task panicked plus the original message.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, workers: usize, f: F) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(n.max(1));
    let outcomes: Vec<WorkerOutcome<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(value) => local.push((i, value)),
                            Err(payload) => return Err((i, payload)),
                        }
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let buffers = collect_outcomes(outcomes, "parallel_map");
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in buffers.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index mapped"))
        .collect()
}

/// Maps the disjoint chunks of `data` described by `offsets` through `f`
/// across at most `workers` scoped threads, mutating each chunk in place.
///
/// Chunk `i` is `data[offsets[i]..offsets[i + 1]]`, so `offsets` must be
/// ascending with its last entry at most `data.len()` — exactly the
/// bucket-boundary arrays a counting sort produces. Chunks may be empty, and
/// a non-zero first offset leaves a leading prefix (like a trailing suffix
/// beyond the last offset) untouched.
///
/// Results come back chunk-ordered (slot `i` holds `f`'s value for chunk
/// `i`), and because the chunks never overlap, the final state of `data` is
/// the same for every worker count and schedule: deterministic parallel
/// mutation without a single `unsafe` block. Workers steal chunk indices
/// from an atomic cursor and take the matching `&mut [T]` out of a
/// mutex-guarded slot vector — the lock is held only for the `take`, so it
/// costs one uncontended lock per *chunk*, not per element; chunks should
/// be coarse (the trace merge's hour buckets are thousands of records).
///
/// With one worker (or one chunk) no thread is spawned and `f` runs inline,
/// so serial callers pay nothing for routing through the shared primitive.
///
/// # Panics
///
/// Panics if `offsets` is not ascending or overruns `data`. A panic from
/// `f` is caught on the worker and re-raised on the caller naming the
/// lowest chunk slot whose task panicked — workers never die holding the
/// chunk-queue lock, so the mutex cannot poison the error path.
pub fn parallel_map_slices<T, R, F>(
    data: &mut [T],
    offsets: &[usize],
    workers: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "chunk offsets must be ascending"
    );
    let n = offsets.len().saturating_sub(1);
    if n == 0 {
        return Vec::new();
    }
    assert!(
        offsets[n] <= data.len(),
        "chunk offsets overrun the buffer: {} > {}",
        offsets[n],
        data.len()
    );
    let workers = workers.max(1).min(n);
    if workers == 1 {
        // Inline path: catch-and-rename so the panic message carries the
        // slot index for every worker count, not just the threaded ones.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let chunk = &mut data[offsets[i]..offsets[i + 1]];
            match catch_unwind(AssertUnwindSafe(|| f(i, chunk))) {
                Ok(value) => out.push(value),
                Err(payload) => panic!(
                    "parallel_map_slices: task for slot {i} panicked: {}",
                    payload_text(payload.as_ref())
                ),
            }
        }
        return out;
    }

    // Carve the buffer into exclusive chunks up front; `split_at_mut` is the
    // whole disjointness proof.
    let mut chunks: Vec<Option<&mut [T]>> = Vec::with_capacity(n);
    let mut rest: &mut [T] = data;
    let mut consumed = 0usize;
    for i in 0..n {
        let tail = std::mem::take(&mut rest);
        let (_, tail) = tail.split_at_mut(offsets[i] - consumed);
        let (chunk, tail) = tail.split_at_mut(offsets[i + 1] - offsets[i]);
        rest = tail;
        consumed = offsets[i + 1];
        chunks.push(Some(chunk));
    }

    let queue = Mutex::new(chunks);
    let next = AtomicUsize::new(0);
    let outcomes: Vec<WorkerOutcome<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // `f` runs outside the lock and inside catch_unwind,
                        // so a panicking task can never poison the queue for
                        // the workers still stealing chunks.
                        let chunk = queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)[i]
                            .take()
                            .expect("each chunk is stolen exactly once");
                        match catch_unwind(AssertUnwindSafe(|| f(i, chunk))) {
                            Ok(value) => local.push((i, value)),
                            Err(payload) => return Err((i, payload)),
                        }
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let buffers = collect_outcomes(outcomes, "parallel_map_slices");
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, value) in buffers.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk mapped"))
        .collect()
}

/// Runs `a` on a scoped thread while `b` runs on the caller's thread, and
/// returns both results once both sides finish.
///
/// This is the two-task companion to [`parallel_map`]: where the mappers fan
/// one shape of work across many workers, `parallel_join` pairs two
/// *different* computations — typically a producer feeding a channel and the
/// consumer draining it. Running `b` inline means a caller that joins a
/// producer with a blocking consumer spends no thread beyond the one it
/// already has.
///
/// # Panics
///
/// Propagates a panic from either closure. If `b` panics while `a` is still
/// running, the scope still joins `a` before unwinding — so `a` must not
/// deadlock when its counterpart dies (channel producers see a disconnect
/// error and return).
pub fn parallel_join<A, B, FA, FB>(a: FA, b: FB) -> (A, B)
where
    A: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let out_b = b();
        let out_a = handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (out_a, out_b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for workers in [1, 2, 8, 500] {
            assert_eq!(parallel_map(257, workers, |i| i * i), expected);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_land_at_index_slots_not_completion_order() {
        // Make early indices finish last: slot order must still hold.
        let out = parallel_map(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn slices_mutate_in_place_identically_for_any_worker_count() {
        let offsets = [0usize, 3, 3, 10, 64, 100];
        let reference: Vec<u64> = {
            let mut data: Vec<u64> = (0..100).collect();
            for w in offsets.windows(2) {
                for (k, v) in data[w[0]..w[1]].iter_mut().enumerate() {
                    *v = *v * 7 + k as u64;
                }
            }
            data
        };
        for workers in [1, 2, 8, 500] {
            let mut data: Vec<u64> = (0..100).collect();
            let lens = parallel_map_slices(&mut data, &offsets, workers, |i, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = *v * 7 + k as u64;
                }
                (i, chunk.len())
            });
            assert_eq!(data, reference, "{workers} workers");
            assert_eq!(
                lens,
                vec![(0, 3), (1, 0), (2, 7), (3, 54), (4, 36)],
                "{workers} workers"
            );
        }
    }

    #[test]
    fn slices_leave_uncovered_prefix_and_suffix_untouched() {
        let mut data = [1u32; 12];
        // Chunks cover only [2, 9): leading and trailing cells must survive.
        let out = parallel_map_slices(&mut data, &[2, 5, 9], 4, |_, chunk| {
            chunk.iter_mut().for_each(|v| *v = 0);
            chunk.len()
        });
        assert_eq!(out, vec![3, 4]);
        assert_eq!(data, [1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn slices_empty_and_degenerate_offsets() {
        let mut data = [5u8; 4];
        let none: Vec<()> = parallel_map_slices(&mut data, &[], 4, |_, _| ());
        assert!(none.is_empty());
        let one: Vec<usize> = parallel_map_slices(&mut data, &[4], 4, |_, c| c.len());
        assert!(one.is_empty(), "a single offset describes zero chunks");
        let all_empty = parallel_map_slices(&mut data, &[2, 2, 2], 4, |_, c| c.len());
        assert_eq!(all_empty, vec![0, 0]);
        assert_eq!(data, [5; 4]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn slices_reject_descending_offsets() {
        let mut data = [0u8; 4];
        let _ = parallel_map_slices(&mut data, &[3, 1], 2, |_, _| ());
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn slices_reject_overrunning_offsets() {
        let mut data = [0u8; 4];
        let _ = parallel_map_slices(&mut data, &[0, 9], 2, |_, _| ());
    }

    /// Runs `body` expecting it to panic, and returns the panic message.
    fn panic_message_of<F: FnOnce() + std::panic::UnwindSafe>(body: F) -> String {
        let payload = catch_unwind(body).expect_err("closure should panic");
        payload_text(payload.as_ref()).to_owned()
    }

    #[test]
    fn map_panic_names_the_originating_slot() {
        for workers in [1, 2, 8] {
            let msg = panic_message_of(|| {
                let _ = parallel_map(16, workers, |i| {
                    if i == 5 {
                        panic!("boom at {i}");
                    }
                    i
                });
            });
            assert!(
                msg.contains("parallel_map: task for slot 5 panicked") && msg.contains("boom at 5"),
                "{workers} workers: unexpected message {msg:?}"
            );
        }
    }

    #[test]
    fn map_panic_surfaces_lowest_slot_when_every_task_panics() {
        let msg = panic_message_of(|| {
            let _ = parallel_map(32, 8, |i| -> usize { panic!("all fail ({i})") });
        });
        assert!(
            msg.contains("task for slot 0 panicked"),
            "unexpected message {msg:?}"
        );
    }

    #[test]
    fn slices_panic_names_the_originating_slot_not_a_poisoned_mutex() {
        for workers in [1, 2, 8] {
            let offsets = [0usize, 4, 8, 12, 16];
            let msg = panic_message_of(|| {
                let mut data = [0u8; 16];
                let _ = parallel_map_slices(&mut data, &offsets, workers, |i, chunk| {
                    if i == 2 {
                        panic!("chunk {i} died");
                    }
                    chunk.iter_mut().for_each(|v| *v = 1);
                });
            });
            assert!(
                msg.contains("parallel_map_slices: task for slot 2 panicked")
                    && msg.contains("chunk 2 died"),
                "{workers} workers: unexpected message {msg:?}"
            );
            assert!(
                !msg.contains("poison"),
                "{workers} workers: panic path leaked mutex poisoning: {msg:?}"
            );
        }
    }

    #[test]
    fn surviving_slices_are_still_mutated_after_a_panic() {
        // Workers that stole other chunks finish them before the re-raise;
        // the data visible after catching the panic reflects every task
        // that ran, and only the panicking chunk is left untouched.
        let offsets = [0usize, 4, 8];
        let mut data = [0u8; 8];
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = parallel_map_slices(&mut data, &offsets, 1, |i, chunk| {
                if i == 1 {
                    panic!("late chunk dies");
                }
                chunk.iter_mut().for_each(|v| *v = 7);
            });
        }));
        assert!(result.is_err());
        assert_eq!(data[..4], [7; 4], "chunk before the panic was completed");
        assert_eq!(data[4..], [0; 4], "panicking chunk rolled back nothing");
    }

    #[test]
    fn join_returns_both_sides() {
        let (a, b) = parallel_join(|| 6 * 7, || "consumer".len());
        assert_eq!((a, b), (42, 8));
    }

    #[test]
    fn join_runs_producer_and_consumer_concurrently() {
        // A rendezvous over a bounded channel deadlocks unless both closures
        // genuinely run at the same time.
        let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(0);
        let (sent, got) = parallel_join(
            move || (0..64).map(|i| tx.send(i).is_ok() as u32).sum::<u32>(),
            move || rx.iter().sum::<u32>(),
        );
        assert_eq!(sent, 64);
        assert_eq!(got, (0..64).sum::<u32>());
    }
}
