//! Slot-ordered parallel mapping over an index range.
//!
//! The one concurrency idiom the workspace uses: fan `0..n` out across
//! scoped worker threads with an atomic work-stealing cursor, and place each
//! result at its *index-ordered* slot, never at its completion-ordered one —
//! which is what makes the trace generator, the simulation engine and the
//! sweep runner deterministic for any worker count.
//!
//! The primitive lives here, at the bottom of the crate graph, so every
//! layer above (`trace`, `sim`, `core`) can share it;
//! `consume_local_sim::par` re-exports it under its historical path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `0..n` through `f` across at most `workers` scoped threads.
///
/// Output order is by index. `workers` is clamped to `n` (and at least one
/// thread runs even for `n == 0`, trivially exiting).
///
/// Workers buffer `(index, result)` pairs locally and hand the buffers back
/// through their join handles — no shared lock anywhere, so the primitive
/// scales down to fine-grained tasks (the trace generator pushes thousands
/// of small per-item syntheses through it) as well as the engine's coarse
/// per-swarm shards.
///
/// # Panics
///
/// Propagates a panic from `f` once the worker's buffer is joined.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, workers: usize, f: F) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(n.max(1));
    let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in buffers.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for workers in [1, 2, 8, 500] {
            assert_eq!(parallel_map(257, workers, |i| i * i), expected);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_land_at_index_slots_not_completion_order() {
        // Make early indices finish last: slot order must still hold.
        let out = parallel_map(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }
}
