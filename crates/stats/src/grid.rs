//! Sweep grids for parameter scans and plot axes.
//!
//! The figure harness sweeps swarm capacity over several decades (Figs. 2 and
//! 5 use log-x axes from 10⁻³ to 10⁴), so both linear and logarithmic grids
//! are provided.

/// `points` linearly spaced values covering `[lo, hi]` inclusive.
///
/// Returns an empty vector when `points == 0` or when the bounds are not
/// finite; returns `[lo]` when `points == 1` or `lo == hi`.
///
/// # Example
///
/// ```
/// let g = consume_local_stats::grid::lin_spaced(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn lin_spaced(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points == 0 || !lo.is_finite() || !hi.is_finite() {
        return Vec::new();
    }
    if points == 1 || lo == hi {
        return vec![lo];
    }
    let step = (hi - lo) / (points - 1) as f64;
    (0..points).map(|i| lo + step * i as f64).collect()
}

/// `points` logarithmically spaced values covering `[lo, hi]` inclusive.
///
/// Both bounds must be strictly positive; otherwise an empty vector is
/// returned.
///
/// # Example
///
/// ```
/// let g = consume_local_stats::grid::log_spaced(0.01, 100.0, 5);
/// assert_eq!(g.len(), 5);
/// assert!((g[2] - 1.0).abs() < 1e-12);
/// ```
pub fn log_spaced(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if lo <= 0.0 || hi <= 0.0 || !lo.is_finite() || !hi.is_finite() {
        return Vec::new();
    }
    lin_spaced(lo.ln(), hi.ln(), points)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lin_endpoints_exact() {
        let g = lin_spaced(-2.0, 3.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], -2.0);
        assert!((g[10] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lin_degenerate_cases() {
        assert!(lin_spaced(0.0, 1.0, 0).is_empty());
        assert_eq!(lin_spaced(2.0, 5.0, 1), vec![2.0]);
        assert_eq!(lin_spaced(2.0, 2.0, 7), vec![2.0]);
        assert!(lin_spaced(f64::NAN, 1.0, 4).is_empty());
    }

    #[test]
    fn log_is_geometric() {
        let g = log_spaced(1.0, 1000.0, 4);
        for w in g.windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn log_rejects_nonpositive() {
        assert!(log_spaced(0.0, 10.0, 4).is_empty());
        assert!(log_spaced(-1.0, 10.0, 4).is_empty());
        assert!(log_spaced(1.0, f64::INFINITY, 4).is_empty());
    }

    #[test]
    fn grids_are_monotone() {
        for g in [lin_spaced(0.5, 9.5, 33), log_spaced(0.001, 10_000.0, 57)] {
            for w in g.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }
}
