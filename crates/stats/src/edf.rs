//! Empirical distribution functions.
//!
//! The paper's Figs. 3 and 6 are empirical CCDF/CDF plots over per-swarm and
//! per-user quantities. [`Edf`] holds a sorted sample and evaluates CDF, CCDF
//! and quantiles, and can render evenly or logarithmically spaced plotting
//! series.

use serde::{Deserialize, Serialize};

use crate::grid;

/// An empirical distribution over a set of `f64` samples.
///
/// Construction sorts the (finite) samples once; evaluation is `O(log n)`.
///
/// # Example
///
/// ```
/// use consume_local_stats::Edf;
///
/// let edf = Edf::from_samples([1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(edf.cdf(0.5), 0.0);
/// assert_eq!(edf.cdf(2.0), 0.75);
/// assert_eq!(edf.ccdf(2.0), 0.25);
/// assert_eq!(edf.quantile(0.5), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edf {
    sorted: Vec<f64>,
}

impl Edf {
    /// Builds an EDF from any collection of samples.
    ///
    /// Non-finite samples (NaN, ±∞) are dropped; an all-non-finite or empty
    /// input yields an empty EDF for which every query returns the neutral
    /// value documented on the respective method.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite filtered"));
        Self { sorted }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the EDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `P(X <= x)`. Returns 0 for an empty EDF.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)`. Returns 0 for an empty EDF.
    pub fn ccdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        1.0 - self.cdf(x)
    }

    /// The `q`-th quantile (nearest-rank), `q ∈ [0, 1]`.
    ///
    /// Returns `None` for an empty EDF or an out-of-range `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// The median, if any samples exist.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Sample mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Fraction of samples strictly greater than `x` — alias of [`Edf::ccdf`]
    /// for readability at call sites such as "share of carbon-positive users".
    pub fn fraction_above(&self, x: f64) -> f64 {
        self.ccdf(x)
    }

    /// The staircase points `(x_i, CDF(x_i))` for each distinct sample.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        self.distinct_points(|i, n| (i + 1) as f64 / n as f64)
    }

    /// The staircase points `(x_i, CCDF(x_i))` for each distinct sample.
    pub fn ccdf_points(&self) -> Vec<(f64, f64)> {
        self.distinct_points(|i, n| 1.0 - (i + 1) as f64 / n as f64)
    }

    fn distinct_points(&self, f: impl Fn(usize, usize) -> f64) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < n {
            let x = self.sorted[i];
            let mut j = i;
            while j + 1 < n && self.sorted[j + 1] == x {
                j += 1;
            }
            out.push((x, f(j, n)));
            i = j + 1;
        }
        out
    }

    /// CCDF evaluated on a log-spaced grid, as used for the log-x CCDF plots
    /// of Fig. 3. Empty if the EDF is empty or `lo`/`hi` are invalid.
    pub fn ccdf_log_series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        grid::log_spaced(lo, hi, points)
            .into_iter()
            .map(|x| (x, self.ccdf(x)))
            .collect()
    }

    /// CDF evaluated on a linearly spaced grid (Fig. 6 style).
    pub fn cdf_linear_series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        grid::lin_spaced(lo, hi, points)
            .into_iter()
            .map(|x| (x, self.cdf(x)))
            .collect()
    }
}

impl FromIterator<f64> for Edf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

impl Extend<f64> for Edf {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.sorted
            .extend(iter.into_iter().filter(|x| x.is_finite()));
        self.sorted
            .sort_by(|a, b| a.partial_cmp(b).expect("non-finite filtered"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_edf_is_neutral() {
        let e = Edf::from_samples(std::iter::empty());
        assert!(e.is_empty());
        assert_eq!(e.cdf(1.0), 0.0);
        assert_eq!(e.ccdf(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
        assert!(e.cdf_points().is_empty());
    }

    #[test]
    fn drops_non_finite() {
        let e = Edf::from_samples([1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn cdf_and_ccdf_are_complementary() {
        let e = Edf::from_samples([5.0, 1.0, 3.0, 3.0, 9.0]);
        for x in [-1.0, 1.0, 2.0, 3.0, 8.9, 9.0, 10.0] {
            assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
        }
        assert_eq!(e.cdf(9.0), 1.0);
        assert_eq!(e.cdf(-1.0), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Edf::from_samples([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.25), Some(10.0));
        assert_eq!(e.quantile(0.26), Some(20.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(1.0), Some(40.0));
        assert_eq!(e.quantile(1.5), None);
        assert_eq!(e.median(), Some(20.0));
    }

    #[test]
    fn staircase_points_deduplicate() {
        let e = Edf::from_samples([2.0, 2.0, 2.0, 7.0]);
        assert_eq!(e.cdf_points(), vec![(2.0, 0.75), (7.0, 1.0)]);
        assert_eq!(e.ccdf_points(), vec![(2.0, 0.25), (7.0, 0.0)]);
    }

    #[test]
    fn cdf_is_monotone_on_series() {
        let e = Edf::from_samples((0..100).map(|i| ((i * 37) % 100) as f64));
        let series = e.cdf_linear_series(-10.0, 110.0, 64);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn ccdf_log_series_is_monotone_decreasing() {
        let e = Edf::from_samples((1..=1000).map(|i| i as f64));
        let series = e.ccdf_log_series(0.1, 2000.0, 50);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn extend_and_collect() {
        let mut e: Edf = [3.0, 1.0].into_iter().collect();
        e.extend([2.0, f64::NAN]);
        assert_eq!(e.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn fraction_above_matches_ccdf() {
        let e = Edf::from_samples([-1.0, 0.0, 0.5, 1.0]);
        assert_eq!(e.fraction_above(0.0), e.ccdf(0.0));
        assert_eq!(e.fraction_above(0.0), 0.5);
    }
}
