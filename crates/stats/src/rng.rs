//! Deterministic seed derivation for independent RNG streams.
//!
//! Every stochastic component of the workspace (catalogue generation, user
//! placement, arrival processes, the matcher's tie-breaking, …) draws from its
//! own named stream derived from a single master seed. This keeps whole-system
//! runs reproducible while guaranteeing that adding draws to one component
//! never perturbs another.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNG streams from a single master seed.
///
/// Stream derivation hashes the master seed together with a stream label (and
/// an optional numeric index) with the FNV-1a mix below, then seeds a
/// [`StdRng`] from the result. Two streams with different labels are
/// statistically independent for all practical purposes.
///
/// # Example
///
/// ```
/// use consume_local_stats::rng::SeedDerive;
/// use rand::Rng;
///
/// let derive = SeedDerive::new(7);
/// let mut a = derive.stream("arrivals");
/// let mut b = derive.stream("placement");
/// // Streams are independent but each is reproducible:
/// let x: u64 = a.gen();
/// let y: u64 = SeedDerive::new(7).stream("arrivals").gen();
/// assert_eq!(x, y);
/// let z: u64 = b.gen();
/// assert_ne!(x, z);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedDerive {
    master: u64,
}

impl SeedDerive {
    /// Creates a derivation context from a master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed this context was created with.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the 64-bit seed for a labelled stream.
    pub fn seed_for(&self, label: &str) -> u64 {
        let mut h = fnv1a(self.master.to_le_bytes().as_slice(), FNV_OFFSET);
        h = fnv1a(label.as_bytes(), h);
        splitmix64(h)
    }

    /// Derives the 64-bit seed for a labelled, indexed stream.
    ///
    /// Useful when a family of objects (e.g. one stream per content item)
    /// each needs its own stream.
    pub fn seed_for_indexed(&self, label: &str, index: u64) -> u64 {
        let mut h = fnv1a(self.master.to_le_bytes().as_slice(), FNV_OFFSET);
        h = fnv1a(label.as_bytes(), h);
        h = fnv1a(index.to_le_bytes().as_slice(), h);
        splitmix64(h)
    }

    /// Creates a fresh RNG for a labelled stream.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(label))
    }

    /// Creates a fresh RNG for a labelled, indexed stream.
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_indexed(label, index))
    }

    /// Derives a child context, e.g. one per simulation shard.
    pub fn child(&self, label: &str) -> SeedDerive {
        SeedDerive::new(self.seed_for(label))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Finalising mix (splitmix64) so that similar inputs map to well-spread seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let d = SeedDerive::new(123);
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(d.stream("x"), |r, _| Some(r.gen()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(d.stream("x"), |r, _| Some(r.gen()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let d = SeedDerive::new(123);
        assert_ne!(d.seed_for("a"), d.seed_for("b"));
        assert_ne!(d.seed_for("a"), d.seed_for_indexed("a", 0));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedDerive::new(1).seed_for("a"),
            SeedDerive::new(2).seed_for("a")
        );
    }

    #[test]
    fn indexed_streams_differ() {
        let d = SeedDerive::new(9);
        let s0 = d.seed_for_indexed("item", 0);
        let s1 = d.seed_for_indexed("item", 1);
        assert_ne!(s0, s1);
    }

    #[test]
    fn child_contexts_are_namespaced() {
        let d = SeedDerive::new(5);
        let c1 = d.child("shard-1");
        let c2 = d.child("shard-2");
        assert_ne!(c1.seed_for("x"), c2.seed_for("x"));
        assert_ne!(c1.seed_for("x"), d.seed_for("x"));
    }

    #[test]
    fn master_accessor_round_trips() {
        assert_eq!(SeedDerive::new(77).master(), 77);
    }
}
