//! Linear- and log-bucketed histograms.
//!
//! Used by the trace generator's sanity reports and by the examples to render
//! terminal-friendly views of capacity and savings distributions.

use serde::{Deserialize, Serialize};

/// Bucketing strategy for a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Buckets {
    /// `count` equal-width buckets over `[lo, hi)`.
    Linear {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
        /// Number of buckets.
        count: usize,
    },
    /// `count` equal-ratio buckets over `[lo, hi)`; requires `0 < lo < hi`.
    Logarithmic {
        /// Lower bound (inclusive, > 0).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
        /// Number of buckets.
        count: usize,
    },
}

/// Error from [`Histogram::new`] on an invalid bucketing spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketError;

impl std::fmt::Display for BucketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid histogram buckets: need finite bounds, lo < hi (lo > 0 for log), count > 0"
        )
    }
}

impl std::error::Error for BucketError {}

/// A fixed-bucket histogram with explicit underflow/overflow counters.
///
/// # Example
///
/// ```
/// use consume_local_stats::histogram::{Buckets, Histogram};
///
/// # fn main() -> Result<(), consume_local_stats::histogram::BucketError> {
/// let mut h = Histogram::new(Buckets::Linear { lo: 0.0, hi: 10.0, count: 5 })?;
/// h.record(3.0);
/// h.record(-1.0); // underflow
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.underflow(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Buckets,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket layout.
    ///
    /// # Errors
    ///
    /// Returns [`BucketError`] if bounds are non-finite, out of order, zero
    /// buckets are requested, or a log layout has a non-positive lower bound.
    pub fn new(buckets: Buckets) -> Result<Self, BucketError> {
        let ok = match buckets {
            Buckets::Linear { lo, hi, count } => {
                lo.is_finite() && hi.is_finite() && lo < hi && count > 0
            }
            Buckets::Logarithmic { lo, hi, count } => {
                lo.is_finite() && hi.is_finite() && lo > 0.0 && lo < hi && count > 0
            }
        };
        if !ok {
            return Err(BucketError);
        }
        let n = match buckets {
            Buckets::Linear { count, .. } | Buckets::Logarithmic { count, .. } => count,
        };
        Ok(Self {
            buckets,
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Records one sample. Non-finite samples are counted as overflow.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        match self.bucket_index(x) {
            BucketSlot::Under => self.underflow += 1,
            BucketSlot::Over => self.overflow += 1,
            BucketSlot::At(i) => self.counts[i] += 1,
        }
    }

    /// Records many samples.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.record(x);
        }
    }

    fn bucket_index(&self, x: f64) -> BucketSlot {
        if !x.is_finite() {
            return BucketSlot::Over;
        }
        match self.buckets {
            Buckets::Linear { lo, hi, count } => {
                if x < lo {
                    BucketSlot::Under
                } else if x >= hi {
                    BucketSlot::Over
                } else {
                    let f = (x - lo) / (hi - lo);
                    BucketSlot::At(((f * count as f64) as usize).min(count - 1))
                }
            }
            Buckets::Logarithmic { lo, hi, count } => {
                if x < lo {
                    BucketSlot::Under
                } else if x >= hi {
                    BucketSlot::Over
                } else {
                    let f = (x / lo).ln() / (hi / lo).ln();
                    BucketSlot::At(((f * count as f64) as usize).min(count - 1))
                }
            }
        }
    }

    /// The `(lo, hi)` bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bucket index out of range");
        match self.buckets {
            Buckets::Linear { lo, hi, count } => {
                let w = (hi - lo) / count as f64;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
            Buckets::Logarithmic { lo, hi, count } => {
                let r = (hi / lo).powf(1.0 / count as f64);
                (lo * r.powi(i as i32), lo * r.powi(i as i32 + 1))
            }
        }
    }

    /// Count in bucket `i` (0 when out of range).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no buckets exist (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Samples below the lowest bucket.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the highest bucket bound (plus non-finite ones).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterator over `(bucket_lo, bucket_hi, count)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.counts.len()).map(|i| {
            let (lo, hi) = self.bucket_bounds(i);
            (lo, hi, self.counts[i])
        })
    }
}

enum BucketSlot {
    Under,
    At(usize),
    Over,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::new(Buckets::Linear {
            lo: 0.0,
            hi: 10.0,
            count: 10,
        })
        .unwrap();
        h.record_all([0.0, 0.999, 5.0, 9.999, 10.0, -0.1]);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(5), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn log_bucketing_covers_decades() {
        let mut h = Histogram::new(Buckets::Logarithmic {
            lo: 0.001,
            hi: 1000.0,
            count: 6,
        })
        .unwrap();
        // Decade midpoints land in consecutive buckets.
        h.record_all([0.003, 0.03, 0.3, 3.0, 30.0, 300.0]);
        for i in 0..6 {
            assert_eq!(h.bucket_count(i), 1, "bucket {i}");
        }
        let (lo, hi) = h.bucket_bounds(0);
        assert!((lo - 0.001).abs() < 1e-12);
        assert!((hi - 0.01).abs() < 1e-6);
    }

    #[test]
    fn counts_conserved() {
        let mut h = Histogram::new(Buckets::Linear {
            lo: -1.0,
            hi: 1.0,
            count: 4,
        })
        .unwrap();
        h.record_all((0..1000).map(|i| (i as f64 / 100.0).sin()));
        let in_buckets: u64 = (0..h.len()).map(|i| h.bucket_count(i)).sum();
        assert_eq!(in_buckets + h.underflow() + h.overflow(), h.total());
    }

    #[test]
    fn rejects_bad_layouts() {
        assert!(Histogram::new(Buckets::Linear {
            lo: 1.0,
            hi: 1.0,
            count: 4
        })
        .is_err());
        assert!(Histogram::new(Buckets::Linear {
            lo: 0.0,
            hi: 1.0,
            count: 0
        })
        .is_err());
        assert!(Histogram::new(Buckets::Logarithmic {
            lo: 0.0,
            hi: 1.0,
            count: 2
        })
        .is_err());
        assert!(Histogram::new(Buckets::Logarithmic {
            lo: f64::NAN,
            hi: 1.0,
            count: 2
        })
        .is_err());
    }

    #[test]
    fn non_finite_goes_to_overflow() {
        let mut h = Histogram::new(Buckets::Linear {
            lo: 0.0,
            hi: 1.0,
            count: 2,
        })
        .unwrap();
        h.record(f64::NAN);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn rows_iterate_in_order() {
        let h = Histogram::new(Buckets::Linear {
            lo: 0.0,
            hi: 4.0,
            count: 4,
        })
        .unwrap();
        let rows: Vec<_> = h.rows().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, 0.0);
        assert_eq!(rows[3].1, 4.0);
    }
}
