//! User positions within an ISP's metropolitan tree.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an exchange point within one ISP's tree (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExchangeId(pub u32);

/// Identifier of a point of presence within one ISP's tree (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PopId(pub u32);

impl fmt::Display for ExchangeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exp{}", self.0)
    }
}

impl fmt::Display for PopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pop{}", self.0)
    }
}

/// A user's attachment point in the tree: the exchange point it hangs off and
/// that exchange point's parent PoP.
///
/// Construct through [`IspTopology::location_of`](crate::IspTopology::location_of)
/// (or [`IspTopology::random_location`](crate::IspTopology::random_location)),
/// which guarantees the tree invariant `pop == parent(exchange)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserLocation {
    exchange: ExchangeId,
    pop: PopId,
}

impl UserLocation {
    /// Crate-internal constructor; the tree derives `pop` from `exchange`.
    pub(crate) fn new(exchange: ExchangeId, pop: PopId) -> Self {
        Self { exchange, pop }
    }

    /// Rebuilds a location from serialized parts **without** checking the
    /// tree invariant against any topology.
    ///
    /// Intended for deserialisation paths (trace CSV import) where both ids
    /// were produced by [`IspTopology::location_of`](crate::IspTopology::location_of)
    /// in the first place. Constructing locations whose `pop` is not the
    /// exchange's parent in the topology being simulated yields meaningless
    /// closeness results.
    pub fn from_raw_parts(exchange: ExchangeId, pop: PopId) -> Self {
        Self { exchange, pop }
    }

    /// The exchange point this user hangs off.
    pub fn exchange(&self) -> ExchangeId {
        self.exchange
    }

    /// The PoP parenting this user's exchange point.
    pub fn pop(&self) -> PopId {
        self.pop
    }
}

impl fmt::Display for UserLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.pop, self.exchange)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let loc = UserLocation::new(ExchangeId(17), PopId(3));
        assert_eq!(loc.to_string(), "pop3/exp17");
        assert_eq!(loc.exchange(), ExchangeId(17));
        assert_eq!(loc.pop(), PopId(3));
    }

    #[test]
    fn ids_order_numerically() {
        assert!(ExchangeId(2) < ExchangeId(10));
        assert!(PopId(0) < PopId(1));
    }
}
