//! ISP metropolitan network topology for the `consume-local` workspace.
//!
//! The paper models an ISP's metropolitan network as a three-layer tree
//! (Fig. 1): end users hang off *exchange points* (ExP), exchange points off
//! *points of presence* (PoP), and PoPs off a single nationwide *core router*.
//! For the large London ISP of the paper (Table III) the counts are 345
//! exchange points, 9 PoPs and 1 core router, giving per-layer localisation
//! probabilities `p_exp = 1/345 ≈ 0.29 %`, `p_pop = 1/9 ≈ 11.11 %`,
//! `p_core = 1`.
//!
//! This crate provides:
//!
//! * [`Layer`] — the three aggregation layers, ordered by network distance;
//! * [`IspTopology`] — a parametric tree with localisation probabilities and
//!   the ExP → PoP mapping;
//! * [`UserLocation`] and [`IspTopology::closeness`] — where a user sits in
//!   the tree and the layer at which two users' paths meet;
//! * [`IspProfile`] / [`IspRegistry`] — the five London-scale ISPs used in
//!   the evaluation (ISP-1 is the published Table III topology);
//! * [`localisation_table`](IspTopology::localisation_table) — regenerates
//!   Table III.
//!
//! # Example
//!
//! ```
//! use consume_local_topology::{IspTopology, Layer};
//!
//! # fn main() -> Result<(), consume_local_topology::TopologyError> {
//! let isp = IspTopology::london_table3()?;
//! assert_eq!(isp.node_count(Layer::ExchangePoint), 345);
//! assert!((isp.localisation_probability(Layer::PointOfPresence) - 1.0 / 9.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod isp;
mod layer;
mod location;
mod tree;

pub use isp::{IspId, IspProfile, IspRegistry, RegistryError};
pub use layer::Layer;
pub use location::{ExchangeId, PopId, UserLocation};
pub use tree::{IspTopology, LocalisationRow, TopologyError};
