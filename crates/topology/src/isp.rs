//! ISP profiles and the London top-5 registry used by the evaluation.
//!
//! The paper evaluates "the top 5 ISPs" in London (Figs. 2 and 4) and
//! publishes the tree of the largest one (Table III). The remaining four
//! trees are not published; the registry below instantiates plausible
//! smaller trees so the reproduction exhibits the same ISP spread. See
//! DESIGN.md §2 for the substitution rationale.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tree::IspTopology;

/// Index of an ISP within an [`IspRegistry`] (0-based; ISP-1 of the paper is
/// index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IspId(pub u8);

impl fmt::Display for IspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper numbering is 1-based ("ISP-1" is the biggest).
        write!(f, "ISP-{}", self.0 + 1)
    }
}

/// One ISP: its metropolitan tree and its subscriber market share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspProfile {
    /// Registry identifier.
    pub id: IspId,
    /// Human-readable name.
    pub name: String,
    /// Share of users subscribed to this ISP (the registry normalises shares
    /// to sum to 1).
    pub market_share: f64,
    /// The ISP's metropolitan tree.
    pub topology: IspTopology,
}

/// Error from [`IspRegistry`] construction.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// At least one ISP is required.
    Empty,
    /// Market shares must be positive and finite.
    BadShare {
        /// Name of the offending ISP.
        name: String,
        /// The offending share value.
        share: f64,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Empty => write!(f, "registry needs at least one ISP"),
            RegistryError::BadShare { name, share } => {
                write!(f, "ISP `{name}` has invalid market share {share}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A set of ISPs covering the modelled city, with normalised market shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspRegistry {
    profiles: Vec<IspProfile>,
}

impl IspRegistry {
    /// Builds a registry from `(name, market_share, topology)` triples.
    /// Shares are normalised to sum to one; ids are assigned by position.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Empty`] with no ISPs, or
    /// [`RegistryError::BadShare`] for a non-positive/non-finite share.
    pub fn new(entries: Vec<(String, f64, IspTopology)>) -> Result<Self, RegistryError> {
        if entries.is_empty() {
            return Err(RegistryError::Empty);
        }
        for (name, share, _) in &entries {
            if !share.is_finite() || *share <= 0.0 {
                return Err(RegistryError::BadShare {
                    name: name.clone(),
                    share: *share,
                });
            }
        }
        let total: f64 = entries.iter().map(|(_, s, _)| s).sum();
        let profiles = entries
            .into_iter()
            .enumerate()
            .map(|(i, (name, share, topology))| IspProfile {
                id: IspId(i as u8),
                name,
                market_share: share / total,
                topology,
            })
            .collect();
        Ok(Self { profiles })
    }

    /// The five London-scale ISPs used throughout the reproduction.
    ///
    /// ISP-1 is the Table III topology (345 ExP / 9 PoP). Market shares
    /// follow the approximate UK fixed-broadband landscape of 2013/14; the
    /// other trees are plausible but synthetic (see DESIGN.md §2).
    pub fn london_top5() -> Self {
        let mk = |e, p| IspTopology::new(e, p).expect("static topology is valid");
        Self::new(vec![
            ("ISP-1".to_owned(), 0.32, mk(345, 9)),
            ("ISP-2".to_owned(), 0.24, mk(290, 8)),
            ("ISP-3".to_owned(), 0.20, mk(240, 7)),
            ("ISP-4".to_owned(), 0.14, mk(170, 6)),
            ("ISP-5".to_owned(), 0.10, mk(110, 4)),
        ])
        .expect("static registry is valid")
    }

    /// A single-ISP registry wrapping the Table III tree — convenient for
    /// closed-form analyses that ignore the ISP split.
    pub fn single_table3() -> Self {
        Self::new(vec![(
            "ISP-1".to_owned(),
            1.0,
            IspTopology::london_table3().expect("table3 topology is valid"),
        )])
        .expect("static registry is valid")
    }

    /// All profiles, ordered by id (largest market share first for the
    /// built-in registries).
    pub fn profiles(&self) -> &[IspProfile] {
        &self.profiles
    }

    /// Number of ISPs.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the registry is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Looks up a profile by id.
    pub fn get(&self, id: IspId) -> Option<&IspProfile> {
        self.profiles.get(id.0 as usize)
    }

    /// The market shares, indexable by `IspId.0` — the sampling weights the
    /// workload generator feeds to a categorical distribution.
    pub fn market_shares(&self) -> Vec<f64> {
        self.profiles.iter().map(|p| p.market_share).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn london_top5_shares_normalised() {
        let reg = IspRegistry::london_top5();
        assert_eq!(reg.len(), 5);
        let total: f64 = reg.market_shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Largest first.
        let shares = reg.market_shares();
        for w in shares.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn isp1_is_table3() {
        let reg = IspRegistry::london_top5();
        let isp1 = reg.get(IspId(0)).unwrap();
        assert_eq!(isp1.topology, IspTopology::london_table3().unwrap());
    }

    #[test]
    fn ids_are_positional_and_display_one_based() {
        let reg = IspRegistry::london_top5();
        for (i, p) in reg.profiles().iter().enumerate() {
            assert_eq!(p.id, IspId(i as u8));
        }
        assert_eq!(IspId(0).to_string(), "ISP-1");
        assert_eq!(IspId(4).to_string(), "ISP-5");
    }

    #[test]
    fn normalisation_of_custom_shares() {
        let t = IspTopology::new(10, 2).unwrap();
        let reg =
            IspRegistry::new(vec![("a".into(), 3.0, t.clone()), ("b".into(), 1.0, t)]).unwrap();
        let shares = reg.market_shares();
        assert!((shares[0] - 0.75).abs() < 1e-12);
        assert!((shares[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            IspRegistry::new(vec![]),
            Err(RegistryError::Empty)
        ));
        let t = IspTopology::new(10, 2).unwrap();
        let err = IspRegistry::new(vec![("x".into(), 0.0, t)]).unwrap_err();
        assert!(err.to_string().contains("invalid market share"));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let reg = IspRegistry::single_table3();
        assert!(reg.get(IspId(0)).is_some());
        assert!(reg.get(IspId(1)).is_none());
        assert!(!reg.is_empty());
    }
}
