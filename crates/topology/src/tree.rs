//! The parametric three-layer metropolitan tree.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::location::{ExchangeId, PopId, UserLocation};

/// Error from [`IspTopology`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Layer node counts must be at least one.
    ZeroNodes {
        /// The offending layer.
        layer: Layer,
    },
    /// A tree needs at least as many exchange points as PoPs.
    FewerExchangesThanPops {
        /// Number of exchange points requested.
        exchanges: u32,
        /// Number of PoPs requested.
        pops: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroNodes { layer } => {
                write!(f, "layer {layer} must have at least one node")
            }
            TopologyError::FewerExchangesThanPops { exchanges, pops } => write!(
                f,
                "tree needs at least as many exchange points ({exchanges}) as PoPs ({pops})"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// One row of the paper's Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalisationRow {
    /// The tree layer.
    pub layer: Layer,
    /// Number of nodes at this layer.
    pub count: u32,
    /// Probability that a random peer is under a *given* node of this layer.
    pub probability: f64,
}

/// A three-layer ISP metropolitan tree (exchange points → PoPs → one core).
///
/// Exchange points are assigned to PoPs round-robin, which keeps PoP subtree
/// sizes balanced to within one exchange point — consistent with the paper's
/// uniform localisation probabilities (`p_pop = 1/n_pop` presumes balanced
/// subtrees).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IspTopology {
    n_exchanges: u32,
    n_pops: u32,
}

impl IspTopology {
    /// Creates a tree with the given numbers of exchange points and PoPs
    /// (plus the implicit single core router).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroNodes`] if either count is zero and
    /// [`TopologyError::FewerExchangesThanPops`] if `n_exchanges < n_pops`.
    pub fn new(n_exchanges: u32, n_pops: u32) -> Result<Self, TopologyError> {
        if n_exchanges == 0 {
            return Err(TopologyError::ZeroNodes {
                layer: Layer::ExchangePoint,
            });
        }
        if n_pops == 0 {
            return Err(TopologyError::ZeroNodes {
                layer: Layer::PointOfPresence,
            });
        }
        if n_exchanges < n_pops {
            return Err(TopologyError::FewerExchangesThanPops {
                exchanges: n_exchanges,
                pops: n_pops,
            });
        }
        Ok(Self {
            n_exchanges,
            n_pops,
        })
    }

    /// The topology of the large London ISP published in Table III:
    /// 345 exchange points, 9 PoPs, 1 core router.
    pub fn london_table3() -> Result<Self, TopologyError> {
        Self::new(345, 9)
    }

    /// Number of nodes at a layer (`Core` is always 1).
    pub fn node_count(&self, layer: Layer) -> u32 {
        match layer {
            Layer::ExchangePoint => self.n_exchanges,
            Layer::PointOfPresence => self.n_pops,
            Layer::Core => 1,
        }
    }

    /// Probability that a uniformly placed peer sits under a *given* node of
    /// `layer` — the `p_exp`/`p_pop`/`p_core` of Table III.
    pub fn localisation_probability(&self, layer: Layer) -> f64 {
        1.0 / f64::from(self.node_count(layer))
    }

    /// The `(p_exp, p_pop, p_core)` triple used throughout the analytics.
    pub fn localisation_probabilities(&self) -> [f64; 3] {
        [
            self.localisation_probability(Layer::ExchangePoint),
            self.localisation_probability(Layer::PointOfPresence),
            self.localisation_probability(Layer::Core),
        ]
    }

    /// The parent PoP of an exchange point (round-robin assignment).
    ///
    /// # Panics
    ///
    /// Panics if `exchange` is out of range for this tree.
    pub fn parent_pop(&self, exchange: ExchangeId) -> PopId {
        assert!(
            exchange.0 < self.n_exchanges,
            "exchange {exchange} out of range"
        );
        PopId(exchange.0 % self.n_pops)
    }

    /// The full location (exchange + parent PoP) of an exchange point.
    ///
    /// # Panics
    ///
    /// Panics if `exchange` is out of range for this tree.
    pub fn location_of(&self, exchange: ExchangeId) -> UserLocation {
        UserLocation::new(exchange, self.parent_pop(exchange))
    }

    /// A uniformly random user location, matching the paper's assumption that
    /// a peer is equally likely to be under any exchange point.
    pub fn random_location<R: Rng + ?Sized>(&self, rng: &mut R) -> UserLocation {
        self.location_of(ExchangeId(rng.gen_range(0..self.n_exchanges)))
    }

    /// The layer at which the network paths of two users meet:
    /// same exchange point → [`Layer::ExchangePoint`]; same PoP →
    /// [`Layer::PointOfPresence`]; otherwise [`Layer::Core`].
    pub fn closeness(&self, a: &UserLocation, b: &UserLocation) -> Layer {
        if a.exchange() == b.exchange() {
            Layer::ExchangePoint
        } else if a.pop() == b.pop() {
            Layer::PointOfPresence
        } else {
            Layer::Core
        }
    }

    /// Regenerates the paper's Table III for this tree.
    pub fn localisation_table(&self) -> Vec<LocalisationRow> {
        Layer::ALL
            .iter()
            .map(|&layer| LocalisationRow {
                layer,
                count: self.node_count(layer),
                probability: self.localisation_probability(layer),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table3_probabilities() {
        let t = IspTopology::london_table3().unwrap();
        let [p_exp, p_pop, p_core] = t.localisation_probabilities();
        assert!((p_exp - 1.0 / 345.0).abs() < 1e-15);
        assert!((p_pop - 1.0 / 9.0).abs() < 1e-15);
        assert_eq!(p_core, 1.0);
        // Paper's printed percentages.
        assert!((p_exp * 100.0 - 0.29).abs() < 0.005);
        assert!((p_pop * 100.0 - 11.11).abs() < 0.005);
    }

    #[test]
    fn construction_validation() {
        assert!(IspTopology::new(0, 1).is_err());
        assert!(IspTopology::new(1, 0).is_err());
        assert!(IspTopology::new(3, 5).is_err());
        assert!(IspTopology::new(5, 5).is_ok());
    }

    #[test]
    fn round_robin_parent_is_balanced() {
        let t = IspTopology::new(10, 3).unwrap();
        let mut counts = [0u32; 3];
        for e in 0..10 {
            counts[t.parent_pop(ExchangeId(e)).0 as usize] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "subtrees must be balanced: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn parent_pop_rejects_out_of_range() {
        let t = IspTopology::new(4, 2).unwrap();
        let _ = t.parent_pop(ExchangeId(4));
    }

    #[test]
    fn closeness_hierarchy() {
        let t = IspTopology::new(6, 2).unwrap();
        let a = t.location_of(ExchangeId(0)); // pop 0
        let same_exp = t.location_of(ExchangeId(0));
        let same_pop = t.location_of(ExchangeId(2)); // 2 % 2 == 0
        let other_pop = t.location_of(ExchangeId(1)); // 1 % 2 == 1
        assert_eq!(t.closeness(&a, &same_exp), Layer::ExchangePoint);
        assert_eq!(t.closeness(&a, &same_pop), Layer::PointOfPresence);
        assert_eq!(t.closeness(&a, &other_pop), Layer::Core);
        // Symmetry.
        assert_eq!(t.closeness(&other_pop, &a), Layer::Core);
    }

    #[test]
    fn random_location_is_uniformish_and_valid() {
        let t = IspTopology::new(20, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0u32; 20];
        for _ in 0..20_000 {
            let loc = t.random_location(&mut rng);
            assert_eq!(loc.pop(), t.parent_pop(loc.exchange()));
            counts[loc.exchange().0 as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "exchange counts {counts:?}");
        }
    }

    #[test]
    fn localisation_table_matches_accessors() {
        let t = IspTopology::london_table3().unwrap();
        let rows = t.localisation_table();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].count, 345);
        assert_eq!(rows[1].count, 9);
        assert_eq!(rows[2].count, 1);
        assert_eq!(rows[2].probability, 1.0);
    }

    #[test]
    fn error_display() {
        let e = IspTopology::new(2, 5).unwrap_err();
        assert!(e.to_string().contains("exchange points"));
        let e = IspTopology::new(0, 5).unwrap_err();
        assert!(e.to_string().contains("at least one node"));
    }
}
