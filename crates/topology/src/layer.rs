//! The three aggregation layers of the metropolitan tree.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A layer of the ISP metropolitan tree at which two users' paths can meet.
///
/// Ordered by network distance: `ExchangePoint < PointOfPresence < Core`.
/// Peer-to-peer traffic localised at a lower layer traverses less equipment
/// and therefore costs less energy per bit (`γ_exp < γ_pop < γ_core` in both
/// published parameter sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// The street-cabinet/exchange level: the last aggregation point before
    /// customer premises (345 of them for the Table III ISP).
    ExchangePoint,
    /// Metropolitan point of presence (9 for the Table III ISP).
    PointOfPresence,
    /// The nationwide core router (always exactly one per ISP in this model).
    Core,
}

impl Layer {
    /// All layers, ordered from closest (exchange point) to farthest (core).
    pub const ALL: [Layer; 3] = [Layer::ExchangePoint, Layer::PointOfPresence, Layer::Core];

    /// Index of the layer in [`Layer::ALL`] (0 = exchange point).
    pub fn index(self) -> usize {
        match self {
            Layer::ExchangePoint => 0,
            Layer::PointOfPresence => 1,
            Layer::Core => 2,
        }
    }

    /// Short label used in tables and CSV output.
    pub fn short_name(self) -> &'static str {
        match self {
            Layer::ExchangePoint => "ExP",
            Layer::PointOfPresence => "PoP",
            Layer::Core => "Core",
        }
    }

    /// The next layer up (towards the core), or `None` at the core.
    pub fn parent(self) -> Option<Layer> {
        match self {
            Layer::ExchangePoint => Some(Layer::PointOfPresence),
            Layer::PointOfPresence => Some(Layer::Core),
            Layer::Core => None,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Layer::ExchangePoint => "Exchange Point",
            Layer::PointOfPresence => "Point of Presence",
            Layer::Core => "Core Router",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_network_distance() {
        assert!(Layer::ExchangePoint < Layer::PointOfPresence);
        assert!(Layer::PointOfPresence < Layer::Core);
    }

    #[test]
    fn all_is_sorted_and_indexed() {
        for (i, layer) in Layer::ALL.iter().enumerate() {
            assert_eq!(layer.index(), i);
        }
        let mut sorted = Layer::ALL;
        sorted.sort();
        assert_eq!(sorted, Layer::ALL);
    }

    #[test]
    fn parent_chain_terminates_at_core() {
        assert_eq!(Layer::ExchangePoint.parent(), Some(Layer::PointOfPresence));
        assert_eq!(Layer::PointOfPresence.parent(), Some(Layer::Core));
        assert_eq!(Layer::Core.parent(), None);
    }

    #[test]
    fn display_and_short_names() {
        assert_eq!(Layer::ExchangePoint.to_string(), "Exchange Point");
        assert_eq!(Layer::Core.short_name(), "Core");
    }
}
