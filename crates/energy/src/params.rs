//! The published energy-parameter sets (paper Table IV) and a validated
//! builder for custom sets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::EnergyPerBit;

/// Which published parameter set a model instance came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Valancius et al., *Greening the Internet with Nano Data Centers*,
    /// CoNEXT 2009. Network legs = hops × 150 nJ/bit.
    Valancius,
    /// Baliga et al., *Green Cloud Computing*, Proc. IEEE 2011. Network legs
    /// are sums over individual equipment.
    Baliga,
}

impl ModelKind {
    /// Both published parameter sets, in the order the paper tabulates them.
    pub const ALL: [ModelKind; 2] = [ModelKind::Valancius, ModelKind::Baliga];
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelKind::Valancius => f.write_str("Valancius"),
            ModelKind::Baliga => f.write_str("Baliga"),
        }
    }
}

/// Energy cost of each 150 nJ/bit network hop in the Valancius model.
pub const VALANCIUS_HOP: f64 = 150.0;

/// Hop counts the paper uses to derive the Valancius network legs:
/// CDN path 7 hops, core-localised P2P 6, PoP-localised 4, ExP-localised 2.
pub const VALANCIUS_HOPS: ValanciusHops = ValanciusHops {
    cdn: 7,
    p2p_core: 6,
    p2p_pop: 4,
    p2p_exchange: 2,
};

/// Hop counts for the Valancius hop-based derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValanciusHops {
    /// Hops between an end user and a CDN node.
    pub cdn: u32,
    /// Hops between peers whose paths meet at the core router.
    pub p2p_core: u32,
    /// Hops between peers whose paths meet at a PoP.
    pub p2p_pop: u32,
    /// Hops between peers whose paths meet at an exchange point.
    pub p2p_exchange: u32,
}

/// A complete per-bit energy parameter set (one column of the paper's
/// Table IV).
///
/// All γ values are per-bit intensities; `pue` is the power-usage
/// effectiveness applied to shared infrastructure and `loss` the end-user
/// equipment energy loss factor `l`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Which published set these values reproduce, if any.
    pub kind: Option<ModelKind>,
    /// γ_s — content server.
    pub server: EnergyPerBit,
    /// γ_m — end-user modem / customer-premises equipment.
    pub modem: EnergyPerBit,
    /// γ_cdn — network between a user and a CDN node.
    pub cdn_network: EnergyPerBit,
    /// γ_exp — P2P path localised within an exchange point.
    pub p2p_exchange: EnergyPerBit,
    /// γ_pop — P2P path localised within a PoP.
    pub p2p_pop: EnergyPerBit,
    /// γ_core — P2P path crossing the core router.
    pub p2p_core: EnergyPerBit,
    /// PUE — power usage effectiveness multiplier for shared equipment.
    pub pue: f64,
    /// l — end-user equipment energy loss factor.
    pub loss: f64,
}

impl EnergyParams {
    /// The Valancius et al. column of Table IV.
    ///
    /// Network legs are `h × 150 nJ/bit`: γ_cdn = 7 hops, γ_core = 6,
    /// γ_pop = 4, γ_exp = 2.
    pub fn valancius() -> Self {
        let hop = |h: u32| EnergyPerBit::from_nanojoules(f64::from(h) * VALANCIUS_HOP);
        Self {
            kind: Some(ModelKind::Valancius),
            server: EnergyPerBit::from_nanojoules(211.1),
            modem: EnergyPerBit::from_nanojoules(100.0),
            cdn_network: hop(VALANCIUS_HOPS.cdn),
            p2p_exchange: hop(VALANCIUS_HOPS.p2p_exchange),
            p2p_pop: hop(VALANCIUS_HOPS.p2p_pop),
            p2p_core: hop(VALANCIUS_HOPS.p2p_core),
            pue: 1.2,
            loss: 1.07,
        }
    }

    /// The Baliga et al. column of Table IV.
    ///
    /// PUE and loss follow the Valancius values "for consistency", exactly as
    /// the paper does.
    pub fn baliga() -> Self {
        Self {
            kind: Some(ModelKind::Baliga),
            server: EnergyPerBit::from_nanojoules(281.3),
            modem: EnergyPerBit::from_nanojoules(100.0),
            cdn_network: EnergyPerBit::from_nanojoules(142.5),
            p2p_exchange: EnergyPerBit::from_nanojoules(144.86),
            p2p_pop: EnergyPerBit::from_nanojoules(197.48),
            p2p_core: EnergyPerBit::from_nanojoules(245.74),
            pue: 1.2,
            loss: 1.07,
        }
    }

    /// The parameter set for a published model kind.
    pub fn of(kind: ModelKind) -> Self {
        match kind {
            ModelKind::Valancius => Self::valancius(),
            ModelKind::Baliga => Self::baliga(),
        }
    }

    /// Both published parameter sets, Valancius first (paper order).
    pub fn published() -> [Self; 2] {
        [Self::valancius(), Self::baliga()]
    }

    /// A builder for custom parameter sets (e.g. sensitivity analyses).
    pub fn builder() -> EnergyParamsBuilder {
        EnergyParamsBuilder::default()
    }

    /// Display name: the published model name or "custom".
    pub fn name(&self) -> &'static str {
        match self.kind {
            Some(ModelKind::Valancius) => "Valancius",
            Some(ModelKind::Baliga) => "Baliga",
            None => "custom",
        }
    }
}

/// Error from [`EnergyParamsBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    field: &'static str,
    value: f64,
    requirement: &'static str,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy parameter `{}` = {} violates: {}",
            self.field, self.value, self.requirement
        )
    }
}

impl std::error::Error for ParamError {}

/// Builder for custom [`EnergyParams`], defaulting every field to the
/// Valancius values so sensitivity analyses can tweak one knob at a time.
///
/// # Example
///
/// ```
/// use consume_local_energy::EnergyParams;
///
/// # fn main() -> Result<(), consume_local_energy::ParamError> {
/// let heavier_core = EnergyParams::builder().p2p_core_nj(1200.0).build()?;
/// assert_eq!(heavier_core.kind, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EnergyParamsBuilder {
    params: EnergyParams,
}

impl Default for EnergyParamsBuilder {
    fn default() -> Self {
        let mut params = EnergyParams::valancius();
        params.kind = None;
        Self { params }
    }
}

macro_rules! builder_nj {
    ($(#[$doc:meta] $name:ident => $field:ident),+ $(,)?) => {
        $(
            #[$doc]
            pub fn $name(mut self, nj_per_bit: f64) -> Self {
                self.params.$field = EnergyPerBit::from_nanojoules(nj_per_bit);
                self
            }
        )+
    };
}

impl EnergyParamsBuilder {
    builder_nj! {
        /// Sets γ_s (content server), nJ/bit.
        server_nj => server,
        /// Sets γ_m (end-user modem), nJ/bit.
        modem_nj => modem,
        /// Sets γ_cdn (user↔CDN network), nJ/bit.
        cdn_network_nj => cdn_network,
        /// Sets γ_exp (P2P within exchange point), nJ/bit.
        p2p_exchange_nj => p2p_exchange,
        /// Sets γ_pop (P2P within PoP), nJ/bit.
        p2p_pop_nj => p2p_pop,
        /// Sets γ_core (P2P across core), nJ/bit.
        p2p_core_nj => p2p_core,
    }

    /// Sets the PUE multiplier.
    pub fn pue(mut self, pue: f64) -> Self {
        self.params.pue = pue;
        self
    }

    /// Sets the end-user loss factor `l`.
    pub fn loss(mut self, loss: f64) -> Self {
        self.params.loss = loss;
        self
    }

    /// Validates and produces the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when any γ is negative or non-finite, when
    /// `pue`/`loss` are below 1 (physically they are multipliers ≥ 1), or
    /// when the P2P γ's are not ordered `γ_exp ≤ γ_pop ≤ γ_core`.
    pub fn build(self) -> Result<EnergyParams, ParamError> {
        let p = self.params;
        let checks: [(&'static str, f64); 6] = [
            ("server", p.server.as_nanojoules()),
            ("modem", p.modem.as_nanojoules()),
            ("cdn_network", p.cdn_network.as_nanojoules()),
            ("p2p_exchange", p.p2p_exchange.as_nanojoules()),
            ("p2p_pop", p.p2p_pop.as_nanojoules()),
            ("p2p_core", p.p2p_core.as_nanojoules()),
        ];
        for (field, value) in checks {
            if !value.is_finite() || value < 0.0 {
                return Err(ParamError {
                    field,
                    value,
                    requirement: "finite and non-negative",
                });
            }
        }
        for (field, value) in [("pue", p.pue), ("loss", p.loss)] {
            if !value.is_finite() || value < 1.0 {
                return Err(ParamError {
                    field,
                    value,
                    requirement: "finite and at least 1.0",
                });
            }
        }
        if p.p2p_exchange > p.p2p_pop || p.p2p_pop > p.p2p_core {
            return Err(ParamError {
                field: "p2p_exchange/p2p_pop/p2p_core",
                value: p.p2p_pop.as_nanojoules(),
                requirement: "layer ordering γ_exp ≤ γ_pop ≤ γ_core",
            });
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valancius_matches_table4() {
        let v = EnergyParams::valancius();
        assert_eq!(v.server.as_nanojoules(), 211.1);
        assert_eq!(v.modem.as_nanojoules(), 100.0);
        assert_eq!(v.cdn_network.as_nanojoules(), 1050.0);
        assert_eq!(v.p2p_exchange.as_nanojoules(), 300.0);
        assert_eq!(v.p2p_pop.as_nanojoules(), 600.0);
        assert_eq!(v.p2p_core.as_nanojoules(), 900.0);
        assert_eq!(v.pue, 1.2);
        assert_eq!(v.loss, 1.07);
        assert_eq!(v.kind, Some(ModelKind::Valancius));
    }

    #[test]
    fn baliga_matches_table4() {
        let b = EnergyParams::baliga();
        assert_eq!(b.server.as_nanojoules(), 281.3);
        assert_eq!(b.modem.as_nanojoules(), 100.0);
        assert_eq!(b.cdn_network.as_nanojoules(), 142.5);
        assert_eq!(b.p2p_exchange.as_nanojoules(), 144.86);
        assert_eq!(b.p2p_pop.as_nanojoules(), 197.48);
        assert_eq!(b.p2p_core.as_nanojoules(), 245.74);
    }

    #[test]
    fn valancius_hop_derivation() {
        let v = EnergyParams::valancius();
        assert_eq!(v.cdn_network.as_nanojoules(), 7.0 * VALANCIUS_HOP);
        assert_eq!(v.p2p_core.as_nanojoules(), 6.0 * VALANCIUS_HOP);
        assert_eq!(v.p2p_pop.as_nanojoules(), 4.0 * VALANCIUS_HOP);
        assert_eq!(v.p2p_exchange.as_nanojoules(), 2.0 * VALANCIUS_HOP);
    }

    #[test]
    fn layer_gammas_are_ordered_in_both_models() {
        for p in EnergyParams::published() {
            assert!(p.p2p_exchange < p.p2p_pop);
            assert!(p.p2p_pop < p.p2p_core);
        }
    }

    #[test]
    fn of_and_published_agree() {
        assert_eq!(
            EnergyParams::of(ModelKind::Valancius),
            EnergyParams::valancius()
        );
        assert_eq!(EnergyParams::of(ModelKind::Baliga), EnergyParams::baliga());
        assert_eq!(EnergyParams::published()[1].kind, Some(ModelKind::Baliga));
    }

    #[test]
    fn builder_validates() {
        assert!(EnergyParams::builder().build().is_ok());
        assert!(EnergyParams::builder().server_nj(-1.0).build().is_err());
        assert!(EnergyParams::builder().pue(0.5).build().is_err());
        assert!(EnergyParams::builder().loss(f64::NAN).build().is_err());
        // Violate layer ordering.
        let err = EnergyParams::builder()
            .p2p_exchange_nj(999.0)
            .p2p_pop_nj(1.0)
            .build();
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("ordering"));
    }

    #[test]
    fn builder_defaults_are_valancius_valued_custom() {
        let p = EnergyParams::builder().build().unwrap();
        assert_eq!(p.kind, None);
        assert_eq!(p.name(), "custom");
        assert_eq!(p.server, EnergyParams::valancius().server);
    }

    #[test]
    fn model_kind_display() {
        assert_eq!(ModelKind::Valancius.to_string(), "Valancius");
        assert_eq!(ModelKind::Baliga.to_string(), "Baliga");
        assert_eq!(ModelKind::ALL.len(), 2);
    }
}
