//! Typed units so that per-bit intensities, absolute energies and traffic
//! volumes cannot be mixed up.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Implements `Display` for a float newtype with a fixed unit suffix.
macro_rules! fmt_display_unit {
    ($unit:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{} {}", self.0, $unit)
        }
    };
}

/// A per-bit energy intensity in nanojoules per bit (nJ/bit) — the unit of
/// every γ and ψ in the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct EnergyPerBit(f64);

impl EnergyPerBit {
    /// Zero intensity.
    pub const ZERO: EnergyPerBit = EnergyPerBit(0.0);

    /// Creates an intensity from a nJ/bit value.
    pub fn from_nanojoules(nj_per_bit: f64) -> Self {
        Self(nj_per_bit)
    }

    /// The value in nJ/bit.
    pub fn as_nanojoules(self) -> f64 {
        self.0
    }

    /// Energy to move `traffic` at this intensity.
    pub fn energy_for(self, traffic: Traffic) -> Energy {
        // nJ/bit × bits → nJ → J
        Energy::from_joules(self.0 * traffic.as_bits() * 1e-9)
    }
}

impl Add for EnergyPerBit {
    type Output = EnergyPerBit;
    fn add(self, rhs: EnergyPerBit) -> EnergyPerBit {
        EnergyPerBit(self.0 + rhs.0)
    }
}

impl Sub for EnergyPerBit {
    type Output = EnergyPerBit;
    fn sub(self, rhs: EnergyPerBit) -> EnergyPerBit {
        EnergyPerBit(self.0 - rhs.0)
    }
}

impl Mul<f64> for EnergyPerBit {
    type Output = EnergyPerBit;
    fn mul(self, rhs: f64) -> EnergyPerBit {
        EnergyPerBit(self.0 * rhs)
    }
}

impl Mul<EnergyPerBit> for f64 {
    type Output = EnergyPerBit;
    fn mul(self, rhs: EnergyPerBit) -> EnergyPerBit {
        EnergyPerBit(self * rhs.0)
    }
}

impl Div<EnergyPerBit> for EnergyPerBit {
    type Output = f64;
    fn div(self, rhs: EnergyPerBit) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for EnergyPerBit {
    fn sum<I: Iterator<Item = EnergyPerBit>>(iter: I) -> Self {
        EnergyPerBit(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for EnergyPerBit {
    fmt_display_unit!("nJ/bit");
}

/// An absolute amount of energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy amount from joules.
    pub fn from_joules(joules: f64) -> Self {
        Self(joules)
    }

    /// The value in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// The value in kilowatt-hours (1 kWh = 3.6 MJ) — convenient for
    /// human-readable carbon statements.
    pub fn as_kwh(self) -> f64 {
        self.0 / 3.6e6
    }

    /// The fractional saving of `self` relative to `baseline`
    /// (`1 − self/baseline`); `None` when the baseline is not positive.
    pub fn savings_vs(self, baseline: Energy) -> Option<f64> {
        (baseline.0 > 0.0).then(|| 1.0 - self.0 / baseline.0)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Self {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    fmt_display_unit!("J");
}

/// A traffic volume, stored in bytes (the natural unit of the trace) but
/// convertible to bits (the natural unit of the energy models).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Traffic(u64);

impl Traffic {
    /// Zero traffic.
    pub const ZERO: Traffic = Traffic(0);

    /// Creates a traffic volume from bytes.
    pub fn from_bytes(bytes: u64) -> Self {
        Self(bytes)
    }

    /// The volume in bytes.
    pub fn as_bytes(self) -> u64 {
        self.0
    }

    /// The volume in bits as `f64` (energy math is floating point anyway).
    pub fn as_bits(self) -> f64 {
        self.0 as f64 * 8.0
    }

    /// The volume in gigabytes.
    pub fn as_gigabytes(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Traffic) -> Traffic {
        Traffic(self.0.saturating_add(rhs.0))
    }
}

impl Add for Traffic {
    type Output = Traffic;
    fn add(self, rhs: Traffic) -> Traffic {
        Traffic(self.0 + rhs.0)
    }
}

impl AddAssign for Traffic {
    fn add_assign(&mut self, rhs: Traffic) {
        self.0 += rhs.0;
    }
}

impl Sum for Traffic {
    fn sum<I: Iterator<Item = Traffic>>(iter: I) -> Self {
        Traffic(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_for_traffic() {
        // 1 GB at 100 nJ/bit: 8e9 bits × 100e-9 J = 800 J.
        let e = EnergyPerBit::from_nanojoules(100.0).energy_for(Traffic::from_bytes(1_000_000_000));
        assert!((e.as_joules() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn per_bit_arithmetic() {
        let a = EnergyPerBit::from_nanojoules(2.0);
        let b = EnergyPerBit::from_nanojoules(3.0);
        assert_eq!((a + b).as_nanojoules(), 5.0);
        assert_eq!((b - a).as_nanojoules(), 1.0);
        assert_eq!((a * 2.0).as_nanojoules(), 4.0);
        assert_eq!((2.0 * a).as_nanojoules(), 4.0);
        assert!((b / a - 1.5).abs() < 1e-15);
        let total: EnergyPerBit = [a, b].into_iter().sum();
        assert_eq!(total.as_nanojoules(), 5.0);
    }

    #[test]
    fn energy_savings_vs_baseline() {
        let hybrid = Energy::from_joules(60.0);
        let baseline = Energy::from_joules(100.0);
        assert!((hybrid.savings_vs(baseline).unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(hybrid.savings_vs(Energy::ZERO), None);
    }

    #[test]
    fn energy_accumulation() {
        let mut acc = Energy::ZERO;
        acc += Energy::from_joules(1.5);
        acc += Energy::from_joules(2.5);
        assert_eq!(acc.as_joules(), 4.0);
        let total: Energy = vec![acc, Energy::from_joules(1.0)].into_iter().sum();
        assert_eq!(total.as_joules(), 5.0);
    }

    #[test]
    fn kwh_conversion() {
        assert!((Energy::from_joules(3.6e6).as_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_units() {
        let t = Traffic::from_bytes(1_500);
        assert_eq!(t.as_bytes(), 1_500);
        assert_eq!(t.as_bits(), 12_000.0);
        let sum: Traffic = [t, Traffic::from_bytes(500)].into_iter().sum();
        assert_eq!(sum.as_bytes(), 2_000);
        assert_eq!(
            Traffic::from_bytes(u64::MAX).saturating_add(t).as_bytes(),
            u64::MAX
        );
    }

    #[test]
    fn displays_have_units() {
        assert_eq!(EnergyPerBit::from_nanojoules(1.5).to_string(), "1.5 nJ/bit");
        assert_eq!(Energy::from_joules(2.0).to_string(), "2 J");
        assert_eq!(Traffic::from_bytes(3).to_string(), "3 B");
    }
}
