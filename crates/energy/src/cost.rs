//! Per-bit cost functions ψ of Section III-D of the paper.

use serde::{Deserialize, Serialize};

use consume_local_topology::Layer;

use crate::params::EnergyParams;
use crate::units::{Energy, EnergyPerBit, Traffic};

/// The per-bit delivery cost model built on an [`EnergyParams`] set.
///
/// * Server bit: `ψ_s = PUE·(γ_s + γ_cdn) + l·γ_m` (Eq. 4).
/// * Peer bit, paths meeting at `layer`:
///   `ψ_p = 2·l·γ_m + PUE·γ_layer` (Eqs. 5–6) — the modem term is doubled
///   because both the uploader's and the downloader's premises equipment are
///   active for the transfer.
///
/// # Example
///
/// ```
/// use consume_local_energy::{CostModel, EnergyParams, Traffic};
/// use consume_local_topology::Layer;
///
/// let m = CostModel::new(EnergyParams::valancius());
/// // ψ_s = 1.2·(211.1 + 1050) + 1.07·100 = 1620.32 nJ/bit
/// assert!((m.server_cost_per_bit().as_nanojoules() - 1620.32).abs() < 1e-9);
/// let one_gb = Traffic::from_bytes(1_000_000_000);
/// let server = m.server_energy(one_gb);
/// let local = m.peer_energy(one_gb, Layer::ExchangePoint);
/// assert!(local < server);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    params: EnergyParams,
}

impl CostModel {
    /// Wraps a parameter set.
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// The underlying parameter set.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// γ for a P2P path whose endpoints meet at `layer`.
    pub fn gamma_p2p(&self, layer: Layer) -> EnergyPerBit {
        match layer {
            Layer::ExchangePoint => self.params.p2p_exchange,
            Layer::PointOfPresence => self.params.p2p_pop,
            Layer::Core => self.params.p2p_core,
        }
    }

    /// `ψ_s` — full cost of a server-delivered bit (Eq. 4).
    pub fn server_cost_per_bit(&self) -> EnergyPerBit {
        self.params.pue * (self.params.server + self.params.cdn_network)
            + self.params.loss * self.params.modem
    }

    /// `ψ_p^m = 2·l·γ_m` — the swarm-size-independent premises part of a
    /// peer-delivered bit.
    pub fn peer_fixed_cost_per_bit(&self) -> EnergyPerBit {
        2.0 * self.params.loss * self.params.modem
    }

    /// `ψ_p^r(layer) = PUE·γ_layer` — the network part of a peer-delivered
    /// bit whose path meets at `layer`.
    pub fn peer_network_cost_per_bit(&self, layer: Layer) -> EnergyPerBit {
        self.params.pue * self.gamma_p2p(layer)
    }

    /// `ψ_p(layer)` — full cost of a peer-delivered bit (Eqs. 5–6).
    pub fn peer_cost_per_bit(&self, layer: Layer) -> EnergyPerBit {
        self.peer_fixed_cost_per_bit() + self.peer_network_cost_per_bit(layer)
    }

    /// `l·γ_m` — cost a user's own premises equipment incurs per bit it
    /// receives *or* uploads; the basis of the carbon-credit footprint.
    pub fn user_premises_cost_per_bit(&self) -> EnergyPerBit {
        self.params.loss * self.params.modem
    }

    /// `PUE·γ_s` — server energy saved per bit offloaded to peers; the basis
    /// of the carbon credit transferred to uploaders (Section V).
    pub fn cdn_saving_per_bit(&self) -> EnergyPerBit {
        self.params.pue * self.params.server
    }

    /// Energy to serve `traffic` entirely from CDN servers.
    pub fn server_energy(&self, traffic: Traffic) -> Energy {
        self.server_cost_per_bit().energy_for(traffic)
    }

    /// Energy to serve `traffic` from peers whose paths meet at `layer`.
    pub fn peer_energy(&self, traffic: Traffic, layer: Layer) -> Energy {
        self.peer_cost_per_bit(layer).energy_for(traffic)
    }

    /// True when a peer-delivered bit at `layer` is cheaper than a
    /// server-delivered bit — the paper's core trade-off ("obtaining content
    /// from a peer … involves traversing the edge network twice").
    pub fn peer_is_cheaper(&self, layer: Layer) -> bool {
        self.peer_cost_per_bit(layer) < self.server_cost_per_bit()
    }

    /// Cost of a bit served from an exchange-point edge cache (the §VI
    /// caching extension, in the spirit of Valancius' nano data centers):
    /// a server-class node co-located at the exchange,
    /// `PUE·(γ_s + γ_exp) + l·γ_m`.
    pub fn edge_cache_cost_per_bit(&self) -> EnergyPerBit {
        self.params.pue * (self.params.server + self.params.p2p_exchange)
            + self.params.loss * self.params.modem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valancius_psi_s() {
        let m = CostModel::new(EnergyParams::valancius());
        assert!((m.server_cost_per_bit().as_nanojoules() - 1620.32).abs() < 1e-9);
        assert!((m.peer_fixed_cost_per_bit().as_nanojoules() - 214.0).abs() < 1e-12);
        assert!(
            (m.peer_cost_per_bit(Layer::ExchangePoint).as_nanojoules() - (214.0 + 360.0)).abs()
                < 1e-9
        );
    }

    #[test]
    fn baliga_psi_s() {
        let m = CostModel::new(EnergyParams::baliga());
        // 1.2·(281.3 + 142.5) + 1.07·100 = 615.56
        assert!((m.server_cost_per_bit().as_nanojoules() - 615.56).abs() < 1e-9);
    }

    #[test]
    fn peer_cost_monotone_in_layer() {
        for p in EnergyParams::published() {
            let m = CostModel::new(p);
            assert!(
                m.peer_cost_per_bit(Layer::ExchangePoint)
                    < m.peer_cost_per_bit(Layer::PointOfPresence)
            );
            assert!(m.peer_cost_per_bit(Layer::PointOfPresence) < m.peer_cost_per_bit(Layer::Core));
        }
    }

    #[test]
    fn peers_cheaper_than_servers_in_both_published_models() {
        // The published parameters make even core-crossing P2P cheaper per
        // bit than CDN delivery; the trade-off bites through swarm capacity,
        // not per-bit sign.
        for p in EnergyParams::published() {
            let m = CostModel::new(p);
            for layer in Layer::ALL {
                assert!(m.peer_is_cheaper(layer), "{}/{layer}", p.name());
            }
        }
    }

    #[test]
    fn credit_and_footprint_bases() {
        let m = CostModel::new(EnergyParams::valancius());
        assert!((m.cdn_saving_per_bit().as_nanojoules() - 253.32).abs() < 1e-9);
        assert!((m.user_premises_cost_per_bit().as_nanojoules() - 107.0).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_linearly_with_traffic() {
        let m = CostModel::new(EnergyParams::baliga());
        let t1 = Traffic::from_bytes(1_000_000);
        let t2 = Traffic::from_bytes(2_000_000);
        let e1 = m.server_energy(t1).as_joules();
        let e2 = m.server_energy(t2).as_joules();
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn gamma_lookup_matches_params() {
        let p = EnergyParams::valancius();
        let m = CostModel::new(p);
        assert_eq!(m.gamma_p2p(Layer::ExchangePoint), p.p2p_exchange);
        assert_eq!(m.gamma_p2p(Layer::PointOfPresence), p.p2p_pop);
        assert_eq!(m.gamma_p2p(Layer::Core), p.p2p_core);
        assert_eq!(m.params(), &p);
    }
}
