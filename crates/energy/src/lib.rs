//! Per-bit energy models for content delivery.
//!
//! Implements the two published energy-parameter sets the paper evaluates
//! with (its Table IV):
//!
//! * **Valancius et al.**, *Greening the Internet with Nano Data Centers*
//!   (CoNEXT 2009) — network legs are derived from hop counts at
//!   150 nJ/bit/hop;
//! * **Baliga et al.**, *Green Cloud Computing* (Proc. IEEE 2011) — network
//!   legs are sums over the individual equipment between the endpoints.
//!
//! On top of the raw parameters ([`EnergyParams`]), [`CostModel`] provides the
//! per-bit cost functions of Section III-D of the paper:
//!
//! * `ψ_s = PUE·(γ_s + γ_cdn) + l·γ_m` — delivering a bit from a CDN server
//!   ([`CostModel::server_cost_per_bit`]);
//! * `ψ_p = 2·l·γ_m + PUE·γ_p2p(layer)` — delivering a bit from a peer whose
//!   path meets at `layer` ([`CostModel::peer_cost_per_bit`]).
//!
//! # Example
//!
//! ```
//! use consume_local_energy::{CostModel, EnergyParams};
//! use consume_local_topology::Layer;
//!
//! let model = CostModel::new(EnergyParams::valancius());
//! let server = model.server_cost_per_bit();
//! let peer = model.peer_cost_per_bit(Layer::ExchangePoint);
//! assert!(peer.as_nanojoules() < server.as_nanojoules());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod params;
mod table;
mod units;

pub use cost::CostModel;
pub use params::{EnergyParams, EnergyParamsBuilder, ModelKind, ParamError};
pub use table::{table4_rows, Table4Row};
pub use units::{Energy, EnergyPerBit, Traffic};
