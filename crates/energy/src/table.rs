//! Regeneration of the paper's Table IV.

use serde::{Deserialize, Serialize};

use crate::params::EnergyParams;

/// One row of Table IV: a named parameter with its value in both models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Parameter description as printed in the paper.
    pub variable: &'static str,
    /// Symbol as printed in the paper.
    pub symbol: &'static str,
    /// Valancius et al. value (nJ/bit, except PUE/loss which are unitless).
    pub valancius: f64,
    /// Baliga et al. value.
    pub baliga: f64,
}

/// The rows of Table IV, in the paper's order.
pub fn table4_rows() -> Vec<Table4Row> {
    let v = EnergyParams::valancius();
    let b = EnergyParams::baliga();
    vec![
        Table4Row {
            variable: "Content Server",
            symbol: "gamma_s",
            valancius: v.server.as_nanojoules(),
            baliga: b.server.as_nanojoules(),
        },
        Table4Row {
            variable: "End User Modem",
            symbol: "gamma_m",
            valancius: v.modem.as_nanojoules(),
            baliga: b.modem.as_nanojoules(),
        },
        Table4Row {
            variable: "Traditional CDN Network",
            symbol: "gamma_cdn",
            valancius: v.cdn_network.as_nanojoules(),
            baliga: b.cdn_network.as_nanojoules(),
        },
        Table4Row {
            variable: "P2P Network within ExP",
            symbol: "gamma_exp",
            valancius: v.p2p_exchange.as_nanojoules(),
            baliga: b.p2p_exchange.as_nanojoules(),
        },
        Table4Row {
            variable: "P2P Network within POP",
            symbol: "gamma_pop",
            valancius: v.p2p_pop.as_nanojoules(),
            baliga: b.p2p_pop.as_nanojoules(),
        },
        Table4Row {
            variable: "P2P Network within Core",
            symbol: "gamma_core",
            valancius: v.p2p_core.as_nanojoules(),
            baliga: b.p2p_core.as_nanojoules(),
        },
        Table4Row {
            variable: "Power Efficiency",
            symbol: "PUE",
            valancius: v.pue,
            baliga: b.pue,
        },
        Table4Row {
            variable: "End-user energy loss",
            symbol: "l",
            valancius: v.loss,
            baliga: b.loss,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The values exactly as printed in the paper's Table IV.
    const PAPER: [(&str, f64, f64); 8] = [
        ("gamma_s", 211.1, 281.3),
        ("gamma_m", 100.0, 100.0),
        ("gamma_cdn", 1050.0, 142.5),
        ("gamma_exp", 300.0, 144.86),
        ("gamma_pop", 600.0, 197.48),
        ("gamma_core", 900.0, 245.74),
        ("PUE", 1.2, 1.2),
        ("l", 1.07, 1.07),
    ];

    #[test]
    fn rows_match_paper_exactly() {
        let rows = table4_rows();
        assert_eq!(rows.len(), PAPER.len());
        for (row, (symbol, val, bal)) in rows.iter().zip(PAPER) {
            assert_eq!(row.symbol, symbol);
            assert_eq!(row.valancius, val, "{symbol} valancius");
            assert_eq!(row.baliga, bal, "{symbol} baliga");
        }
    }
}
