//! The offloadable traffic fraction `G` (Eq. 3 of the paper).
//!
//! In a window with `L` concurrent viewers, demand is `L·β·Δτ` bytes and
//! peers can contribute `(L−1)·q·Δτ` (one fresh copy always comes from the
//! CDN). Taking stationary M/M/∞ expectations,
//!
//! ```text
//! G = (q/β) · (c + e^(−c) − 1) / c
//! ```
//!
//! This module works with the ratio `ρ = q/β` directly. Because a peer
//! cannot deliver more than the stream's bitrate to a given downloader, the
//! *effective* ratio is capped at 1 in [`offload_fraction`]; the uncapped
//! Eq. 3 is available as [`offload_fraction_uncapped`] for faithful
//! comparison with the paper's plots (which only use `ρ ≤ 1`).

/// The fraction of traffic offloadable to peers, Eq. 3, with the physically
/// motivated cap `ρ ≤ 1`.
///
/// Returns 0 for `c ≤ 0` (an empty swarm cannot share) and clamps the result
/// into `[0, 1]`.
///
/// # Example
///
/// ```
/// use consume_local_analytics::offload::offload_fraction;
///
/// // The paper's footnote: at c = 1, G = 0.37·(q/β).
/// let g = offload_fraction(1.0, 1.0);
/// assert!((g - 0.3679).abs() < 1e-3);
/// ```
pub fn offload_fraction(capacity: f64, upload_ratio: f64) -> f64 {
    if !upload_ratio.is_finite() {
        return 0.0;
    }
    offload_fraction_uncapped(capacity, upload_ratio.min(1.0))
}

/// Eq. 3 exactly as printed, without the `ρ ≤ 1` cap (can exceed 1 for
/// `q > β`, which is not physically meaningful for streaming delivery).
pub fn offload_fraction_uncapped(capacity: f64, upload_ratio: f64) -> f64 {
    if !capacity.is_finite() || capacity <= 0.0 || !upload_ratio.is_finite() || upload_ratio <= 0.0
    {
        return 0.0;
    }
    // (c + e^(−c) − 1)/c, evaluated via expm1 for accuracy at small c.
    let slots_per_viewer = (capacity + (-capacity).exp_m1()) / capacity;
    (upload_ratio * slots_per_viewer).max(0.0)
}

/// The capacity-dependent factor `(c + e^(−c) − 1)/c ∈ [0, 1)`: the fraction
/// of viewer-windows that have at least one *other* viewer to upload to them.
pub fn sharing_efficiency(capacity: f64) -> f64 {
    offload_fraction_uncapped(capacity, 1.0)
}

/// Inverse of [`sharing_efficiency`]: the capacity at which the sharing
/// efficiency reaches `target` (monotone bisection).
///
/// Returns `None` when `target` is outside `(0, 1)`.
pub fn capacity_for_sharing_efficiency(target: f64) -> Option<f64> {
    if !(0.0..1.0).contains(&target) || target == 0.0 {
        return None;
    }
    let (mut lo, mut hi) = (1e-12f64, 1e12f64);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric: the scale is unknown a priori
        if sharing_efficiency(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo * hi).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_footnote_value_at_c1() {
        // "for c = 1 … opportunities are for offloading G = 0.37 q/β".
        let eff = sharing_efficiency(1.0);
        assert!((eff - 0.367_879).abs() < 1e-6);
        assert!((offload_fraction(1.0, 0.5) - 0.5 * eff).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_offloads_nothing() {
        assert_eq!(offload_fraction(0.0, 1.0), 0.0);
        assert_eq!(offload_fraction(-3.0, 1.0), 0.0);
        assert_eq!(offload_fraction(f64::NAN, 1.0), 0.0);
    }

    #[test]
    fn zero_or_bad_ratio_offloads_nothing() {
        assert_eq!(offload_fraction(5.0, 0.0), 0.0);
        assert_eq!(offload_fraction(5.0, -1.0), 0.0);
        assert_eq!(offload_fraction(5.0, f64::NAN), 0.0);
    }

    #[test]
    fn monotone_in_capacity_and_ratio() {
        let mut prev = 0.0;
        for i in 1..=60 {
            let c = 10f64.powf(-3.0 + i as f64 * 0.1);
            let g = offload_fraction(c, 1.0);
            assert!(g >= prev, "G must grow with capacity");
            prev = g;
        }
        assert!(offload_fraction(2.0, 0.4) < offload_fraction(2.0, 0.8));
    }

    #[test]
    fn bounded_by_one_with_cap() {
        for c in [0.1, 1.0, 10.0, 1000.0] {
            assert!(offload_fraction(c, 5.0) <= 1.0);
            assert!(offload_fraction(c, 5.0) >= offload_fraction(c, 1.0) - 1e-15);
        }
        // Uncapped version reproduces raw Eq. 3.
        assert!(offload_fraction_uncapped(1000.0, 2.0) > 1.0);
    }

    #[test]
    fn asymptotes() {
        assert!(sharing_efficiency(1e6) > 0.999_99);
        // Small-c behaviour ~ c/2.
        let c = 1e-6;
        assert!((sharing_efficiency(c) - c / 2.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_round_trips() {
        for target in [0.1, 0.367_879, 0.9, 0.999] {
            let c = capacity_for_sharing_efficiency(target).unwrap();
            assert!(
                (sharing_efficiency(c) - target).abs() < 1e-6,
                "target {target}"
            );
        }
        assert_eq!(capacity_for_sharing_efficiency(0.0), None);
        assert_eq!(capacity_for_sharing_efficiency(1.0), None);
        assert_eq!(capacity_for_sharing_efficiency(-0.5), None);
    }
}
