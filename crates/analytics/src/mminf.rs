//! Content swarms as M/M/∞ queues.
//!
//! Following Menasche et al. (and Section III-B of the paper), a content
//! swarm is an M/M/∞ queue: viewers arrive in a Poisson stream of rate `r`,
//! watch for an average duration `u`, and are "served" instantly by the
//! swarm. By Little's law the average number of concurrent viewers — the
//! **swarm capacity** — is `c = u·r`, and the stationary number of viewers is
//! Poisson-distributed with mean `c`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The capacity `c` of a content swarm: the long-run average number of
/// concurrent viewers.
///
/// # Example
///
/// ```
/// use consume_local_analytics::SwarmCapacity;
///
/// // 1800-second shows starting every 60 seconds on average:
/// let c = SwarmCapacity::from_rate_and_duration(1.0 / 60.0, 1800.0).unwrap();
/// assert!((c.value() - 30.0).abs() < 1e-12);
/// assert!(c.probability_online() > 0.999_999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SwarmCapacity(f64);

/// Error constructing a [`SwarmCapacity`] from invalid inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityError {
    what: &'static str,
    value: f64,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid swarm capacity input: {} = {}",
            self.what, self.value
        )
    }
}

impl std::error::Error for CapacityError {}

impl SwarmCapacity {
    /// Wraps a capacity value directly (`c ≥ 0`, finite).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] for negative or non-finite values.
    pub fn new(c: f64) -> Result<Self, CapacityError> {
        if c.is_finite() && c >= 0.0 {
            Ok(Self(c))
        } else {
            Err(CapacityError {
                what: "c",
                value: c,
            })
        }
    }

    /// Little's law: `c = u·r` from an arrival rate `r` (viewers per second)
    /// and mean session duration `u` (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] when either input is negative or
    /// non-finite.
    pub fn from_rate_and_duration(rate: f64, mean_duration: f64) -> Result<Self, CapacityError> {
        if !rate.is_finite() || rate < 0.0 {
            return Err(CapacityError {
                what: "rate",
                value: rate,
            });
        }
        if !mean_duration.is_finite() || mean_duration < 0.0 {
            return Err(CapacityError {
                what: "mean_duration",
                value: mean_duration,
            });
        }
        Self::new(rate * mean_duration)
    }

    /// Capacity measured empirically from a trace: total watch-time of all
    /// sessions divided by the observation horizon.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] for a non-positive or non-finite horizon or
    /// a negative/non-finite watch-time total.
    pub fn from_watch_time(
        total_watch_seconds: f64,
        horizon_seconds: f64,
    ) -> Result<Self, CapacityError> {
        if !horizon_seconds.is_finite() || horizon_seconds <= 0.0 {
            return Err(CapacityError {
                what: "horizon_seconds",
                value: horizon_seconds,
            });
        }
        if !total_watch_seconds.is_finite() || total_watch_seconds < 0.0 {
            return Err(CapacityError {
                what: "total_watch_seconds",
                value: total_watch_seconds,
            });
        }
        Self::new(total_watch_seconds / horizon_seconds)
    }

    /// The raw capacity value `c`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// `p = 1 − e^(−c)`: the stationary probability that at least one viewer
    /// is online (an M/M/∞ result the paper uses for the "fresh copy" term).
    pub fn probability_online(self) -> f64 {
        -(-self.0).exp_m1()
    }

    /// `P(L = k)` for the stationary Poisson viewer count.
    pub fn viewer_count_pmf(self, k: u64) -> f64 {
        if self.0 == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        consume_local_stats::dist::Poisson::new(self.0)
            .expect("capacity validated positive")
            .pmf(k)
    }

    /// `E[max(L − 1, 0)] = c − 1 + e^(−c)`: the expected number of
    /// peer-upload "slots" per window — the quantity the paper calls
    /// `c − p`.
    ///
    /// Evaluated as `c + expm1(−c)` which is accurate down to `c → 0`
    /// (where it behaves as `c²/2`).
    pub fn expected_upload_slots(self) -> f64 {
        self.0 + (-self.0).exp_m1()
    }
}

impl fmt::Display for SwarmCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c={}", self.0)
    }
}

/// Recovers the M/M/∞ capacity `c` from the mean occupancy measured **while
/// the swarm is non-empty**, `L̄ = c / (1 − e^(−c))`.
///
/// Real traces are non-stationary (prime-time peaks, broadcast decay), so a
/// swarm's month-averaged occupancy understates the concurrency viewers
/// actually experience. Matching simulation dots against the stationary
/// theory curve (Fig. 2) is fair in the *while-active* metric; this inverts
/// it back to the `c` axis the curves are drawn on. For a truly stationary
/// M/M/∞ swarm the transform is exact.
///
/// Returns 0 for `l_bar ≤ 1` (the while-active mean can never be below 1).
pub fn capacity_from_active_mean(l_bar: f64) -> f64 {
    if !l_bar.is_finite() || l_bar <= 1.0 {
        return 0.0;
    }
    // c / (1 − e^(−c)) is monotone increasing from 1 (c→0) to ∞; for
    // c ≳ 30 it equals c to machine precision.
    if l_bar > 30.0 {
        return l_bar;
    }
    let f = |c: f64| c / -(-c).exp_m1();
    let (mut lo, mut hi) = (1e-12f64, 60.0f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < l_bar {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn littles_law() {
        let c = SwarmCapacity::from_rate_and_duration(0.5, 10.0).unwrap();
        assert_eq!(c.value(), 5.0);
    }

    #[test]
    fn from_watch_time() {
        // 100 sessions of 1800 s over a 30-day month.
        let c = SwarmCapacity::from_watch_time(100.0 * 1800.0, 30.0 * 86_400.0).unwrap();
        assert!((c.value() - 0.069_44).abs() < 1e-4);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(SwarmCapacity::new(-1.0).is_err());
        assert!(SwarmCapacity::new(f64::NAN).is_err());
        assert!(SwarmCapacity::from_rate_and_duration(-0.1, 1.0).is_err());
        assert!(SwarmCapacity::from_rate_and_duration(0.1, f64::INFINITY).is_err());
        assert!(SwarmCapacity::from_watch_time(10.0, 0.0).is_err());
        let err = SwarmCapacity::from_watch_time(-1.0, 10.0).unwrap_err();
        assert!(err.to_string().contains("total_watch_seconds"));
    }

    #[test]
    fn probability_online_limits() {
        assert_eq!(SwarmCapacity::new(0.0).unwrap().probability_online(), 0.0);
        let large = SwarmCapacity::new(100.0).unwrap().probability_online();
        assert!(large > 0.999_999_999);
        let small = SwarmCapacity::new(1e-9).unwrap().probability_online();
        assert!(
            (small - 1e-9).abs() < 1e-15,
            "p ≈ c for small c, got {small}"
        );
    }

    #[test]
    fn upload_slots_identity() {
        for c in [0.0, 1e-8, 0.1, 1.0, 5.0, 50.0] {
            let cap = SwarmCapacity::new(c).unwrap();
            let direct = c - cap.probability_online();
            assert!((cap.expected_upload_slots() - direct).abs() < 1e-12);
            assert!(cap.expected_upload_slots() >= 0.0);
        }
    }

    #[test]
    fn upload_slots_small_c_series() {
        let c = 1e-6;
        let slots = SwarmCapacity::new(c).unwrap().expected_upload_slots();
        assert!((slots - c * c / 2.0).abs() < 1e-18, "got {slots}");
    }

    #[test]
    fn pmf_sums_to_one_and_handles_zero() {
        let cap = SwarmCapacity::new(3.7).unwrap();
        let total: f64 = (0..100).map(|k| cap.viewer_count_pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let zero = SwarmCapacity::new(0.0).unwrap();
        assert_eq!(zero.viewer_count_pmf(0), 1.0);
        assert_eq!(zero.viewer_count_pmf(3), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(SwarmCapacity::new(2.5).unwrap().to_string(), "c=2.5");
    }

    #[test]
    fn active_mean_inversion_round_trips() {
        for c in [0.01f64, 0.3, 1.594, 5.0, 12.0, 25.0, 80.0] {
            let l_bar = c / -(-c).exp_m1();
            let back = capacity_from_active_mean(l_bar);
            assert!(
                (back - c).abs() < 1e-6 * c.max(1.0),
                "c={c}: l_bar={l_bar} back={back}"
            );
        }
    }

    #[test]
    fn active_mean_edge_cases() {
        assert_eq!(capacity_from_active_mean(1.0), 0.0);
        assert_eq!(capacity_from_active_mean(0.5), 0.0);
        assert_eq!(capacity_from_active_mean(f64::NAN), 0.0);
        // A pair of fully overlapped viewers: L̄ = 2 ⇒ c ≈ 1.594.
        let c = capacity_from_active_mean(2.0);
        assert!((c - 1.5936).abs() < 1e-3, "got {c}");
        // Large means are pass-through.
        assert_eq!(capacity_from_active_mean(100.0), 100.0);
    }
}
