//! The closed-form energy-savings model of *Consume Local* (Section III of
//! the paper) and its carbon-credit extension (Section V).
//!
//! The model answers: *if a traditional CDN is enhanced with peer assistance,
//! what fraction of delivery energy is saved, as a function of how many users
//! concurrently consume each content item?*
//!
//! The building blocks, each its own module:
//!
//! * [`mminf`] — content swarms as M/M/∞ queues: swarm **capacity**
//!   `c = u·r` (Little's law), the probability `p = 1 − e^(−c)` that a swarm
//!   is non-empty, and exact Poisson expectations.
//! * [`offload`] — the fraction `G` of traffic offloadable to peers (Eq. 3):
//!   `G = (q/β)·(c + e^(−c) − 1)/c`.
//! * [`localisation`] — the expected per-window peer-traffic units localised
//!   within each ISP layer, `f(p, c)` (Eq. 11, with the derivation corrected
//!   as documented in `DESIGN.md` §3), and the expected per-bit P2P network
//!   intensity `γ_p2p(c)`.
//! * [`savings`] — the master equation for end-to-end savings `S(c)`
//!   (Eq. 12) with its gross/penalty decomposition and asymptote.
//! * [`credits`] — the carbon-credit transfer `CCT` (Eq. 13), the
//!   carbon-neutral offload point `G*` and the Fig. 5 curve family.
//! * [`planning`] — inverse queries for network planning ("what capacity do
//!   I need for X % savings?"), the use case the paper motivates for the
//!   closed form.
//! * [`numeric`] — brute-force Poisson-summation reference implementations,
//!   used by the property tests and available for cross-checking.
//! * [`sweep`] — cross-scenario summarization (distribution summaries,
//!   extrema, speedup ratios) for the core crate's scenario sweep runner.
//!
//! # Example: the paper's headline numbers
//!
//! ```
//! use consume_local_analytics::savings::SavingsModel;
//! use consume_local_energy::EnergyParams;
//! use consume_local_topology::IspTopology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = IspTopology::london_table3()?;
//! let model = SavingsModel::new(EnergyParams::valancius(), &topo, 1.0)?;
//! // A popular item's swarm (capacity ~100) saves close to half the energy:
//! let s = model.savings(100.0);
//! assert!(s > 0.45 && s < 0.50, "got {s}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod credits;
pub mod localisation;
pub mod mminf;
pub mod numeric;
pub mod offload;
pub mod planning;
pub mod savings;
pub mod sweep;

pub use credits::CreditModel;
pub use mminf::{capacity_from_active_mean, SwarmCapacity};
pub use savings::{ModelError, SavingsBreakdown, SavingsModel};
pub use sweep::{DegradationCurve, DegradationPoint, ScenarioSample, SweepSummary};
