//! Inverse queries for network planning.
//!
//! The paper suggests the closed form "can potentially be used for network
//! planning purposes" (Section IV-B-2). This module provides those inverse
//! queries: the swarm capacity (and hence the content popularity) required to
//! hit a savings target or carbon neutrality.

use crate::credits::CreditModel;
use crate::savings::SavingsModel;

/// The smallest capacity at which `S(c) ≥ target`, by bisection over the
/// monotone savings curve.
///
/// Returns `None` when the target is not reachable (at or above the model's
/// asymptote) or not positive.
///
/// # Example
///
/// ```
/// use consume_local_analytics::{planning, SavingsModel};
/// use consume_local_energy::EnergyParams;
/// use consume_local_topology::IspTopology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = SavingsModel::new(
///     EnergyParams::valancius(),
///     &IspTopology::london_table3()?,
///     1.0,
/// )?;
/// let c = planning::capacity_for_savings(&m, 0.30).expect("reachable");
/// assert!((m.savings(c) - 0.30).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn capacity_for_savings(model: &SavingsModel, target: f64) -> Option<f64> {
    if !target.is_finite() || target <= 0.0 || target >= model.asymptotic_savings() {
        return None;
    }
    let (mut lo, mut hi) = (1e-9f64, 1e9f64);
    if model.savings(hi) < target {
        return None;
    }
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if model.savings(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo * hi).sqrt())
}

/// The smallest capacity at which the *offload share* reaches the
/// carbon-neutral point `G*`, i.e. where an average participating user's
/// streaming becomes carbon-free.
///
/// Returns `None` when neutrality is unreachable under this ratio.
pub fn capacity_for_carbon_neutrality(credits: &CreditModel, model: &SavingsModel) -> Option<f64> {
    let g_star = credits.carbon_neutral_offload()?;
    if g_star >= model.upload_ratio() {
        // G(c) asymptotes to the upload ratio; can't reach G*.
        return None;
    }
    let (mut lo, mut hi) = (1e-9f64, 1e9f64);
    if model.offload(hi) < g_star {
        return None;
    }
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if model.offload(mid) < g_star {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo * hi).sqrt())
}

/// Translates a required swarm capacity into the monthly view count a
/// content item needs (`views = c·horizon/mean_watch_time`).
///
/// Returns `None` for non-positive inputs.
pub fn views_for_capacity(
    capacity: f64,
    mean_watch_seconds: f64,
    horizon_seconds: f64,
) -> Option<f64> {
    if capacity < 0.0
        || !capacity.is_finite()
        || mean_watch_seconds <= 0.0
        || !mean_watch_seconds.is_finite()
        || horizon_seconds <= 0.0
        || !horizon_seconds.is_finite()
    {
        return None;
    }
    Some(capacity * horizon_seconds / mean_watch_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_energy::EnergyParams;
    use consume_local_topology::IspTopology;

    fn models(rho: f64) -> (SavingsModel, CreditModel) {
        let topo = IspTopology::london_table3().unwrap();
        (
            SavingsModel::new(EnergyParams::valancius(), &topo, rho).unwrap(),
            CreditModel::new(EnergyParams::valancius()),
        )
    }

    #[test]
    fn savings_inverse_round_trips() {
        let (m, _) = models(1.0);
        for target in [0.05, 0.2, 0.4, 0.6] {
            let c = capacity_for_savings(&m, target).unwrap();
            assert!(
                (m.savings(c) - target).abs() < 1e-6,
                "target {target}: c={c}"
            );
        }
    }

    #[test]
    fn unreachable_targets_rejected() {
        let (m, _) = models(1.0);
        let asym = m.asymptotic_savings();
        assert!(capacity_for_savings(&m, asym).is_none());
        assert!(capacity_for_savings(&m, asym + 0.1).is_none());
        assert!(capacity_for_savings(&m, 0.0).is_none());
        assert!(capacity_for_savings(&m, -0.3).is_none());
        assert!(capacity_for_savings(&m, f64::NAN).is_none());
    }

    #[test]
    fn neutrality_capacity_exists_at_full_ratio() {
        let (m, cm) = models(1.0);
        let c = capacity_for_carbon_neutrality(&cm, &m).unwrap();
        let g_star = cm.carbon_neutral_offload().unwrap();
        assert!((m.offload(c) - g_star).abs() < 1e-6);
        // At that capacity an average user's CCT crosses zero.
        assert!(cm.cct(m.offload(c)).abs() < 1e-5);
    }

    #[test]
    fn neutrality_unreachable_at_low_ratio() {
        // Valancius G* ≈ 0.731: a q/β of 0.5 cannot reach it.
        let (m, cm) = models(0.5);
        assert!(capacity_for_carbon_neutrality(&cm, &m).is_none());
    }

    #[test]
    fn views_translation() {
        // Capacity 70 with 30-minute watches over a 30-day month ≈ 100k views.
        let views = views_for_capacity(70.0, 1800.0, 30.0 * 86_400.0).unwrap();
        assert!((views - 100_800.0).abs() < 1.0);
        assert!(views_for_capacity(-1.0, 1800.0, 86_400.0).is_none());
        assert!(views_for_capacity(1.0, 0.0, 86_400.0).is_none());
        assert!(views_for_capacity(1.0, 1800.0, f64::NAN).is_none());
    }
}
