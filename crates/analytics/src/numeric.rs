//! Brute-force Poisson-summation reference implementations.
//!
//! These evaluate the Section III expectations by direct summation over the
//! stationary viewer-count distribution, truncated far into the Poisson tail.
//! They are deliberately simple and slow; the property tests use them as the
//! ground truth for the closed forms, and the ablation benches use them to
//! quantify the closed forms' speedup.

use consume_local_energy::CostModel;
use consume_local_stats::dist::Poisson;
use consume_local_topology::{IspTopology, Layer};

/// Truncation point: mean + 12 standard deviations + slack covers the Poisson
/// tail to well below `f64` noise for every capacity this crate sweeps.
fn truncation(c: f64) -> u64 {
    (c + 12.0 * c.sqrt() + 40.0).ceil() as u64
}

/// Brute-force `E[(L−1)·(1 − (1−p)^(L−1))]` for `L ~ Poisson(c)`.
pub fn localised_units_numeric(p: f64, c: f64) -> f64 {
    if c <= 0.0 || p <= 0.0 {
        return 0.0;
    }
    let p = p.min(1.0);
    let pois = Poisson::new(c).expect("c validated positive");
    let mut acc = 0.0;
    for l in 2..=truncation(c) {
        let units = (l - 1) as f64;
        let matched = 1.0 - (1.0 - p).powi((l - 1) as i32);
        acc += units * matched * pois.pmf(l);
    }
    acc
}

/// Brute-force `E[(L−1)·γ_p2p(L)]` with `γ_p2p(L)` per Eq. 7 of the paper.
pub fn gamma_weighted_units_numeric(cost: &CostModel, topology: &IspTopology, c: f64) -> f64 {
    if c <= 0.0 {
        return 0.0;
    }
    let [p_exp, p_pop, p_core] = topology.localisation_probabilities();
    let pois = Poisson::new(c).expect("c validated positive");
    let g_exp = cost.gamma_p2p(Layer::ExchangePoint).as_nanojoules();
    let g_pop = cost.gamma_p2p(Layer::PointOfPresence).as_nanojoules();
    let g_core = cost.gamma_p2p(Layer::Core).as_nanojoules();
    let mut acc = 0.0;
    for l in 2..=truncation(c) {
        let match_at = |p: f64| 1.0 - (1.0 - p).powi((l - 1) as i32);
        let (pe, pp, pc) = (match_at(p_exp), match_at(p_pop), match_at(p_core));
        let gamma_l = g_exp * pe + g_pop * (pp - pe) + g_core * (pc - pp);
        acc += (l - 1) as f64 * gamma_l * pois.pmf(l);
    }
    acc
}

/// Brute-force end-to-end savings: assembles Eq. 12 with the numeric
/// expectations instead of the closed forms.
pub fn savings_numeric(cost: &CostModel, topology: &IspTopology, upload_ratio: f64, c: f64) -> f64 {
    if c <= 0.0 || upload_ratio <= 0.0 {
        return 0.0;
    }
    let rho = upload_ratio.min(1.0);
    let psi_s = cost.server_cost_per_bit().as_nanojoules();
    let psi_pm = cost.peer_fixed_cost_per_bit().as_nanojoules();
    let pue = cost.params().pue;
    let pois = Poisson::new(c).expect("c validated positive");
    let slots: f64 = (2..=truncation(c))
        .map(|l| (l - 1) as f64 * pois.pmf(l))
        .sum();
    let g = rho * slots / c;
    let gross = g * (psi_s - psi_pm) / psi_s;
    let penalty = rho * pue * gamma_weighted_units_numeric(cost, topology, c) / (c * psi_s);
    gross - penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_energy::EnergyParams;

    #[test]
    fn numeric_total_units_match_expm1_identity() {
        for &c in &[0.1f64, 1.0, 7.0, 80.0] {
            let brute = localised_units_numeric(1.0, c);
            let closed = c + (-c).exp_m1();
            assert!((brute - closed).abs() < 1e-8, "c={c}: {brute} vs {closed}");
        }
    }

    #[test]
    fn gamma_bounded_by_layer_extremes() {
        let topo = IspTopology::london_table3().unwrap();
        let cost = CostModel::new(EnergyParams::valancius());
        for &c in &[0.5f64, 5.0, 50.0] {
            let total = localised_units_numeric(1.0, c);
            let weighted = gamma_weighted_units_numeric(&cost, &topo, c);
            let avg = weighted / total;
            assert!((300.0..=900.0).contains(&avg), "c={c}: avg gamma {avg}");
        }
    }

    #[test]
    fn savings_positive_and_below_one() {
        let topo = IspTopology::london_table3().unwrap();
        for params in EnergyParams::published() {
            let cost = CostModel::new(params);
            for &c in &[0.2, 2.0, 20.0, 200.0] {
                let s = savings_numeric(&cost, &topo, 1.0, c);
                assert!(s > 0.0 && s < 1.0, "{} c={c}: s={s}", params.name());
            }
        }
    }

    #[test]
    fn degenerate_inputs_give_zero() {
        let topo = IspTopology::london_table3().unwrap();
        let cost = CostModel::new(EnergyParams::baliga());
        assert_eq!(localised_units_numeric(0.5, 0.0), 0.0);
        assert_eq!(localised_units_numeric(0.0, 5.0), 0.0);
        assert_eq!(gamma_weighted_units_numeric(&cost, &topo, 0.0), 0.0);
        assert_eq!(savings_numeric(&cost, &topo, 1.0, 0.0), 0.0);
        assert_eq!(savings_numeric(&cost, &topo, 0.0, 10.0), 0.0);
    }
}
