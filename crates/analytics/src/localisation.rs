//! Expected localisation of peer traffic within the ISP tree (Eqs. 7–11).
//!
//! In a window with `L ≥ 2` viewers, the paper approximates managed-swarm
//! matching by assuming each of the `L−1` peer-traffic units is exchanged at
//! the layer where the *typical* viewer finds its nearest peer. With
//! per-layer localisation probability `p` (Table III), a given viewer finds a
//! peer under its own layer-node with probability `1 − (1−p)^(L−1)`.
//!
//! Taking stationary Poisson expectations yields the per-window expected
//! number of peer-traffic units whose nearest peer is under the same
//! layer-`p` node:
//!
//! ```text
//! f(p, c) = E[(L−1)·(1 − (1−p)^(L−1))]
//!         = c − 1 + e^(−c) − c·e^(−cp) + (e^(−cp) − e^(−c))/(1 − p)   (p < 1)
//! f(1, c) = c − 1 + e^(−c)
//! ```
//!
//! **Erratum note** (see DESIGN.md §3): the printed Eq. 11 contains an OCR /
//! typesetting defect (it goes negative as `p → 0`). The expression above is
//! the correct expectation — verified against brute-force Poisson summation
//! in this module's property tests — and it reproduces the paper's printed
//! `p = 1` branch exactly.

use consume_local_energy::{CostModel, EnergyPerBit};
use consume_local_topology::{IspTopology, Layer};

use crate::mminf::SwarmCapacity;

/// `f(p, c)`: expected per-window peer-traffic units localised within a
/// layer whose per-node probability is `p` (corrected Eq. 11).
///
/// Clamps `p` into `[0, 1]`; returns 0 for `c ≤ 0`.
///
/// # Example
///
/// ```
/// use consume_local_analytics::localisation::localised_units;
///
/// // With p = 1 (the core layer) everything localises:
/// let c: f64 = 5.0;
/// let total = c - 1.0 + (-c).exp();
/// assert!((localised_units(1.0, c) - total).abs() < 1e-12);
/// ```
pub fn localised_units(p: f64, c: f64) -> f64 {
    if !c.is_finite() || c <= 0.0 || !p.is_finite() || p <= 0.0 {
        return 0.0;
    }
    let p = p.min(1.0);
    // total = E[max(L−1, 0)] = c + expm1(−c)
    let total = c + (-c).exp_m1();
    if p >= 1.0 {
        return total;
    }
    // f = total − c·e^(−cp) + (e^(−cp) − e^(−c))/(1−p)
    //   = total − c·e^(−cp) + (expm1(−cp) − expm1(−c))/(1−p)
    let f = total - c * (-c * p).exp() + ((-c * p).exp_m1() - (-c).exp_m1()) / (1.0 - p);
    f.clamp(0.0, total)
}

/// Expected per-window peer-traffic units broken down by the layer at which
/// they are exchanged: `[within ExP, within PoP but not ExP, across Core]`.
///
/// The three components sum to the total peer-traffic units
/// `c − 1 + e^(−c)`.
pub fn layer_unit_breakdown(topology: &IspTopology, capacity: SwarmCapacity) -> [f64; 3] {
    let c = capacity.value();
    let [p_exp, p_pop, _] = topology.localisation_probabilities();
    let at_exp = localised_units(p_exp, c);
    let within_pop = localised_units(p_pop, c);
    let total = localised_units(1.0, c);
    [
        at_exp,
        (within_pop - at_exp).max(0.0),
        (total - within_pop).max(0.0),
    ]
}

/// `E[(L−1)·γ_p2p(L)]`: the expected per-window peer-traffic units weighted
/// by the γ of the layer they are exchanged at — the corrected Eq. 10
/// aggregation:
///
/// ```text
/// γ_core·f(p_core, c) − (γ_core − γ_pop)·f(p_pop, c) − (γ_pop − γ_exp)·f(p_exp, c)
/// ```
///
/// Units: nJ/bit × (traffic units). Divide by the total units to get the
/// average per-bit intensity (see [`expected_gamma_p2p`]).
pub fn gamma_weighted_units(
    cost: &CostModel,
    topology: &IspTopology,
    capacity: SwarmCapacity,
) -> f64 {
    let [exp_units, pop_units, core_units] = layer_unit_breakdown(topology, capacity);
    cost.gamma_p2p(Layer::ExchangePoint).as_nanojoules() * exp_units
        + cost.gamma_p2p(Layer::PointOfPresence).as_nanojoules() * pop_units
        + cost.gamma_p2p(Layer::Core).as_nanojoules() * core_units
}

/// The expected per-bit P2P network intensity `γ_p2p(c)` for a swarm of
/// capacity `c`: the γ-weighted units divided by the total units.
///
/// Returns `γ_core` for `c → 0` (a lone pair of peers is assumed to cross
/// the core) and approaches `γ_exp` as the swarm grows — the paper's
/// "the bigger the swarm … the smaller γ_p2p is".
pub fn expected_gamma_p2p(
    cost: &CostModel,
    topology: &IspTopology,
    capacity: SwarmCapacity,
) -> EnergyPerBit {
    let total = localised_units(1.0, capacity.value());
    if total <= 0.0 {
        return cost.gamma_p2p(Layer::Core);
    }
    EnergyPerBit::from_nanojoules(gamma_weighted_units(cost, topology, capacity) / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric;
    use consume_local_energy::EnergyParams;
    use proptest::prelude::*;

    fn table3() -> IspTopology {
        IspTopology::london_table3().unwrap()
    }

    #[test]
    fn limits_in_p() {
        let c: f64 = 3.0;
        let total = c - 1.0 + (-c).exp();
        assert_eq!(localised_units(0.0, c), 0.0);
        assert!((localised_units(1.0, c) - total).abs() < 1e-12);
        // Monotone in p.
        let mut prev = 0.0;
        for i in 1..=100 {
            let p = i as f64 / 100.0;
            let f = localised_units(p, c);
            assert!(f >= prev - 1e-12, "f must grow with p");
            prev = f;
        }
    }

    #[test]
    fn limits_in_c() {
        assert_eq!(localised_units(0.5, 0.0), 0.0);
        assert_eq!(localised_units(0.5, -1.0), 0.0);
        // Small-c behaviour: f ≈ p·c²/2.
        let (p, c) = (0.3, 1e-5);
        let f = localised_units(p, c);
        assert!((f - p * c * c / 2.0).abs() < 1e-14, "got {f}");
        // Large-c: everything localises at the ExP layer ⇒ f(p,c) → c−1.
        let f = localised_units(1.0 / 345.0, 1e5);
        assert!((f / (1e5 - 1.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn matches_brute_force_poisson_sum() {
        for &p in &[1.0 / 345.0, 1.0 / 9.0, 0.5, 1.0] {
            for &c in &[0.01, 0.1, 1.0, 3.0, 22.0, 100.0] {
                let closed = localised_units(p, c);
                let brute = numeric::localised_units_numeric(p, c);
                let tol = 1e-8 * brute.max(1e-12) + 1e-10;
                assert!(
                    (closed - brute).abs() < tol,
                    "p={p} c={c}: closed {closed} vs brute {brute}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_closed_form_matches_numeric(p in 1e-4f64..1.0, c in 1e-3f64..200.0) {
            let closed = localised_units(p, c);
            let brute = numeric::localised_units_numeric(p, c);
            let tol = 1e-6 * brute.abs().max(1e-9) + 1e-9;
            prop_assert!((closed - brute).abs() < tol,
                "p={} c={}: closed {} vs brute {}", p, c, closed, brute);
        }

        #[test]
        fn prop_bounded_by_total(p in 0.0f64..1.0, c in 0.0f64..500.0) {
            let f = localised_units(p, c);
            let total = localised_units(1.0, c);
            prop_assert!(f >= 0.0);
            prop_assert!(f <= total + 1e-12);
        }

        #[test]
        fn prop_monotone_in_c(p in 1e-4f64..1.0, c in 1e-3f64..100.0) {
            let f1 = localised_units(p, c);
            let f2 = localised_units(p, c * 1.1);
            prop_assert!(f2 >= f1 - 1e-12);
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let topo = table3();
        for &c in &[0.05, 0.5, 2.0, 30.0, 400.0] {
            let cap = SwarmCapacity::new(c).unwrap();
            let parts = layer_unit_breakdown(&topo, cap);
            let total = localised_units(1.0, c);
            let sum: f64 = parts.iter().sum();
            assert!((sum - total).abs() < 1e-9, "c={c}: {parts:?} vs {total}");
            assert!(parts.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn expected_gamma_shrinks_with_capacity() {
        let topo = table3();
        let cost = CostModel::new(EnergyParams::valancius());
        let g_small = expected_gamma_p2p(&cost, &topo, SwarmCapacity::new(0.1).unwrap());
        let g_mid = expected_gamma_p2p(&cost, &topo, SwarmCapacity::new(10.0).unwrap());
        let g_large = expected_gamma_p2p(&cost, &topo, SwarmCapacity::new(5000.0).unwrap());
        assert!(g_small > g_mid);
        assert!(g_mid > g_large);
        // Bounds: between γ_exp and γ_core.
        assert!(g_small.as_nanojoules() <= 900.0 + 1e-9);
        assert!(g_large.as_nanojoules() >= 300.0 - 1e-9);
        // Empty swarm defaults to core.
        let g_zero = expected_gamma_p2p(&cost, &topo, SwarmCapacity::new(0.0).unwrap());
        assert_eq!(g_zero.as_nanojoules(), 900.0);
    }

    #[test]
    fn gamma_weighted_units_matches_numeric() {
        let topo = table3();
        for params in EnergyParams::published() {
            let cost = CostModel::new(params);
            for &c in &[0.1, 1.0, 22.0, 100.0] {
                let cap = SwarmCapacity::new(c).unwrap();
                let closed = gamma_weighted_units(&cost, &topo, cap);
                let brute = numeric::gamma_weighted_units_numeric(&cost, &topo, c);
                assert!(
                    (closed - brute).abs() < 1e-6 * brute.abs().max(1.0),
                    "{} c={c}: {closed} vs {brute}",
                    params.name()
                );
            }
        }
    }
}
