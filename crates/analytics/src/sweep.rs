//! Cross-scenario summarization for parameter sweeps.
//!
//! The sweep runner (in the `consume-local` core crate) produces one outcome
//! per grid point; this module reduces those outcomes to the aggregate
//! numbers a trajectory record wants: distribution summaries of savings,
//! offload and wall-time, the best/worst grid points, and perf speedup
//! ratios against a recorded baseline.

use consume_local_stats::Summary;

/// One scenario's reduced outcome: the inputs to sweep summarization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSample {
    /// System-wide energy savings `S ∈ [0, 1)` under the reference model.
    pub savings: f64,
    /// Share of demand served by peers (the empirical `G`).
    pub offload: f64,
    /// Wall-clock time the scenario's simulation took, in milliseconds.
    pub wall_ms: f64,
}

/// Aggregate view of one sweep: distribution summaries plus extrema.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Number of scenarios summarised.
    pub scenarios: usize,
    /// Distribution of per-scenario savings.
    pub savings: Summary,
    /// Distribution of per-scenario offload shares.
    pub offload: Summary,
    /// Distribution of per-scenario wall-times (ms).
    pub wall_ms: Summary,
    /// Total wall-time across all scenarios (ms).
    pub total_wall_ms: f64,
    /// Index of the scenario with the highest savings.
    pub best_savings_index: usize,
    /// Index of the scenario with the lowest savings.
    pub worst_savings_index: usize,
}

impl SweepSummary {
    /// Summarises a sweep; `None` when `samples` is empty.
    pub fn of(samples: &[ScenarioSample]) -> Option<SweepSummary> {
        if samples.is_empty() {
            return None;
        }
        let argcmp = |pick_max: bool| {
            let mut best = 0usize;
            for (i, s) in samples.iter().enumerate() {
                let better = if pick_max {
                    s.savings > samples[best].savings
                } else {
                    s.savings < samples[best].savings
                };
                if better {
                    best = i;
                }
            }
            best
        };
        Some(SweepSummary {
            scenarios: samples.len(),
            savings: Summary::of(samples.iter().map(|s| s.savings))?,
            offload: Summary::of(samples.iter().map(|s| s.offload))?,
            wall_ms: Summary::of(samples.iter().map(|s| s.wall_ms))?,
            total_wall_ms: samples.iter().map(|s| s.wall_ms).sum(),
            best_savings_index: argcmp(true),
            worst_savings_index: argcmp(false),
        })
    }
}

/// One point of a degradation curve: a robustness axis value (churn
/// departure rate or cooperation probability) with the savings and offload
/// the sweep measured there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPoint {
    /// The axis value (e.g. departures per online hour).
    pub axis: f64,
    /// Energy savings at this point (`None` when unmeasured).
    pub savings: Option<f64>,
    /// Peer-offload share of demand at this point.
    pub offload: f64,
}

/// A savings/offload-vs-churn curve: the reduction the `churn_degradation`
/// example plots and sanity-checks.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationCurve {
    /// Curve points, sorted by ascending axis value.
    pub points: Vec<DegradationPoint>,
}

impl DegradationCurve {
    /// Builds a curve from unsorted points, ordering by axis value (ties
    /// keep their input order).
    pub fn new(mut points: Vec<DegradationPoint>) -> Self {
        points.sort_by(|a, b| a.axis.partial_cmp(&b.axis).expect("finite axis values"));
        Self { points }
    }

    /// The measured point at the smallest axis value (the healthy
    /// baseline), if any point was measured.
    pub fn baseline(&self) -> Option<&DegradationPoint> {
        self.points.iter().find(|p| p.savings.is_some())
    }

    /// Whether offload degrades monotonically (never increases, within
    /// `tolerance`) as the axis value grows. Vacuously true with fewer
    /// than two points.
    pub fn offload_monotone_non_increasing(&self, tolerance: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].offload <= w[0].offload + tolerance)
    }

    /// Whether every measured point's savings stay at or below the
    /// baseline's (within `tolerance`): degradation can only cost energy
    /// savings, never create them.
    pub fn savings_bounded_by_baseline(&self, tolerance: f64) -> bool {
        let Some(base) = self.baseline().and_then(|p| p.savings) else {
            return true;
        };
        self.points
            .iter()
            .filter_map(|p| p.savings)
            .all(|s| s <= base + tolerance)
    }
}

/// The speedup ratio `baseline / current` of a timed kernel, or `None` when
/// either measurement is non-positive or non-finite. `> 1` means the current
/// code is faster than the recorded baseline.
pub fn speedup(baseline_ms: f64, current_ms: f64) -> Option<f64> {
    (baseline_ms.is_finite() && current_ms.is_finite() && baseline_ms > 0.0 && current_ms > 0.0)
        .then(|| baseline_ms / current_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ScenarioSample> {
        vec![
            ScenarioSample {
                savings: 0.30,
                offload: 0.40,
                wall_ms: 100.0,
            },
            ScenarioSample {
                savings: 0.10,
                offload: 0.15,
                wall_ms: 50.0,
            },
            ScenarioSample {
                savings: 0.45,
                offload: 0.60,
                wall_ms: 400.0,
            },
        ]
    }

    #[test]
    fn summary_aggregates_and_finds_extrema() {
        let s = SweepSummary::of(&samples()).unwrap();
        assert_eq!(s.scenarios, 3);
        assert_eq!(s.best_savings_index, 2);
        assert_eq!(s.worst_savings_index, 1);
        assert!((s.total_wall_ms - 550.0).abs() < 1e-9);
        assert!((s.savings.mean - (0.30 + 0.10 + 0.45) / 3.0).abs() < 1e-12);
        assert_eq!(s.offload.max, 0.60);
        assert_eq!(s.wall_ms.min, 50.0);
    }

    #[test]
    fn empty_sweep_has_no_summary() {
        assert_eq!(SweepSummary::of(&[]), None);
    }

    #[test]
    fn first_extremum_wins_ties() {
        let twice = vec![samples()[0], samples()[0]];
        let s = SweepSummary::of(&twice).unwrap();
        assert_eq!(s.best_savings_index, 0);
        assert_eq!(s.worst_savings_index, 0);
    }

    #[test]
    fn degradation_curve_sorts_and_checks_monotonicity() {
        let point = |axis: f64, savings: f64, offload: f64| DegradationPoint {
            axis,
            savings: Some(savings),
            offload,
        };
        let curve = DegradationCurve::new(vec![
            point(2.0, 0.10, 0.15),
            point(0.0, 0.30, 0.40),
            point(0.5, 0.25, 0.33),
        ]);
        assert_eq!(curve.points[0].axis, 0.0);
        assert_eq!(curve.points[2].axis, 2.0);
        assert_eq!(curve.baseline().unwrap().axis, 0.0);
        assert!(curve.offload_monotone_non_increasing(0.0));
        assert!(curve.savings_bounded_by_baseline(0.0));

        let bumpy = DegradationCurve::new(vec![
            point(0.0, 0.30, 0.40),
            point(1.0, 0.35, 0.45), // degradation "gained" savings: bogus
        ]);
        assert!(!bumpy.offload_monotone_non_increasing(0.01));
        assert!(!bumpy.savings_bounded_by_baseline(0.01));
        // A generous tolerance accepts the wobble.
        assert!(bumpy.offload_monotone_non_increasing(0.1));

        let unmeasured = DegradationCurve::new(vec![DegradationPoint {
            axis: 0.0,
            savings: None,
            offload: 0.0,
        }]);
        assert!(unmeasured.baseline().is_none());
        assert!(unmeasured.savings_bounded_by_baseline(0.0));
    }

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(300.0, 100.0), Some(3.0));
        assert_eq!(speedup(100.0, 200.0), Some(0.5));
        assert_eq!(speedup(0.0, 100.0), None);
        assert_eq!(speedup(100.0, 0.0), None);
        assert_eq!(speedup(f64::NAN, 100.0), None);
    }
}
