//! Carbon credit transfers (Section V of the paper, Eq. 13).
//!
//! The CDN's server-energy saving from peer uploads, `PUE·γ_s` per offloaded
//! bit, is transferred to the uploading users as a carbon credit. A user who
//! watches `T` bytes with offload share `G` consumes `l·γ_m·(1+G)·T` in their
//! premises equipment (downloading everything, uploading the share `G` they
//! pass on). The normalised credit balance is
//!
//! ```text
//! CCT = (PUE·γ_s·G − l·γ_m·(1+G)) / (l·γ_m·(1+G))
//! ```
//!
//! `CCT = −1` with no sharing; `CCT = 0` is carbon-neutral streaming;
//! `CCT > 0` is *carbon positive* — the credit exceeds the user's whole
//! streaming footprint.
//!
//! **Erratum note** (DESIGN.md §3): solving `CCT = 0` gives
//! `G* = l·γ_m/(PUE·γ_s − l·γ_m)`; the paper's printed expression swaps a
//! factor but its asymptotic headline numbers (+18 % Valancius, +58 % Baliga
//! at `G = 1`) match this corrected form exactly, and are unit-tested below.

use serde::{Deserialize, Serialize};

use consume_local_energy::{CostModel, EnergyParams};

use crate::offload::offload_fraction;

/// The carbon-credit model for one energy parameter set.
///
/// # Example
///
/// ```
/// use consume_local_analytics::CreditModel;
/// use consume_local_energy::EnergyParams;
///
/// let m = CreditModel::new(EnergyParams::baliga());
/// assert_eq!(m.cct(0.0), -1.0);           // no sharing: full footprint
/// assert!(m.cct(1.0) > 0.5);              // full offload: strongly positive
/// assert!(m.carbon_neutral_offload().unwrap() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CreditModel {
    cost: CostModel,
}

impl CreditModel {
    /// Builds a credit model on an energy parameter set.
    pub fn new(params: EnergyParams) -> Self {
        Self {
            cost: CostModel::new(params),
        }
    }

    /// The underlying cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Normalised carbon credit transfer at offload share `G ∈ [0, 1]`
    /// (Eq. 13). Inputs are clamped into `[0, 1]`.
    pub fn cct(&self, offload_share: f64) -> f64 {
        let g = if offload_share.is_finite() {
            offload_share.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let credit = self.cost.cdn_saving_per_bit().as_nanojoules() * g;
        let footprint = self.cost.user_premises_cost_per_bit().as_nanojoules() * (1.0 + g);
        (credit - footprint) / footprint
    }

    /// CCT from explicit per-user traffic: `watched` bytes consumed and
    /// `uploaded` bytes served to peers. Returns `None` when the user
    /// watched nothing (no footprint to normalise by).
    ///
    /// This is the exact per-user form the simulator ledgers feed into
    /// Fig. 6: credit `PUE·γ_s·uploaded` against footprint
    /// `l·γ_m·(watched + uploaded)`.
    pub fn cct_from_traffic(&self, watched_bytes: u64, uploaded_bytes: u64) -> Option<f64> {
        if watched_bytes == 0 {
            return None;
        }
        let up = uploaded_bytes as f64;
        let total = watched_bytes as f64 + up;
        let credit = self.cost.cdn_saving_per_bit().as_nanojoules() * up;
        let footprint = self.cost.user_premises_cost_per_bit().as_nanojoules() * total;
        Some((credit - footprint) / footprint)
    }

    /// The offload share `G*` at which streaming becomes carbon-neutral
    /// (`CCT = 0`): `G* = l·γ_m/(PUE·γ_s − l·γ_m)`.
    ///
    /// Returns `None` when even full offload cannot offset the footprint
    /// (i.e. `G* > 1` or the denominator is non-positive).
    pub fn carbon_neutral_offload(&self) -> Option<f64> {
        let credit_rate = self.cost.cdn_saving_per_bit().as_nanojoules();
        let footprint_rate = self.cost.user_premises_cost_per_bit().as_nanojoules();
        let denom = credit_rate - footprint_rate;
        if denom <= 0.0 {
            return None;
        }
        let g_star = footprint_rate / denom;
        (g_star <= 1.0).then_some(g_star)
    }

    /// The asymptotic CCT at full offload (`G = 1`): how carbon-positive a
    /// perfectly assisted user can get.
    pub fn asymptotic_cct(&self) -> f64 {
        self.cct(1.0)
    }

    /// The Fig. 5 curve family at one capacity, for upload ratio `ρ`:
    /// `(end-to-end handled elsewhere) CDN, user, CCT` normalised savings.
    pub fn capacity_curves(&self, capacity: f64, upload_ratio: f64) -> CreditCurvePoint {
        let g = offload_fraction(capacity, upload_ratio);
        CreditCurvePoint {
            capacity,
            offload: g,
            cdn_savings: g,
            user_savings: -g,
            cct: self.cct(g),
        }
    }
}

/// One x-position of the Fig. 5 curves: normalised CDN savings (`= G`),
/// normalised user savings (`= −G`) and the carbon credit transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CreditCurvePoint {
    /// Swarm capacity (x axis, log scale in the paper).
    pub capacity: f64,
    /// Offload share `G` at this capacity.
    pub offload: f64,
    /// CDN savings normalised by CDN-only server energy: `G`.
    pub cdn_savings: f64,
    /// User savings normalised by no-sharing user energy: `−G`.
    pub user_savings: f64,
    /// Carbon credit transfer (Eq. 13).
    pub cct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_asymptotics() {
        // §V: at G = 1 users are carbon positive by 18 % (Valancius) and
        // 58 % (Baliga).
        let v = CreditModel::new(EnergyParams::valancius()).asymptotic_cct();
        assert!((v - 0.18).abs() < 0.005, "Valancius: {v}");
        let b = CreditModel::new(EnergyParams::baliga()).asymptotic_cct();
        assert!((b - 0.58).abs() < 0.005, "Baliga: {b}");
    }

    #[test]
    fn carbon_neutral_points() {
        let v = CreditModel::new(EnergyParams::valancius())
            .carbon_neutral_offload()
            .unwrap();
        assert!((v - 107.0 / (253.32 - 107.0)).abs() < 1e-9, "got {v}");
        let b = CreditModel::new(EnergyParams::baliga())
            .carbon_neutral_offload()
            .unwrap();
        assert!((b - 107.0 / (337.56 - 107.0)).abs() < 1e-9, "got {b}");
        // CCT crosses zero exactly there.
        for params in EnergyParams::published() {
            let m = CreditModel::new(params);
            let g_star = m.carbon_neutral_offload().unwrap();
            assert!(m.cct(g_star).abs() < 1e-12);
        }
    }

    #[test]
    fn no_sharing_is_full_footprint() {
        for params in EnergyParams::published() {
            let m = CreditModel::new(params);
            assert_eq!(m.cct(0.0), -1.0);
            assert_eq!(m.cct(-3.0), -1.0); // clamped
            assert_eq!(m.cct(f64::NAN), -1.0);
        }
    }

    #[test]
    fn neutral_unreachable_when_server_cheap() {
        // A server so efficient that its saving can never offset the modem.
        let params = EnergyParams::builder().server_nj(10.0).build().unwrap();
        assert_eq!(CreditModel::new(params).carbon_neutral_offload(), None);
    }

    proptest! {
        #[test]
        fn prop_cct_monotone_in_offload(g in 0.0f64..0.99) {
            let m = CreditModel::new(EnergyParams::valancius());
            prop_assert!(m.cct(g + 0.01) > m.cct(g));
        }

        #[test]
        fn prop_cct_bounded_below(g in 0.0f64..=1.0) {
            for params in EnergyParams::published() {
                let m = CreditModel::new(params);
                prop_assert!(m.cct(g) >= -1.0);
                prop_assert!(m.cct(g) <= m.asymptotic_cct() + 1e-12);
            }
        }
    }

    #[test]
    fn traffic_form_matches_share_form() {
        let m = CreditModel::new(EnergyParams::baliga());
        // A user who uploads exactly as much as the offload share of their
        // watched traffic reproduces the Eq. 13 value:
        // uploaded = G·watched ⇒ footprint ∝ watched·(1+G).
        let watched = 1_000_000u64;
        for g in [0.0, 0.25, 0.5, 1.0] {
            let uploaded = (watched as f64 * g) as u64;
            let from_traffic = m.cct_from_traffic(watched, uploaded).unwrap();
            assert!((from_traffic - m.cct(g)).abs() < 1e-6, "g={g}");
        }
        assert_eq!(m.cct_from_traffic(0, 100), None);
    }

    #[test]
    fn curves_are_consistent() {
        let m = CreditModel::new(EnergyParams::valancius());
        let pt = m.capacity_curves(10.0, 1.0);
        assert_eq!(pt.cdn_savings, pt.offload);
        assert_eq!(pt.user_savings, -pt.offload);
        assert!((pt.cct - m.cct(pt.offload)).abs() < 1e-12);
        assert!(
            pt.offload > 0.8,
            "c=10 offloads most traffic: {}",
            pt.offload
        );
    }
}
