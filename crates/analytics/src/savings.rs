//! The master savings equation `S(c)` (Eq. 12 of the paper).
//!
//! End-to-end savings of hybrid delivery over pure CDN delivery:
//!
//! ```text
//! S(c) = G(c)·(ψ_s − ψ_p^m)/ψ_s  −  ρ·PUE·Γ(c) / (c·ψ_s)
//! ```
//!
//! where `G` is the offload fraction (Eq. 3), `ψ_s` the per-bit server cost,
//! `ψ_p^m = 2·l·γ_m` the modem part of peer delivery, `ρ = q/β`, and
//! `Γ(c) = E[(L−1)·γ_p2p(L)]` the γ-weighted localisation expectation
//! (corrected Eq. 10, see [`crate::localisation`]).
//!
//! The first term is the *gross* saving from moving traffic off the
//! CDN path; the second is the *network penalty* for carrying it between
//! peers instead.

use std::fmt;

use serde::{Deserialize, Serialize};

use consume_local_energy::{CostModel, EnergyParams};
use consume_local_topology::IspTopology;

use crate::localisation::{gamma_weighted_units, localised_units};
use crate::mminf::SwarmCapacity;
use crate::offload::offload_fraction;

/// Error from [`SavingsModel::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelError {
    what: &'static str,
    value: f64,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid savings-model parameter: {} = {}",
            self.what, self.value
        )
    }
}

impl std::error::Error for ModelError {}

/// The two additive parts of Eq. 12 and their net value at one capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsBreakdown {
    /// Swarm capacity the breakdown was evaluated at.
    pub capacity: f64,
    /// Offload fraction `G` at this capacity.
    pub offload: f64,
    /// Gross saving `G·(ψ_s − ψ_p^m)/ψ_s`.
    pub gross: f64,
    /// P2P network penalty `ρ·PUE·Γ(c)/(c·ψ_s)` (subtracted).
    pub network_penalty: f64,
    /// Net savings `gross − network_penalty` = `S(c)`.
    pub net: f64,
}

/// The closed-form savings model for one (energy parameter set, ISP
/// topology, upload ratio) triple.
///
/// # Example
///
/// ```
/// use consume_local_analytics::SavingsModel;
/// use consume_local_energy::EnergyParams;
/// use consume_local_topology::IspTopology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = IspTopology::london_table3()?;
/// let m = SavingsModel::new(EnergyParams::baliga(), &topo, 1.0)?;
/// assert!(m.savings(100.0) > m.savings(1.0)); // bigger swarms save more
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavingsModel {
    cost: CostModel,
    topology: IspTopology,
    upload_ratio: f64,
}

impl SavingsModel {
    /// Builds a model from an energy parameter set, an ISP tree and the
    /// upload ratio `ρ = q/β`.
    ///
    /// Ratios above 1 are capped at 1 (a peer cannot stream faster than the
    /// bitrate to one downloader); the paper only evaluates `ρ ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for a non-finite or non-positive ratio.
    pub fn new(
        params: EnergyParams,
        topology: &IspTopology,
        upload_ratio: f64,
    ) -> Result<Self, ModelError> {
        if !upload_ratio.is_finite() || upload_ratio <= 0.0 {
            return Err(ModelError {
                what: "upload_ratio",
                value: upload_ratio,
            });
        }
        Ok(Self {
            cost: CostModel::new(params),
            topology: topology.clone(),
            upload_ratio: upload_ratio.min(1.0),
        })
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The ISP topology in use.
    pub fn topology(&self) -> &IspTopology {
        &self.topology
    }

    /// The (capped) upload ratio `ρ`.
    pub fn upload_ratio(&self) -> f64 {
        self.upload_ratio
    }

    /// The offload fraction `G(c)` under this model's upload ratio.
    pub fn offload(&self, capacity: f64) -> f64 {
        offload_fraction(capacity, self.upload_ratio)
    }

    /// End-to-end savings `S(c)` (Eq. 12). Returns 0 at zero capacity.
    pub fn savings(&self, capacity: f64) -> f64 {
        self.breakdown(capacity).net
    }

    /// `S(c)` together with its gross/penalty decomposition.
    pub fn breakdown(&self, capacity: f64) -> SavingsBreakdown {
        if !capacity.is_finite() || capacity <= 0.0 {
            return SavingsBreakdown {
                capacity: capacity.max(0.0),
                offload: 0.0,
                gross: 0.0,
                network_penalty: 0.0,
                net: 0.0,
            };
        }
        let cap = SwarmCapacity::new(capacity).expect("validated positive");
        let psi_s = self.cost.server_cost_per_bit().as_nanojoules();
        let psi_pm = self.cost.peer_fixed_cost_per_bit().as_nanojoules();
        let g = self.offload(capacity);
        let gross = g * (psi_s - psi_pm) / psi_s;
        let gamma_units = gamma_weighted_units(&self.cost, &self.topology, cap);
        let penalty = self.upload_ratio * self.cost.params().pue * gamma_units / (capacity * psi_s);
        SavingsBreakdown {
            capacity,
            offload: g,
            gross,
            network_penalty: penalty,
            net: gross - penalty,
        }
    }

    /// The large-swarm asymptote
    /// `S(∞) = ρ·(ψ_s − ψ_p^m − PUE·γ_exp)/ψ_s`: with unbounded capacity all
    /// peer traffic localises within exchange points.
    pub fn asymptotic_savings(&self) -> f64 {
        let psi_s = self.cost.server_cost_per_bit().as_nanojoules();
        let psi_pm = self.cost.peer_fixed_cost_per_bit().as_nanojoules();
        let gamma_exp = self
            .cost
            .peer_network_cost_per_bit(consume_local_topology::Layer::ExchangePoint)
            .as_nanojoules();
        self.upload_ratio * (psi_s - psi_pm - gamma_exp) / psi_s
    }

    /// The average per-bit P2P intensity at `capacity` (diagnostic; see
    /// [`crate::localisation::expected_gamma_p2p`]).
    pub fn average_gamma_p2p(&self, capacity: f64) -> f64 {
        let total = localised_units(1.0, capacity);
        if total <= 0.0 {
            return self
                .cost
                .gamma_p2p(consume_local_topology::Layer::Core)
                .as_nanojoules();
        }
        gamma_weighted_units(
            &self.cost,
            &self.topology,
            SwarmCapacity::new(capacity.max(0.0)).expect("validated"),
        ) / total
    }

    /// `S(c)` over a capacity grid — one theory curve of Fig. 2 / Fig. 5.
    pub fn savings_series(&self, capacities: &[f64]) -> Vec<(f64, f64)> {
        capacities.iter().map(|&c| (c, self.savings(c))).collect()
    }

    /// Traffic-weighted aggregate savings over a set of swarms, each given
    /// as `(capacity, traffic_weight)` — the theory line of Fig. 4.
    ///
    /// Weights must be non-negative; returns 0 when the total weight is 0.
    pub fn aggregate_savings<I>(&self, swarms: I) -> f64
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        let mut num = 0.0;
        let mut den = 0.0;
        for (c, w) in swarms {
            if w <= 0.0 || !w.is_finite() {
                continue;
            }
            num += w * self.savings(c);
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric;
    use proptest::prelude::*;

    fn model(params: EnergyParams, rho: f64) -> SavingsModel {
        SavingsModel::new(params, &IspTopology::london_table3().unwrap(), rho).unwrap()
    }

    #[test]
    fn reproduces_paper_plateaus() {
        // Fig. 2, left column, q/β = 1: plateau at capacity ≈ 100 reaches
        // ≈ 0.45–0.48 (Valancius) and ≈ 0.24–0.29 (Baliga).
        let v = model(EnergyParams::valancius(), 1.0).savings(100.0);
        assert!((0.44..0.50).contains(&v), "Valancius S(100) = {v}");
        let b = model(EnergyParams::baliga(), 1.0).savings(100.0);
        assert!((0.24..0.31).contains(&b), "Baliga S(100) = {b}");
    }

    #[test]
    fn valancius_beats_baliga_at_all_capacities() {
        let v = model(EnergyParams::valancius(), 1.0);
        let b = model(EnergyParams::baliga(), 1.0);
        for &c in &[0.1, 1.0, 10.0, 100.0, 1000.0] {
            assert!(v.savings(c) > b.savings(c), "c={c}");
        }
    }

    #[test]
    fn breakdown_is_consistent() {
        let m = model(EnergyParams::valancius(), 0.8);
        for &c in &[0.2, 2.0, 20.0] {
            let bd = m.breakdown(c);
            assert!((bd.net - (bd.gross - bd.network_penalty)).abs() < 1e-12);
            assert!((bd.net - m.savings(c)).abs() < 1e-12);
            assert!(bd.gross >= 0.0 && bd.network_penalty >= 0.0);
            assert_eq!(bd.capacity, c);
        }
    }

    #[test]
    fn zero_capacity_is_zero_savings() {
        let m = model(EnergyParams::baliga(), 1.0);
        assert_eq!(m.savings(0.0), 0.0);
        assert_eq!(m.savings(-5.0), 0.0);
        assert_eq!(m.savings(f64::NAN), 0.0);
    }

    #[test]
    fn approaches_asymptote() {
        for params in EnergyParams::published() {
            let m = model(params, 1.0);
            let s_inf = m.asymptotic_savings();
            let s_big = m.savings(1e6);
            assert!(
                (s_big - s_inf).abs() < 0.01,
                "{}: {s_big} vs {s_inf}",
                params.name()
            );
            assert!(m.savings(100.0) < s_inf);
        }
    }

    #[test]
    fn ratio_caps_at_one() {
        let m = SavingsModel::new(
            EnergyParams::valancius(),
            &IspTopology::london_table3().unwrap(),
            3.0,
        )
        .unwrap();
        assert_eq!(m.upload_ratio(), 1.0);
    }

    #[test]
    fn invalid_ratio_rejected() {
        let topo = IspTopology::london_table3().unwrap();
        assert!(SavingsModel::new(EnergyParams::valancius(), &topo, 0.0).is_err());
        assert!(SavingsModel::new(EnergyParams::valancius(), &topo, -1.0).is_err());
        let err = SavingsModel::new(EnergyParams::valancius(), &topo, f64::NAN).unwrap_err();
        assert!(err.to_string().contains("upload_ratio"));
    }

    #[test]
    fn matches_numeric_reference() {
        let topo = IspTopology::london_table3().unwrap();
        for params in EnergyParams::published() {
            for &rho in &[0.4, 1.0] {
                let m = SavingsModel::new(params, &topo, rho).unwrap();
                for &c in &[0.05, 0.5, 5.0, 50.0] {
                    let closed = m.savings(c);
                    let brute = numeric::savings_numeric(m.cost(), &topo, rho, c);
                    assert!(
                        (closed - brute).abs() < 1e-6,
                        "{} rho={rho} c={c}: {closed} vs {brute}",
                        params.name()
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_savings_in_unit_interval(c in 1e-3f64..1e4, rho in 0.05f64..1.0) {
            let m = model(EnergyParams::valancius(), rho);
            let s = m.savings(c);
            prop_assert!(s >= 0.0, "S={} at c={} rho={}", s, c, rho);
            prop_assert!(s < 1.0);
        }

        #[test]
        fn prop_savings_monotone_in_ratio(c in 1e-2f64..1e3, rho in 0.1f64..0.9) {
            let lo = model(EnergyParams::baliga(), rho).savings(c);
            let hi = model(EnergyParams::baliga(), rho + 0.1).savings(c);
            prop_assert!(hi >= lo - 1e-12);
        }

        #[test]
        fn prop_savings_monotone_in_capacity(c in 1e-2f64..1e3) {
            let m = model(EnergyParams::valancius(), 1.0);
            prop_assert!(m.savings(c * 1.2) >= m.savings(c) - 1e-9);
        }
    }

    #[test]
    fn aggregate_weights_properly() {
        let m = model(EnergyParams::valancius(), 1.0);
        // All weight on one swarm = that swarm's savings.
        let single = m.aggregate_savings([(10.0, 5.0)]);
        assert!((single - m.savings(10.0)).abs() < 1e-12);
        // Equal split is the average.
        let avg = m.aggregate_savings([(1.0, 1.0), (100.0, 1.0)]);
        assert!((avg - 0.5 * (m.savings(1.0) + m.savings(100.0))).abs() < 1e-12);
        // Ignores zero/negative/non-finite weights.
        let robust = m.aggregate_savings([(1.0, 0.0), (100.0, -3.0), (10.0, f64::NAN)]);
        assert_eq!(robust, 0.0);
    }

    #[test]
    fn series_matches_pointwise() {
        let m = model(EnergyParams::baliga(), 0.6);
        let caps = [0.1, 1.0, 10.0];
        let series = m.savings_series(&caps);
        for (i, &(c, s)) in series.iter().enumerate() {
            assert_eq!(c, caps[i]);
            assert_eq!(s, m.savings(c));
        }
    }

    #[test]
    fn isp_spread_smaller_isps_save_less_at_same_item_popularity() {
        // With the same *per-ISP* capacity, a smaller tree localises better
        // (higher p_exp) — but in the evaluation smaller ISPs see smaller
        // sub-swarms. Here we check the topology effect in isolation.
        let small_topo = IspTopology::new(110, 4).unwrap();
        let big = model(EnergyParams::valancius(), 1.0);
        let small = SavingsModel::new(EnergyParams::valancius(), &small_topo, 1.0).unwrap();
        // Same capacity: the small tree localises more traffic at ExP level.
        assert!(small.savings(5.0) > big.savings(5.0));
    }
}
