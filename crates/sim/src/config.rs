//! Simulation configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

use consume_local_swarm::{MatcherKind, SwarmPolicy};
use consume_local_trace::ChurnConfigError;

/// A violated [`SimConfig`] constraint, reported as a typed error so callers
/// (the experiment builder, the sweep runner) can propagate it without
/// stringly-typed plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimConfigError {
    /// `window_secs` was zero.
    ZeroWindow,
    /// The upload ratio was non-positive or non-finite.
    BadUploadRatio(f64),
    /// The absolute upload bandwidth was zero.
    ZeroUploadBandwidth,
    /// `threads` was zero.
    ZeroThreads,
    /// `preload_fraction` was outside `[0, 1)`.
    BadPreloadFraction(f64),
    /// `edge_cache.top_items` was zero.
    ZeroCacheItems,
    /// `participation_rate` was outside `(0, 1]`.
    BadParticipationRate(f64),
    /// A churn / fault-injection bound was violated (the simulator's
    /// `cooperation_rate` shares the churn layer's typed validation).
    Churn(ChurnConfigError),
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::ZeroWindow => write!(f, "window_secs must be positive"),
            SimConfigError::BadUploadRatio(r) => {
                write!(f, "upload ratio must be positive, got {r}")
            }
            SimConfigError::ZeroUploadBandwidth => {
                write!(f, "absolute upload bandwidth must be positive")
            }
            SimConfigError::ZeroThreads => write!(f, "threads must be at least 1"),
            SimConfigError::BadPreloadFraction(p) => {
                write!(f, "preload_fraction must be in [0, 1), got {p}")
            }
            SimConfigError::ZeroCacheItems => {
                write!(f, "edge_cache.top_items must be positive")
            }
            SimConfigError::BadParticipationRate(r) => {
                write!(f, "participation_rate must be in (0, 1], got {r}")
            }
            SimConfigError::Churn(e) => write!(f, "churn: {e}"),
        }
    }
}

impl std::error::Error for SimConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimConfigError::Churn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChurnConfigError> for SimConfigError {
    fn from(e: ChurnConfigError) -> Self {
        SimConfigError::Churn(e)
    }
}

/// How much upload bandwidth each peer contributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UploadModel {
    /// Upload is a fixed ratio of the peer's own streaming bitrate
    /// (`q = ratio·β`), the paper's `q/β` sweep parameter.
    Ratio(f64),
    /// Upload is an absolute bandwidth in bits per second, identical for all
    /// peers (e.g. the UK 2017 average uplink of ≈ 4.3 Mb/s the paper
    /// cites).
    AbsoluteBps(u32),
}

impl UploadModel {
    /// The per-window upload budget in bytes for a peer streaming at
    /// `bitrate_bps`, over a window of `window_secs`.
    pub fn budget_bytes(&self, bitrate_bps: u32, window_secs: u64) -> u64 {
        match *self {
            UploadModel::Ratio(r) => {
                let q_bps = (f64::from(bitrate_bps) * r.max(0.0)).round();
                (q_bps * window_secs as f64 / 8.0) as u64
            }
            UploadModel::AbsoluteBps(q) => u64::from(q) * window_secs / 8,
        }
    }

    /// The effective `q/β` ratio for a swarm streaming at `bitrate_bps`
    /// (used to parameterise the matching theory curve).
    pub fn ratio_for(&self, bitrate_bps: u32) -> f64 {
        match *self {
            UploadModel::Ratio(r) => r.max(0.0),
            UploadModel::AbsoluteBps(q) => f64::from(q) / f64::from(bitrate_bps.max(1)),
        }
    }
}

impl Default for UploadModel {
    fn default() -> Self {
        UploadModel::Ratio(1.0)
    }
}

/// Configuration of the §VI edge-caching extension: the `top_items` most
/// popular catalogue items are replicated in nano-caches at every exchange
/// point; their non-peer traffic is served from the cache instead of the
/// CDN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeCache {
    /// How many head items each exchange point caches.
    pub top_items: u32,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Window length Δτ in seconds (paper: 10 s).
    pub window_secs: u64,
    /// Peer upload capability.
    pub upload: UploadModel,
    /// Sub-swarm partitioning policy.
    pub policy: SwarmPolicy,
    /// The matching strategy.
    pub matcher: MatcherKind,
    /// Seed for matcher randomness (only used by the random matcher).
    pub seed: u64,
    /// Number of worker threads (`1` = sequential; results are identical
    /// either way).
    pub threads: usize,
    /// §VI predictive preloading: the fraction of every session's bytes
    /// prefetched from the CDN ahead of playback, in `[0, 1)`. Preloaded
    /// bytes bypass the swarm entirely (they are neither peer-downloadable
    /// nor peer-uploadable). 0 disables the extension (paper behaviour).
    pub preload_fraction: f64,
    /// §VI edge caching, when enabled.
    pub edge_cache: Option<EdgeCache>,
    /// Share of users who contribute upload capacity, in `(0, 1]`.
    ///
    /// The paper's conclusion cites Akamai NetSession, where "as little as
    /// 30 % of its users participate by contributing upload capacity" — the
    /// very gap the carbon-credit incentive is designed to close.
    /// Non-participants still watch (and may still *receive* from peers);
    /// they simply never upload. Membership is a deterministic hash of the
    /// user id, so it is stable across runs and configurations.
    pub participation_rate: f64,
    /// Probability that a matched uploader actually delivers its window's
    /// bytes, in `(0, 1]`. `1.0` (the default) disables fault injection.
    ///
    /// Below 1.0, peers *silently defect*: the matching still happens, but
    /// a defecting uploader's transfers fail for that window and the
    /// receivers fall back to the CDN (or edge cache). Defections are a
    /// deterministic hash of `(swarm, user, window)` — a dedicated indexed
    /// stream independent of thread schedule — and the lost volume is
    /// surfaced in `SimReport::degradation`.
    pub cooperation_rate: f64,
    /// Whether incremental runs spill sealed days and compact quiescent
    /// swarm machines between segments (on by default).
    ///
    /// Once the watermark passes a day's end its per-swarm ledgers are
    /// final; spilling folds them into the run-level day × ISP cells and a
    /// compact per-swarm frozen form, and quiescent machines drop their
    /// matcher and lookup tables (rebuilt on reactivation exactly as a
    /// checkpoint restore rebuilds them). Results are byte-identical either
    /// way — the knob exists for the oracle tests and for memory-vs-CPU
    /// tuning; only peak RSS changes.
    pub spill: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            window_secs: 10,
            upload: UploadModel::default(),
            policy: SwarmPolicy::paper_default(),
            matcher: MatcherKind::Hierarchical,
            seed: 0,
            threads: num_threads_default(),
            preload_fraction: 0.0,
            edge_cache: None,
            participation_rate: 1.0,
            cooperation_rate: 1.0,
            spill: true,
        }
    }
}

impl SimConfig {
    /// The paper's configuration with a specific `q/β` ratio.
    pub fn with_ratio(ratio: f64) -> Self {
        Self {
            upload: UploadModel::Ratio(ratio),
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SimConfigError`].
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.window_secs == 0 {
            return Err(SimConfigError::ZeroWindow);
        }
        match self.upload {
            UploadModel::Ratio(r) if !r.is_finite() || r <= 0.0 => {
                return Err(SimConfigError::BadUploadRatio(r));
            }
            UploadModel::AbsoluteBps(0) => {
                return Err(SimConfigError::ZeroUploadBandwidth);
            }
            _ => {}
        }
        if self.threads == 0 {
            return Err(SimConfigError::ZeroThreads);
        }
        if !(0.0..1.0).contains(&self.preload_fraction) {
            return Err(SimConfigError::BadPreloadFraction(self.preload_fraction));
        }
        if let Some(cache) = self.edge_cache {
            if cache.top_items == 0 {
                return Err(SimConfigError::ZeroCacheItems);
            }
        }
        if !self.participation_rate.is_finite()
            || self.participation_rate <= 0.0
            || self.participation_rate > 1.0
        {
            return Err(SimConfigError::BadParticipationRate(
                self.participation_rate,
            ));
        }
        if !self.cooperation_rate.is_finite()
            || self.cooperation_rate <= 0.0
            || self.cooperation_rate > 1.0
        {
            return Err(SimConfigError::Churn(
                ChurnConfigError::BadCooperationProbability(self.cooperation_rate),
            ));
        }
        Ok(())
    }

    /// The workspace's default worker-thread count: available parallelism
    /// capped at 16 (also the sweep runner's default fan-out width).
    pub fn default_threads() -> usize {
        num_threads_default()
    }
}

fn num_threads_default() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_budget() {
        // 1.5 Mb/s × ratio 0.6 over 10 s = 1 125 000 bytes.
        let m = UploadModel::Ratio(0.6);
        assert_eq!(m.budget_bytes(1_500_000, 10), 1_125_000);
        assert!((m.ratio_for(1_500_000) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn absolute_budget() {
        let m = UploadModel::AbsoluteBps(4_300_000);
        assert_eq!(m.budget_bytes(1_500_000, 10), 4_300_000 * 10 / 8);
        assert!((m.ratio_for(1_500_000) - 4.3 / 1.5).abs() < 1e-9);
        // Ratio guards against zero bitrate.
        assert!(m.ratio_for(0).is_finite());
    }

    #[test]
    fn negative_ratio_clamps_to_zero_budget() {
        let m = UploadModel::Ratio(-1.0);
        assert_eq!(m.budget_bytes(1_500_000, 10), 0);
        assert_eq!(m.ratio_for(9), 0.0);
    }

    #[test]
    fn default_is_paper_config() {
        let c = SimConfig::default();
        assert_eq!(c.window_secs, 10);
        assert_eq!(c.upload, UploadModel::Ratio(1.0));
        assert_eq!(c.policy, SwarmPolicy::paper_default());
        assert!(c.threads >= 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let c = SimConfig {
            window_secs: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            upload: UploadModel::Ratio(0.0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            upload: UploadModel::AbsoluteBps(0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            threads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            preload_fraction: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            edge_cache: Some(EdgeCache { top_items: 0 }),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            participation_rate: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            participation_rate: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let c = SimConfig {
                cooperation_rate: bad,
                ..Default::default()
            };
            let err = c.validate().unwrap_err();
            assert!(
                matches!(
                    err,
                    SimConfigError::Churn(ChurnConfigError::BadCooperationProbability(_))
                ),
                "cooperation_rate {bad} should fail with a churn error, got {err}"
            );
            assert!(err.to_string().starts_with("churn: "));
        }
    }

    #[test]
    fn with_ratio_sets_upload() {
        let c = SimConfig::with_ratio(0.4);
        assert_eq!(c.upload, UploadModel::Ratio(0.4));
    }
}
