//! Slot-ordered parallel mapping over an index range.
//!
//! The one concurrency idiom the workspace uses: fan `0..n` out across
//! scoped worker threads with an atomic work-stealing cursor, and place each
//! result at its *index-ordered* slot, never at its completion-ordered one —
//! which is what makes the simulation engine and the sweep runner
//! deterministic for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Maps `0..n` through `f` across at most `workers` scoped threads.
///
/// Output order is by index. `workers` is clamped to `n` (and at least one
/// thread runs even for `n == 0`, trivially exiting).
///
/// # Panics
///
/// Propagates a panic from `f` once the thread scope unwinds.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, workers: usize, f: F) -> Vec<T> {
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                slots.lock()[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every index mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for workers in [1, 2, 8, 500] {
            assert_eq!(parallel_map(257, workers, |i| i * i), expected);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }
}
