//! Slot-ordered parallel mapping (re-export).
//!
//! The implementation moved down the crate graph to
//! [`consume_local_stats::par`] so the trace generator can fan per-item
//! session synthesis across the same primitive the engine and the sweep
//! runner use; this module keeps the historical `consume_local_sim::par`
//! path working. [`parallel_map_slices`] — the disjoint-slice variant the
//! trace merge fans its hour buckets over — rides along for engine-side
//! callers that shard one mutable buffer instead of an index range, and
//! [`parallel_join`] pairs the online replay producer with the simulating
//! consumer.

pub use consume_local_stats::par::{parallel_join, parallel_map, parallel_map_slices};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_shared_primitive() {
        let expected: Vec<usize> = (0..64).map(|i| i + 1).collect();
        for workers in [1, 3, 16] {
            assert_eq!(parallel_map(64, workers, |i| i + 1), expected);
        }
    }

    #[test]
    fn slice_reexport_is_the_shared_primitive() {
        let mut data: Vec<u32> = (0..32).collect();
        let sums = parallel_map_slices(&mut data, &[0, 16, 32], 2, |_, chunk| {
            chunk.iter_mut().for_each(|v| *v += 1);
            chunk.iter().map(|&v| u64::from(v)).sum::<u64>()
        });
        assert_eq!(sums, vec![136, 392]);
        assert_eq!(data, (1..=32).collect::<Vec<u32>>());
    }
}
