//! Slot-ordered parallel mapping (re-export).
//!
//! The implementation moved down the crate graph to
//! [`consume_local_stats::par`] so the trace generator can fan per-item
//! session synthesis across the same primitive the engine and the sweep
//! runner use; this module keeps the historical `consume_local_sim::par`
//! path working.

pub use consume_local_stats::par::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_shared_primitive() {
        let expected: Vec<usize> = (0..64).map(|i| i + 1).collect();
        for workers in [1, 3, 16] {
            assert_eq!(parallel_map(64, workers, |i| i + 1), expected);
        }
    }
}
