//! Crash-safe engine snapshots: the versioned binary format, the cadence
//! policy and the atomic on-disk protocol.
//!
//! A long-running ingest process (the [`online`](crate::online) consumer, or
//! any [`SegmentedRun`] driver) can capture its complete resumable state at
//! a batch boundary with [`SegmentedRun::checkpoint`] and, after a crash,
//! rebuild it with [`Simulator::resume`] — the restored run continues
//! **byte-identically**: feeding it the post-checkpoint batches yields the
//! exact `SimReport` of an uninterrupted run (pinned by `tests/recovery.rs`
//! at 1/2/8 threads and every crash boundary).
//!
//! # Format
//!
//! Everything is hand-rolled little-endian — the workspace's `serde` shim is
//! a no-op, and a checkpoint must be readable by a *different* process, so
//! the layout is owned here, versioned and digest-guarded:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CLSNAP\r\n"   (the \r\n catches text-mode mangling)
//! 8       4     format version (u32 LE)
//! 12      8     payload length in bytes (u64 LE)
//! 20      n     payload: the engine state, LE primitives, length-prefixed
//!               sequences (see `engine.rs` for the field-by-field layout)
//! 20+n    8     FNV-1a-64 digest of the payload (u64 LE)
//! ```
//!
//! Readers reject a wrong magic ([`CheckpointError::BadMagic`]), an unknown
//! version ([`CheckpointError::UnsupportedVersion`]), a short file
//! ([`CheckpointError::Truncated`]) and a digest mismatch
//! ([`CheckpointError::DigestMismatch`]) *before* interpreting a single
//! payload byte; structural violations inside the payload surface as
//! [`CheckpointError::Corrupt`]. All checkpoint writes in the workspace go
//! through [`SnapshotWriter`]/[`SnapshotReader`] — the `snapshot-format`
//! lint rule flags raw `Write` calls on engine state anywhere else.
//!
//! # Crash-consistency model
//!
//! [`write_snapshot_file`] never overwrites in place: the snapshot is
//! written to `<path>.tmp`, the previous `<path>` (if any) is renamed to
//! `<path>.prev` (last-good retention) and the tmp file is renamed into
//! place. A crash at any point leaves either the old snapshot, the old
//! snapshot plus a stray tmp, or the new snapshot — never a torn `<path>`.
//! [`resume_latest`] tries `<path>` first and falls back to `<path>.prev`,
//! so even a snapshot corrupted at rest costs one checkpoint interval, not
//! the run.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::engine::{SegmentedRun, Simulator};

/// The 8-byte snapshot magic. `\r\n` at the end makes accidental text-mode
/// translation detectable, PNG-style.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CLSNAP\r\n";

/// The snapshot format version this build writes and reads.
///
/// Version 2 added the spill state: the config's `spill` flag, the run's
/// spilled-day boundary and grouped day × ISP cells, and each swarm's
/// frozen-day list.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Sanity bound on the declared payload length (1 GiB). A corrupted header
/// cannot make the reader allocate unbounded memory: real snapshots are
/// megabytes even at full scale.
const MAX_PAYLOAD_BYTES: u64 = 1 << 30;

/// FNV-1a 64-bit digest (offset basis `0xcbf29ce484222325`, prime
/// `0x100000001b3`) — the payload integrity check. Not cryptographic; it
/// guards against truncation, bit rot and version-skew accidents.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A failure while writing, reading or interpreting a snapshot.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying I/O operation failed.
    Io(io::Error),
    /// The stream does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The 8 bytes actually found.
        found: [u8; 8],
    },
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The version recorded in the header.
        found: u32,
        /// The version this build supports ([`SNAPSHOT_VERSION`]).
        supported: u32,
    },
    /// The stream ended before the declared header/payload/digest did.
    Truncated {
        /// Which part of the snapshot was cut short.
        context: &'static str,
    },
    /// The payload digest does not match the stored one.
    DigestMismatch {
        /// Digest stored in the snapshot trailer.
        stored: u64,
        /// Digest recomputed over the payload actually read.
        computed: u64,
    },
    /// The header and digest were intact but the payload violates the
    /// format's structural invariants (impossible lengths, an invalid
    /// configuration, trailing bytes).
    Corrupt(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:02x?}")
            }
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {supported})"
            ),
            CheckpointError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            CheckpointError::DigestMismatch { stored, computed } => write!(
                f,
                "snapshot digest mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Builds a snapshot payload and emits it inside the versioned envelope.
///
/// All primitives are little-endian; sequences are length-prefixed by the
/// caller via [`SnapshotWriter::put_len`]. The payload is buffered so the
/// header can carry its exact length and the trailer its digest.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    payload: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.payload.push(v);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.payload.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a sequence length (as `u64`) — the length prefix every
    /// variable-length field carries.
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Bytes buffered so far (the eventual payload length).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Writes the complete snapshot — magic, version, length, payload,
    /// digest — to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`CheckpointError::Io`].
    pub fn finish(self, out: &mut impl Write) -> Result<(), CheckpointError> {
        out.write_all(&SNAPSHOT_MAGIC)?;
        out.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        out.write_all(&(self.payload.len() as u64).to_le_bytes())?;
        out.write_all(&self.payload)?;
        out.write_all(&fnv1a(&self.payload).to_le_bytes())?;
        out.flush()?;
        Ok(())
    }
}

/// Validates a snapshot's envelope and hands out the payload as a cursor.
///
/// Construction reads and checks magic, version, length and digest in full;
/// the `take_*` accessors then decode the payload and fail with
/// [`CheckpointError::Truncated`] when a read runs past the declared
/// payload. [`SnapshotReader::finish`] asserts the payload was consumed
/// exactly.
#[derive(Debug)]
pub struct SnapshotReader {
    payload: Vec<u8>,
    pos: usize,
}

impl SnapshotReader {
    /// Reads and validates a complete snapshot from `input`.
    ///
    /// # Errors
    ///
    /// Any envelope violation: [`CheckpointError::BadMagic`],
    /// [`CheckpointError::UnsupportedVersion`],
    /// [`CheckpointError::Truncated`], [`CheckpointError::DigestMismatch`],
    /// or [`CheckpointError::Io`] for underlying read failures.
    pub fn from_reader(input: &mut impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 8];
        read_exact(input, &mut magic, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let mut v4 = [0u8; 4];
        read_exact(input, &mut v4, "version")?;
        let version = u32::from_le_bytes(v4);
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let mut l8 = [0u8; 8];
        read_exact(input, &mut l8, "payload length")?;
        let len = u64::from_le_bytes(l8);
        if len > MAX_PAYLOAD_BYTES {
            return Err(CheckpointError::Corrupt("payload length out of bounds"));
        }
        // Read through `take` so a lying length cannot pre-allocate memory
        // the stream never delivers.
        let mut payload = Vec::new();
        let copied = io::copy(&mut input.take(len), &mut payload)?;
        if copied < len {
            return Err(CheckpointError::Truncated { context: "payload" });
        }
        let mut d8 = [0u8; 8];
        read_exact(input, &mut d8, "digest")?;
        let stored = u64::from_le_bytes(d8);
        let computed = fnv1a(&payload);
        if stored != computed {
            return Err(CheckpointError::DigestMismatch { stored, computed });
        }
        Ok(Self { payload, pos: 0 })
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&[u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.payload.len())
            .ok_or(CheckpointError::Truncated { context })?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the payload end.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a `bool` (one byte; any value other than 0/1 is corrupt).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] or [`CheckpointError::Corrupt`].
    pub fn take_bool(&mut self, context: &'static str) -> Result<bool, CheckpointError> {
        match self.take_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("bool byte out of range")),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the payload end.
    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the payload end.
    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, CheckpointError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the payload end.
    pub fn take_f64(&mut self, context: &'static str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.take_u64(context)?))
    }

    /// Reads a sequence length prefix, bounded by the bytes actually left
    /// (every element takes ≥ 1 byte, so a larger claim is structurally
    /// impossible and rejected before any allocation).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] or [`CheckpointError::Corrupt`].
    pub fn take_len(&mut self, context: &'static str) -> Result<usize, CheckpointError> {
        let len = self.take_u64(context)?;
        let remaining = (self.payload.len() - self.pos) as u64;
        if len > remaining {
            return Err(CheckpointError::Corrupt("sequence length out of bounds"));
        }
        Ok(len as usize)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when payload bytes remain.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.payload.len() {
            return Err(CheckpointError::Corrupt("trailing payload bytes"));
        }
        Ok(())
    }
}

fn read_exact(
    input: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), CheckpointError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated { context }
        } else {
            CheckpointError::Io(e)
        }
    })
}

/// How often a supervised run checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCadence {
    /// Checkpoint after every `n` day closes (daily durability: `n = 1`).
    EveryDayCloses(u64),
    /// Checkpoint after every `n` watermark advances (batch-granular).
    EveryWatermarks(u64),
}

/// Where and how often a supervised run checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// The checkpoint cadence.
    pub cadence: CheckpointCadence,
    /// The snapshot file; `<path>.tmp` and `<path>.prev` siblings are
    /// managed by the atomic write protocol.
    pub path: PathBuf,
}

impl CheckpointPolicy {
    /// Checkpoint to `path` after every `n` day closes.
    pub fn every_day_closes(n: u64, path: impl Into<PathBuf>) -> Self {
        Self {
            cadence: CheckpointCadence::EveryDayCloses(n.max(1)),
            path: path.into(),
        }
    }

    /// Checkpoint to `path` after every `n` watermark advances.
    pub fn every_watermarks(n: u64, path: impl Into<PathBuf>) -> Self {
        Self {
            cadence: CheckpointCadence::EveryWatermarks(n.max(1)),
            path: path.into(),
        }
    }
}

/// The stateful side of a [`CheckpointPolicy`]: counts watermark advances
/// and day closes since the last snapshot and writes one (atomically) when
/// the cadence is due. Drivers call [`Checkpointer::note_watermark`] /
/// [`Checkpointer::note_day_close`] at the respective boundaries — see
/// [`Simulator::simulate_days_checkpointed`](crate::Simulator::simulate_days_checkpointed).
#[derive(Debug)]
pub struct Checkpointer {
    policy: CheckpointPolicy,
    since_watermarks: u64,
    since_day_closes: u64,
    written: u64,
}

impl Checkpointer {
    /// Creates a checkpointer with zeroed cadence counters.
    pub fn new(policy: CheckpointPolicy) -> Self {
        Self {
            policy,
            since_watermarks: 0,
            since_day_closes: 0,
            written: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &CheckpointPolicy {
        &self.policy
    }

    /// Snapshots written so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.written
    }

    /// Notes one watermark advance; checkpoints `run` if the cadence is
    /// due. Returns whether a snapshot was written.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-write failures (the run itself is unaffected).
    pub fn note_watermark(&mut self, run: &SegmentedRun) -> Result<bool, CheckpointError> {
        self.since_watermarks += 1;
        let due = matches!(
            self.policy.cadence,
            CheckpointCadence::EveryWatermarks(n) if self.since_watermarks >= n
        );
        self.write_if(due, run)
    }

    /// Notes one day close; checkpoints `run` if the cadence is due.
    /// Returns whether a snapshot was written.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-write failures (the run itself is unaffected).
    pub fn note_day_close(&mut self, run: &SegmentedRun) -> Result<bool, CheckpointError> {
        self.since_day_closes += 1;
        let due = matches!(
            self.policy.cadence,
            CheckpointCadence::EveryDayCloses(n) if self.since_day_closes >= n
        );
        self.write_if(due, run)
    }

    fn write_if(&mut self, due: bool, run: &SegmentedRun) -> Result<bool, CheckpointError> {
        if !due {
            return Ok(false);
        }
        write_snapshot_file(run, &self.policy.path)?;
        self.since_watermarks = 0;
        self.since_day_closes = 0;
        self.written += 1;
        Ok(true)
    }
}

/// Appends `suffix` to a path's final component (`ckpt.bin` →
/// `ckpt.bin.tmp`), keeping the original name intact for the fallback scan.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Atomically replaces `path` with a fresh snapshot of `run`.
///
/// Protocol: write `<path>.tmp` in full, rename the previous `<path>` (if
/// any) to `<path>.prev`, then rename the tmp file into place. Both renames
/// are atomic on POSIX filesystems, so a crash leaves a readable snapshot
/// at `<path>` or `<path>.prev` at every instant (see the module docs).
///
/// # Errors
///
/// Propagates I/O failures; the previous snapshot is untouched unless the
/// new one was written completely.
pub fn write_snapshot_file(run: &SegmentedRun, path: &Path) -> Result<(), CheckpointError> {
    let tmp = sibling(path, ".tmp");
    let mut file = fs::File::create(&tmp)?;
    run.checkpoint(&mut file)?;
    file.sync_all()?;
    drop(file);
    if path.exists() {
        fs::rename(path, sibling(path, ".prev"))?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates one snapshot file into a resumed [`SegmentedRun`].
///
/// # Errors
///
/// Any [`CheckpointError`]: I/O, envelope or payload violations.
pub fn read_snapshot_file(path: &Path) -> Result<SegmentedRun, CheckpointError> {
    let mut file = fs::File::open(path)?;
    Simulator::resume(&mut file)
}

/// Resumes from the newest readable snapshot: `<path>` first, then the
/// `<path>.prev` last-good fallback. The primary snapshot's error is
/// returned when both fail (the fallback's failure is secondary — usually
/// the file simply doesn't exist yet).
///
/// # Errors
///
/// The error from `<path>` when neither it nor `<path>.prev` yields a
/// valid snapshot.
pub fn resume_latest(path: &Path) -> Result<SegmentedRun, CheckpointError> {
    match read_snapshot_file(path) {
        Ok(run) => Ok(run),
        Err(primary) => read_snapshot_file(&sibling(path, ".prev")).map_err(|_| primary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn envelope_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_f64(0.25);
        w.put_len(3);
        let mut bytes = Vec::new();
        w.finish(&mut bytes).unwrap();

        let mut r = SnapshotReader::from_reader(&mut &bytes[..]).unwrap();
        assert_eq!(r.take_u8("a").unwrap(), 7);
        assert!(r.take_bool("b").unwrap());
        assert_eq!(r.take_u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.take_f64("e").unwrap(), 0.25);
        // A 3-element length claim with 0 bytes left must be rejected.
        assert!(matches!(r.take_len("f"), Err(CheckpointError::Corrupt(_))));
    }

    fn sample_bytes() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        for i in 0..32u64 {
            w.put_u64(i * 3);
        }
        let mut bytes = Vec::new();
        w.finish(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(
            SnapshotReader::from_reader(&mut &bytes[..]),
            Err(CheckpointError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = sample_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            SnapshotReader::from_reader(&mut &bytes[..]),
            Err(CheckpointError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample_bytes();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::from_reader(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn rejects_flipped_payload_bit() {
        let mut bytes = sample_bytes();
        let mid = 20 + (bytes.len() - 28) / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            SnapshotReader::from_reader(&mut &bytes[..]),
            Err(CheckpointError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unbounded_payload_claim() {
        let mut bytes = sample_bytes();
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            SnapshotReader::from_reader(&mut &bytes[..]),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn finish_rejects_unconsumed_payload() {
        let bytes = sample_bytes();
        let mut r = SnapshotReader::from_reader(&mut &bytes[..]).unwrap();
        let _ = r.take_u64("first").unwrap();
        assert!(matches!(
            r.finish(),
            Err(CheckpointError::Corrupt("trailing payload bytes"))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::UnsupportedVersion {
            found: 2,
            supported: 1,
        };
        assert!(e.to_string().contains("version 2"));
        let e = CheckpointError::Truncated { context: "payload" };
        assert!(e.to_string().contains("payload"));
    }
}
