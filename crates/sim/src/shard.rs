//! Swarm-sharded simulation: disjoint shards simulated independently and
//! merged commutatively into one byte-identical [`SimReport`].
//!
//! Every quantity a [`SimReport`] aggregates across swarms is a sum of
//! per-swarm contributions in `u64` (byte ledgers, user traffic,
//! degradation counters) or purely per-swarm (capacities, daily points), so
//! a run can be **partitioned by swarm key** into shards, each shard
//! simulated as its own [`SegmentedRun`](crate::engine::SegmentedRun), and
//! the shard reports folded back together — integer addition is commutative
//! and associative, so the fold reproduces the unsharded report **byte for
//! byte** regardless of shard order. The metro presets
//! ([`consume_local_trace::metro`]) are the designed fit: each city owns a
//! disjoint content-id range, so sharding by city *is* sharding by swarm,
//! and the per-shard streams all report the metro-wide population so user
//! tables align index-for-index.
//!
//! The payoff is peak memory, not parallelism: each shard still fans its
//! windows across [`SimConfig::threads`](crate::SimConfig), but shards run
//! **one at a time**, so only one shard's engine state (swarm machines,
//! live days, matcher scratch) is ever resident — a five-city metro peaks
//! near one city's engine footprint plus the accumulated compact reports.
//! `tests/determinism.rs` pins sharded-vs-union byte-identity at 1/2/8
//! threads, and the `metro_scale` bench asserts it at 10.8 M users before
//! writing `BENCH_8.json`.
//!
//! # Contract
//!
//! [`merge_shard_reports`] requires shards that
//!
//! 1. share the envelope (`horizon_secs`, `window_secs`, `users.len()`);
//! 2. own **disjoint swarm key sets** (duplicate keys are rejected — a
//!    swarm split across shards would double-count its windows);
//! 3. were produced by the same [`SimConfig`](crate::SimConfig) (not
//!    checkable from the reports; a mismatch shows up as a byte diff
//!    against the unsharded oracle, which the tests pin).
//!
//! Users need *not* be disjoint across shards: a user's traffic is summed
//! per swarm, and partitioning the swarms partitions the sum.

use std::fmt;

use crate::engine::Simulator;
use crate::report::{SimReport, SimWarning};
use crate::source::SessionSource;

/// A typed failure from [`merge_shard_reports`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// No shard reports were supplied.
    NoShards,
    /// A shard's horizon, window or user-table length differs from shard 0.
    EnvelopeMismatch {
        /// Index of the mismatching shard.
        shard: usize,
    },
    /// Two shards reported the same swarm key (shards must partition the
    /// swarm space).
    SwarmOverlap {
        /// A display form of the duplicated key.
        key: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "no shard reports to merge"),
            ShardError::EnvelopeMismatch { shard } => write!(
                f,
                "shard {shard} disagrees with shard 0 on horizon, window or population"
            ),
            ShardError::SwarmOverlap { key } => {
                write!(f, "swarm {key} appears in more than one shard")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Folds per-shard reports of one partitioned run into the report the
/// unsharded run would have produced (see the [module docs](self) for the
/// contract and the byte-identity argument). The fold is commutative:
/// shards may be supplied in any order.
///
/// Warnings: at most one [`SimWarning::SortKeyFallback`] survives, carrying
/// the element-wise maxima over the shards that warned. The metro presets
/// warn on no path (pinned by a regression test); a composition whose
/// *union* maxima overflow while every shard fits would go unwarned here —
/// acceptable, since warnings never change results.
///
/// # Errors
///
/// [`ShardError`] on an empty shard list, an envelope mismatch, or
/// overlapping swarm key sets.
pub fn merge_shard_reports(shards: Vec<SimReport>) -> Result<SimReport, ShardError> {
    let mut shards = shards.into_iter();
    let Some(mut merged) = shards.next() else {
        return Err(ShardError::NoShards);
    };
    for (i, shard) in shards.enumerate() {
        if shard.horizon_secs != merged.horizon_secs
            || shard.window_secs != merged.window_secs
            || shard.users.len() != merged.users.len()
        {
            return Err(ShardError::EnvelopeMismatch { shard: i + 1 });
        }
        merged.swarms.extend(shard.swarms);
        for (acc, add) in merged.users.iter_mut().zip(&shard.users) {
            acc.watched_bytes += add.watched_bytes;
            acc.uploaded_bytes += add.uploaded_bytes;
        }
        merged.daily.extend(shard.daily);
        merged.total.merge(&shard.total);
        merged.degradation.merge(&shard.degradation);
        merged.warnings.extend(shard.warnings);
    }

    // Per-swarm results in global key order, exactly as the unsharded
    // engine emits them; a stable sort keeps any duplicate adjacent for
    // the overlap check.
    merged.swarms.sort_by_key(|s| s.key);
    if let Some(w) = merged.swarms.windows(2).find(|w| w[0].key == w[1].key) {
        return Err(ShardError::SwarmOverlap {
            key: w[0].key.to_string(),
        });
    }

    // Day × ISP cells: regroup the shard cells per (day, isp). Ledger
    // fields are u64 sums, so the fold order never changes the bytes.
    merged.daily.sort_by_key(|c| (c.day, c.isp));
    let mut folded: Vec<crate::report::DailyIspCell> = Vec::with_capacity(merged.daily.len());
    for cell in merged.daily.drain(..) {
        match folded.last_mut() {
            Some(last) if last.day == cell.day && last.isp == cell.isp => {
                last.ledger.merge(&cell.ledger);
            }
            _ => folded.push(cell),
        }
    }
    merged.daily = folded;

    // Fold fallback warnings into one element-wise maximum.
    if !merged.warnings.is_empty() {
        let mut maxima = (0u64, 0u32, 0u32);
        for w in &merged.warnings {
            let SimWarning::SortKeyFallback {
                max_start_secs,
                max_user,
                max_content,
            } = *w;
            maxima.0 = maxima.0.max(max_start_secs);
            maxima.1 = maxima.1.max(max_user);
            maxima.2 = maxima.2.max(max_content);
        }
        merged.warnings = vec![SimWarning::SortKeyFallback {
            max_start_secs: maxima.0,
            max_user: maxima.1,
            max_content: maxima.2,
        }];
    }
    Ok(merged)
}

impl Simulator {
    /// Simulates each shard source in turn — sequentially, so only one
    /// shard's engine state is resident; each shard still parallelises
    /// across [`SimConfig::threads`](crate::SimConfig) — and merges the
    /// per-shard reports with [`merge_shard_reports`]. With shard sources
    /// that partition one workload by swarm (e.g.
    /// [`MetroTrace::shard_streams`]), the result is byte-identical to
    /// [`Simulator::simulate`] over the union source.
    ///
    /// [`MetroTrace::shard_streams`]: consume_local_trace::metro::MetroTrace::shard_streams
    ///
    /// # Errors
    ///
    /// [`ShardError`] when the shard list is empty or the shard reports
    /// violate the merge contract.
    pub fn simulate_sharded<S: SessionSource>(
        &self,
        shards: impl IntoIterator<Item = S>,
    ) -> Result<SimReport, ShardError> {
        merge_shard_reports(shards.into_iter().map(|s| self.simulate(s)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use consume_local_trace::metro::{MetroConfig, MetroTrace};

    fn tiny_metro() -> MetroTrace {
        MetroTrace::new(
            MetroConfig::five_city()
                .with_cities(3)
                .city_scaled(0.0005)
                .expect("valid scale"),
            2018,
        )
        .expect("valid config")
    }

    fn sim() -> Simulator {
        Simulator::new(SimConfig {
            threads: 2,
            ..Default::default()
        })
    }

    #[test]
    fn sharded_metro_is_byte_identical_to_union() {
        let metro = tiny_metro();
        let sim = sim();
        let union = sim.simulate(&mut metro.stream().expect("valid"));
        let sharded = sim
            .simulate_sharded(
                metro
                    .shard_streams()
                    .expect("valid")
                    .iter_mut()
                    .map(|s| &mut *s),
            )
            .expect("disjoint shards merge");
        assert_eq!(sharded, union);
        union.check_conservation().expect("conserved");
    }

    #[test]
    fn merge_is_commutative_in_shard_order() {
        let metro = tiny_metro();
        let sim = sim();
        let reports: Vec<SimReport> = metro
            .shard_streams()
            .expect("valid")
            .iter_mut()
            .map(|s| sim.simulate(s))
            .collect();
        let forward = merge_shard_reports(reports.clone()).expect("merges");
        let mut reversed = reports;
        reversed.reverse();
        assert_eq!(merge_shard_reports(reversed).expect("merges"), forward);
    }

    #[test]
    fn merge_rejects_contract_violations() {
        assert_eq!(merge_shard_reports(Vec::new()), Err(ShardError::NoShards));

        let metro = tiny_metro();
        let sim = sim();
        let reports: Vec<SimReport> = metro
            .shard_streams()
            .expect("valid")
            .iter_mut()
            .map(|s| sim.simulate(s))
            .collect();

        // Same shard twice: every key overlaps.
        let twice = vec![reports[0].clone(), reports[0].clone()];
        assert!(matches!(
            merge_shard_reports(twice),
            Err(ShardError::SwarmOverlap { .. })
        ));

        // A foreign envelope is rejected before any folding.
        let mut alien = reports[1].clone();
        alien.window_secs += 1;
        assert_eq!(
            merge_shard_reports(vec![reports[0].clone(), alien]),
            Err(ShardError::EnvelopeMismatch { shard: 1 })
        );
    }

    #[test]
    fn fallback_warnings_fold_to_elementwise_maxima() {
        let metro = tiny_metro();
        let sim = sim();
        let mut reports: Vec<SimReport> = metro
            .shard_streams()
            .expect("valid")
            .iter_mut()
            .map(|s| sim.simulate(s))
            .collect();
        reports[0].warnings = vec![SimWarning::SortKeyFallback {
            max_start_secs: 10,
            max_user: 500,
            max_content: 3,
        }];
        reports[2].warnings = vec![SimWarning::SortKeyFallback {
            max_start_secs: 7,
            max_user: 9,
            max_content: 800,
        }];
        let merged = merge_shard_reports(reports).expect("merges");
        assert_eq!(
            merged.warnings,
            vec![SimWarning::SortKeyFallback {
                max_start_secs: 10,
                max_user: 500,
                max_content: 800,
            }]
        );
    }
}
