//! Byte ledgers and their energy evaluation.
//!
//! The simulator records *bytes by delivery class*; energy is computed
//! afterwards for any parameter set. This keeps one simulation reusable
//! across energy models (the paper prices every experiment under both the
//! Valancius and Baliga sets).

use serde::{Deserialize, Serialize};

use consume_local_energy::{CostModel, Energy, EnergyParams, Traffic};
use consume_local_topology::Layer;

/// Bytes delivered in one scope (a swarm, a day×ISP cell, or the whole run),
/// broken down by delivery class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteLedger {
    /// Total demand (= bytes consumed by viewers).
    pub demand_bytes: u64,
    /// Bytes served by CDN servers.
    pub server_bytes: u64,
    /// Bytes served peer-to-peer, indexed by [`Layer::index`].
    pub peer_bytes_by_layer: [u64; 3],
    /// Bytes served from an exchange-point edge cache (§VI caching
    /// extension; 0 unless the cache is enabled).
    pub cache_bytes: u64,
    /// Bytes prefetched ahead of playback from the CDN (§VI predictive
    /// preloading extension; 0 unless preloading is enabled). Priced like
    /// server bytes but never peer-shareable.
    pub preload_bytes: u64,
    /// Windows in which at least one peer was online.
    pub active_windows: u64,
    /// Peer-window count (Σ over windows of online peers) — measures
    /// capacity when divided by total windows in the horizon.
    pub peer_windows: u64,
}

impl ByteLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total peer-to-peer bytes.
    pub fn peer_bytes(&self) -> u64 {
        self.peer_bytes_by_layer.iter().sum()
    }

    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &ByteLedger) {
        self.demand_bytes += other.demand_bytes;
        self.server_bytes += other.server_bytes;
        for (a, b) in self
            .peer_bytes_by_layer
            .iter_mut()
            .zip(other.peer_bytes_by_layer)
        {
            *a += b;
        }
        self.cache_bytes += other.cache_bytes;
        self.preload_bytes += other.preload_bytes;
        self.active_windows += other.active_windows;
        self.peer_windows += other.peer_windows;
    }

    /// The share of demand served by peers (the empirical `G`).
    pub fn offload_share(&self) -> f64 {
        if self.demand_bytes == 0 {
            0.0
        } else {
            self.peer_bytes() as f64 / self.demand_bytes as f64
        }
    }

    /// Checks byte conservation: demand = server + preload + cache + peer.
    pub fn is_conserved(&self) -> bool {
        self.demand_bytes
            == self.server_bytes + self.preload_bytes + self.cache_bytes + self.peer_bytes()
    }

    /// Energy of the hybrid delivery under `params`.
    ///
    /// Preloaded bytes are priced like server bytes (same CDN path, shifted
    /// in time); cached bytes are priced as an exchange-point nano-server:
    /// `PUE·(γ_s + γ_exp) + l·γ_m` per bit.
    pub fn hybrid_energy(&self, params: &EnergyParams) -> Energy {
        let cost = CostModel::new(*params);
        let mut e = cost.server_energy(Traffic::from_bytes(self.server_bytes + self.preload_bytes));
        for layer in Layer::ALL {
            e += cost.peer_energy(
                Traffic::from_bytes(self.peer_bytes_by_layer[layer.index()]),
                layer,
            );
        }
        e += cost
            .edge_cache_cost_per_bit()
            .energy_for(Traffic::from_bytes(self.cache_bytes));
        e
    }

    /// Energy of serving the same demand from CDN servers only (the
    /// baseline of Eq. 1).
    pub fn baseline_energy(&self, params: &EnergyParams) -> Energy {
        CostModel::new(*params).server_energy(Traffic::from_bytes(self.demand_bytes))
    }

    /// Energy savings `S = 1 − hybrid/baseline` (Eq. 1); `None` when no
    /// demand was recorded.
    pub fn savings(&self, params: &EnergyParams) -> Option<f64> {
        self.hybrid_energy(params)
            .savings_vs(self.baseline_energy(params))
    }

    /// The measured swarm capacity: mean online peers per window over
    /// `total_windows` observation windows.
    pub fn measured_capacity(&self, total_windows: u64) -> f64 {
        if total_windows == 0 {
            0.0
        } else {
            self.peer_windows as f64 / total_windows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> ByteLedger {
        ByteLedger {
            demand_bytes: 1_000,
            server_bytes: 400,
            peer_bytes_by_layer: [300, 200, 100],
            cache_bytes: 0,
            preload_bytes: 0,
            active_windows: 10,
            peer_windows: 25,
        }
    }

    #[test]
    fn conservation_and_offload() {
        let l = ledger();
        assert!(l.is_conserved());
        assert!((l.offload_share() - 0.6).abs() < 1e-12);
        let mut broken = l;
        broken.server_bytes = 0;
        assert!(!broken.is_conserved());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ledger();
        a.merge(&ledger());
        assert_eq!(a.demand_bytes, 2_000);
        assert_eq!(a.peer_bytes(), 1_200);
        assert_eq!(a.active_windows, 20);
        assert_eq!(a.peer_windows, 50);
        assert!(a.is_conserved());
    }

    #[test]
    fn all_server_means_zero_savings() {
        let l = ByteLedger {
            demand_bytes: 500,
            server_bytes: 500,
            ..Default::default()
        };
        for p in EnergyParams::published() {
            assert!((l.savings(&p).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn local_peer_delivery_saves_energy() {
        let l = ByteLedger {
            demand_bytes: 1_000,
            server_bytes: 0,
            peer_bytes_by_layer: [1_000, 0, 0],
            ..Default::default()
        };
        for p in EnergyParams::published() {
            let s = l.savings(&p).unwrap();
            assert!(s > 0.3, "{}: {s}", p.name());
        }
        // Valancius: 1 − ψ_p(exp)/ψ_s = 1 − 574/1620.32.
        let v = l.savings(&EnergyParams::valancius()).unwrap();
        assert!((v - (1.0 - 574.0 / 1620.32)).abs() < 1e-9);
    }

    #[test]
    fn savings_depend_on_layer() {
        let mk = |layer: usize| {
            let mut l = ByteLedger {
                demand_bytes: 1_000,
                ..Default::default()
            };
            l.peer_bytes_by_layer[layer] = 1_000;
            l.savings(&EnergyParams::baliga()).unwrap()
        };
        assert!(mk(0) > mk(1));
        assert!(mk(1) > mk(2));
    }

    #[test]
    fn empty_ledger_neutral() {
        let l = ByteLedger::new();
        assert_eq!(l.savings(&EnergyParams::valancius()), None);
        assert_eq!(l.offload_share(), 0.0);
        assert!(l.is_conserved());
        assert_eq!(l.measured_capacity(0), 0.0);
    }

    #[test]
    fn measured_capacity() {
        let l = ledger();
        assert!((l.measured_capacity(100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cache_pricing_depends_on_model() {
        let mk = |server: u64, cache: u64, peer: u64| ByteLedger {
            demand_bytes: 1_000,
            server_bytes: server,
            cache_bytes: cache,
            peer_bytes_by_layer: [peer, 0, 0],
            ..Default::default()
        };
        // Valancius: the CDN network leg is 7 hops (1050 nJ/bit); a cache
        // at the exchange cuts it to 2 hops — big win.
        let p = EnergyParams::valancius();
        let all_server = mk(1_000, 0, 0).savings(&p).unwrap();
        let all_cache = mk(0, 1_000, 0).savings(&p).unwrap();
        let all_peer = mk(0, 0, 1_000).savings(&p).unwrap();
        assert!(all_cache > all_server + 0.3);
        assert!(all_peer > all_cache);
        // Baliga: the CDN leg is already cheap (142.5 ≤ γ_exp = 144.86), so
        // an exchange cache is energy-*neutral at best* — a real insight of
        // pricing the §VI caching extension under both models.
        let p = EnergyParams::baliga();
        let all_server = mk(1_000, 0, 0).savings(&p).unwrap();
        let all_cache = mk(0, 1_000, 0).savings(&p).unwrap();
        assert!((all_cache - all_server).abs() < 0.01);
        assert!(all_cache <= all_server);
    }

    #[test]
    fn preload_priced_like_server() {
        let server = ByteLedger {
            demand_bytes: 1_000,
            server_bytes: 1_000,
            ..Default::default()
        };
        let preload = ByteLedger {
            demand_bytes: 1_000,
            preload_bytes: 1_000,
            ..Default::default()
        };
        for p in EnergyParams::published() {
            assert_eq!(server.hybrid_energy(&p), preload.hybrid_energy(&p));
        }
        assert!(preload.is_conserved());
    }
}
