//! Simulation results: per-swarm, per-day×ISP, per-user and total ledgers.

use serde::{Deserialize, Serialize};

use consume_local_energy::EnergyParams;
use consume_local_swarm::SwarmKey;
use consume_local_topology::IspId;

use crate::ledger::ByteLedger;

/// One day of one sub-swarm: the inputs for a per-day theory prediction
/// (Fig. 4's theory overlay re-evaluates Eq. 12 at each day's capacity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwarmDay {
    /// 0-based day.
    pub day: u32,
    /// Effective M/M/∞ capacity that day (while-active occupancy inverted
    /// through `c/(1 − e^(−c))`; see
    /// [`capacity_from_active_mean`](consume_local_analytics::capacity_from_active_mean)).
    pub capacity: f64,
    /// Demand the swarm served that day.
    pub demand_bytes: u64,
}

/// Result for one sub-swarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmReport {
    /// The sub-swarm identity.
    pub key: SwarmKey,
    /// Byte ledger over the whole horizon.
    pub ledger: ByteLedger,
    /// Sessions that belonged to this swarm.
    pub sessions: u64,
    /// Effective M/M/∞ capacity: the mean occupancy while the swarm was
    /// non-empty, inverted through the stationary relation
    /// `L̄ = c/(1 − e^(−c))`. This is the x-coordinate comparable to the
    /// Eq. 12 theory curves (Fig. 2); for a stationary swarm it equals the
    /// time-averaged capacity.
    pub capacity: f64,
    /// Time-averaged capacity `c = Σ watch-time / horizon` — the Little's
    /// law quantity the paper's Fig. 3 distribution is drawn over.
    pub time_avg_capacity: f64,
    /// The effective `q/β` ratio this swarm was matched with.
    pub upload_ratio: f64,
    /// Per-day capacity/demand points (days with demand only).
    pub daily: Vec<SwarmDay>,
}

impl SwarmReport {
    /// Simulated savings under an energy parameter set (`None` without
    /// demand).
    pub fn savings(&self, params: &EnergyParams) -> Option<f64> {
        self.ledger.savings(params)
    }
}

/// Per-user traffic totals, the carbon-credit inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserTraffic {
    /// Bytes the user streamed (demand).
    pub watched_bytes: u64,
    /// Bytes the user uploaded to peers.
    pub uploaded_bytes: u64,
}

/// One day×ISP aggregation cell (Fig. 4's granularity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyIspCell {
    /// 0-based day.
    pub day: u32,
    /// The ISP, or `None` for swarms that were not ISP-split.
    pub isp: Option<IspId>,
    /// The cell's ledger.
    pub ledger: ByteLedger,
}

/// A non-fatal condition the engine noticed while simulating.
///
/// Warnings never change results — they flag paths that are correct but
/// surprising (slower, or worth a config review). They are part of the
/// report so programmatic callers (sweeps, services) see them without
/// scraping stderr, and they are deterministic: the same sessions produce
/// the same warnings on every path, worker count and batch schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimWarning {
    /// The sessions' joint sort-key widths overflowed the packed 64-bit
    /// key (`consume_local_trace::generator::sort_key_fallback_required`;
    /// at least 2²³ start seconds, 2²⁴ users and 2¹⁷ items always fit,
    /// see `sort_key_bounds`), so sort-based trace pipelines fall back to
    /// the wide record sort — identical output, slower to produce. The
    /// fields carry the measured maxima so the pathological shape is
    /// visible.
    SortKeyFallback {
        /// Largest session start in seconds.
        max_start_secs: u64,
        /// Largest user id.
        max_user: u32,
        /// Largest content id.
        max_content: u32,
    },
}

/// Fault-injection degradation totals: what churn and peer defection cost
/// the run, system-wide. All-zero when `cooperation_rate == 1.0`.
///
/// These bytes are *not* double-counted in the ledgers: a failed transfer
/// is accounted where the bytes actually ended up (CDN or edge cache), and
/// this struct records the volume that was re-routed so degradation curves
/// can be drawn without diffing two runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// Bytes whose matched peer transfer failed because the uploader
    /// defected; receivers re-fetched them from the CDN or edge cache.
    pub failed_transfer_bytes: u64,
    /// The failed bytes split by the network layer the transfer would have
    /// crossed (sums to `failed_transfer_bytes`).
    pub failed_by_layer: [u64; 3],
    /// Windows in which at least one defection occurred — a matched
    /// uploader failing its transfers, a receiver's demand flaking, or
    /// both.
    pub defection_windows: u64,
    /// Peer-receivable demand bytes that flaking receivers withheld from
    /// matching (receiver-side defection); the demand itself was still
    /// served, deferred to the CDN/cache fallback.
    pub failed_demand_bytes: u64,
}

impl Degradation {
    /// Merges another swarm's degradation into this total.
    pub fn merge(&mut self, other: &Degradation) {
        self.failed_transfer_bytes += other.failed_transfer_bytes;
        for (a, b) in self.failed_by_layer.iter_mut().zip(other.failed_by_layer) {
            *a += b;
        }
        self.defection_windows += other.defection_windows;
        self.failed_demand_bytes += other.failed_demand_bytes;
    }

    /// Churn-induced offload loss: the fraction of total demand that would
    /// have been peer-served but fell back to the CDN/cache because of
    /// defections (`None` without demand).
    pub fn offload_loss(&self, demand_bytes: u64) -> Option<f64> {
        if demand_bytes == 0 {
            None
        } else {
            Some(self.failed_transfer_bytes as f64 / demand_bytes as f64)
        }
    }
}

/// The full output of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Horizon in seconds.
    pub horizon_secs: u64,
    /// Window length Δτ in seconds.
    pub window_secs: u64,
    /// Per-swarm results, ordered by key.
    pub swarms: Vec<SwarmReport>,
    /// Per-user traffic, indexed by `UserId.0`.
    pub users: Vec<UserTraffic>,
    /// Day × ISP cells (only cells with any demand are retained).
    pub daily: Vec<DailyIspCell>,
    /// Whole-system ledger.
    pub total: ByteLedger,
    /// Fault-injection cost of the run (all-zero with full cooperation).
    pub degradation: Degradation,
    /// Non-fatal conditions noticed during the run (empty when clean).
    pub warnings: Vec<SimWarning>,
}

impl SimReport {
    /// Total observation windows in the horizon.
    pub fn total_windows(&self) -> u64 {
        self.horizon_secs / self.window_secs.max(1)
    }

    /// System-wide savings under `params` (`None` without demand).
    pub fn total_savings(&self, params: &EnergyParams) -> Option<f64> {
        self.total.savings(params)
    }

    /// Churn-induced offload loss as a fraction of total demand (`None`
    /// without demand): the headline degradation metric of the
    /// fault-injection layer.
    pub fn offload_loss(&self) -> Option<f64> {
        self.degradation.offload_loss(self.total.demand_bytes)
    }

    /// Daily savings series for one ISP (Fig. 4): `(day, savings)` for days
    /// with demand.
    pub fn daily_savings(&self, isp: Option<IspId>, params: &EnergyParams) -> Vec<(u32, f64)> {
        let mut days: Vec<(u32, f64)> = self
            .daily
            .iter()
            .filter(|c| c.isp == isp)
            .filter_map(|c| c.ledger.savings(params).map(|s| (c.day, s)))
            .collect();
        days.sort_by_key(|&(d, _)| d);
        days
    }

    /// Aggregate ledger for one ISP across all days.
    pub fn isp_ledger(&self, isp: Option<IspId>) -> ByteLedger {
        let mut total = ByteLedger::new();
        for c in self.daily.iter().filter(|c| c.isp == isp) {
            total.merge(&c.ledger);
        }
        total
    }

    /// Per-swarm `(effective capacity, simulated savings)` points under
    /// `params` — the dots of Fig. 2 / the samples of Fig. 3's right panel.
    pub fn swarm_points(&self, params: &EnergyParams) -> Vec<(f64, f64)> {
        self.swarms
            .iter()
            .filter_map(|s| s.savings(params).map(|sv| (s.capacity, sv)))
            .collect()
    }

    /// All time-averaged swarm capacities (Fig. 3's left panel samples,
    /// the Little's-law `c = u·r` axis).
    pub fn swarm_capacities(&self) -> Vec<f64> {
        self.swarms.iter().map(|s| s.time_avg_capacity).collect()
    }

    /// Users with any watched traffic, as `(user index, traffic)`.
    pub fn active_users(&self) -> impl Iterator<Item = (u32, &UserTraffic)> {
        self.users
            .iter()
            .enumerate()
            .filter(|(_, t)| t.watched_bytes > 0)
            .map(|(i, t)| (i as u32, t))
    }

    /// Verifies byte conservation on every ledger (swarms, days, total) and
    /// between user watched-bytes and total demand. Used by tests and
    /// examples as a cheap end-to-end integrity check.
    pub fn check_conservation(&self) -> Result<(), String> {
        if !self.total.is_conserved() {
            return Err("total ledger violates demand = server + peer".into());
        }
        for s in &self.swarms {
            if !s.ledger.is_conserved() {
                return Err(format!("swarm {} ledger not conserved", s.key));
            }
        }
        for c in &self.daily {
            if !c.ledger.is_conserved() {
                return Err(format!("daily cell d{}/{:?} not conserved", c.day, c.isp));
            }
        }
        let watched: u64 = self.users.iter().map(|u| u.watched_bytes).sum();
        if watched != self.total.demand_bytes {
            return Err(format!(
                "user watched bytes {watched} != total demand {}",
                self.total.demand_bytes
            ));
        }
        let uploaded: u64 = self.users.iter().map(|u| u.uploaded_bytes).sum();
        if uploaded != self.total.peer_bytes() {
            return Err(format!(
                "user uploaded bytes {uploaded} != total peer bytes {}",
                self.total.peer_bytes()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_trace::ContentId;

    fn cell(day: u32, isp: Option<IspId>, demand: u64, peer: u64) -> DailyIspCell {
        DailyIspCell {
            day,
            isp,
            ledger: ByteLedger {
                demand_bytes: demand,
                server_bytes: demand - peer,
                peer_bytes_by_layer: [peer, 0, 0],
                cache_bytes: 0,
                preload_bytes: 0,
                active_windows: 1,
                peer_windows: 1,
            },
        }
    }

    fn report() -> SimReport {
        let key = SwarmKey {
            content: ContentId(0),
            isp: Some(IspId(0)),
            bitrate: None,
        };
        let ledger = ByteLedger {
            demand_bytes: 300,
            server_bytes: 200,
            peer_bytes_by_layer: [100, 0, 0],
            cache_bytes: 0,
            preload_bytes: 0,
            active_windows: 3,
            peer_windows: 6,
        };
        SimReport {
            horizon_secs: 600,
            window_secs: 10,
            swarms: vec![SwarmReport {
                key,
                ledger,
                sessions: 2,
                capacity: 0.15,
                time_avg_capacity: 0.1,
                upload_ratio: 1.0,
                daily: vec![
                    SwarmDay {
                        day: 0,
                        capacity: 0.2,
                        demand_bytes: 200,
                    },
                    SwarmDay {
                        day: 1,
                        capacity: 0.1,
                        demand_bytes: 100,
                    },
                ],
            }],
            users: vec![
                UserTraffic {
                    watched_bytes: 200,
                    uploaded_bytes: 60,
                },
                UserTraffic {
                    watched_bytes: 100,
                    uploaded_bytes: 40,
                },
                UserTraffic::default(),
            ],
            daily: vec![
                cell(0, Some(IspId(0)), 200, 80),
                cell(1, Some(IspId(0)), 100, 20),
            ],
            total: ledger,
            degradation: Degradation::default(),
            warnings: Vec::new(),
        }
    }

    #[test]
    fn conservation_check_passes_and_fails() {
        let r = report();
        assert!(r.check_conservation().is_ok());
        let mut broken = r.clone();
        broken.users[0].watched_bytes += 1;
        assert!(broken.check_conservation().unwrap_err().contains("watched"));
        let mut broken = r.clone();
        broken.total.server_bytes += 5;
        assert!(broken.check_conservation().is_err());
        let mut broken = r;
        broken.users[1].uploaded_bytes = 0;
        assert!(broken
            .check_conservation()
            .unwrap_err()
            .contains("uploaded"));
    }

    #[test]
    fn degradation_merges_and_reports_offload_loss() {
        let mut total = Degradation::default();
        assert_eq!(total.offload_loss(300), Some(0.0));
        total.merge(&Degradation {
            failed_transfer_bytes: 30,
            failed_by_layer: [30, 0, 0],
            defection_windows: 2,
            failed_demand_bytes: 7,
        });
        total.merge(&Degradation {
            failed_transfer_bytes: 15,
            failed_by_layer: [5, 10, 0],
            defection_windows: 1,
            failed_demand_bytes: 11,
        });
        assert_eq!(total.failed_transfer_bytes, 45);
        assert_eq!(total.failed_by_layer, [35, 10, 0]);
        assert_eq!(total.defection_windows, 3);
        assert_eq!(total.failed_demand_bytes, 18);
        assert_eq!(total.offload_loss(300), Some(0.15));
        assert_eq!(total.offload_loss(0), None);

        let mut r = report();
        assert_eq!(r.offload_loss(), Some(0.0));
        r.degradation = total;
        assert_eq!(r.offload_loss(), Some(0.15));
    }

    #[test]
    fn daily_series_sorted_and_filtered() {
        let r = report();
        let series = r.daily_savings(Some(IspId(0)), &EnergyParams::valancius());
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 0);
        assert_eq!(series[1].0, 1);
        assert!(series[0].1 > series[1].1, "day 0 offloaded more");
        assert!(r
            .daily_savings(Some(IspId(3)), &EnergyParams::valancius())
            .is_empty());
    }

    #[test]
    fn isp_ledger_merges_days() {
        let r = report();
        let l = r.isp_ledger(Some(IspId(0)));
        assert_eq!(l.demand_bytes, 300);
        assert_eq!(l.peer_bytes(), 100);
    }

    #[test]
    fn active_users_skips_idle() {
        let r = report();
        let active: Vec<u32> = r.active_users().map(|(i, _)| i).collect();
        assert_eq!(active, vec![0, 1]);
    }

    #[test]
    fn windows_and_points() {
        let r = report();
        assert_eq!(r.total_windows(), 60);
        let pts = r.swarm_points(&EnergyParams::baliga());
        assert_eq!(pts.len(), 1);
        assert_eq!(
            pts[0].0, 0.15,
            "theory-comparison points use effective capacity"
        );
        assert_eq!(
            r.swarm_capacities(),
            vec![0.1],
            "distributions use time-averaged capacity"
        );
        assert!(r.total_savings(&EnergyParams::baliga()).unwrap() > 0.0);
    }
}
