//! The [`SessionSource`] abstraction: where sessions come from.
//!
//! The engine itself only ever consumes **watermarked, start-ordered
//! session batches** — it does not care whether they were materialised up
//! front, generated a day at a time, or received over a live channel. This
//! module names that contract as a trait so [`Simulator::simulate`] is the
//! single entry point behind which every feeding mode meets:
//!
//! * [`&SessionStore`](consume_local_trace::SessionStore) — the whole
//!   horizon as one batch (the sweep runner's share-one-store shape);
//! * [`&Trace`](consume_local_trace::Trace) — columnarised on the fly,
//!   then one batch;
//! * [`&SegmentedStore`](consume_local_trace::SegmentedStore) — one batch
//!   per day segment, watermarked at each day's end;
//! * [`&mut SegmentStream`](consume_local_trace::SegmentStream) — ditto,
//!   but each day is generated, fed and dropped (bounded peak memory);
//! * [`OnlineSource`](crate::online::OnlineSource) — batches cut by the
//!   sender's watermarks as events arrive over the bounded channel.
//!
//! Whatever the source, the report is byte-identical for the same sessions
//! (pinned by `tests/segmented.rs` and `tests/online.rs`): the watermark
//! contract below is exactly what the resumable per-swarm machines need to
//! make batch boundaries invisible.
//!
//! # The watermark contract
//!
//! [`SessionSource::for_each_batch`] hands the sink pairs
//! `(batch, watermark)` such that
//!
//! 1. batches arrive in watermark order (watermarks are monotone);
//! 2. every session in a batch starts in
//!    `[previous watermark, watermark)` (first batch: from 0);
//! 3. after a batch with watermark `w`, **no** later batch contains a
//!    session starting before `w`.
//!
//! Within a batch, sessions are in canonical trace order (start, user,
//! content) — [`SessionStore`] construction enforces that. Watermarks need
//! not align to days or windows, and `u64::MAX` (or anything at or past
//! the horizon) marks a final batch.

use consume_local_trace::{SegmentStream, SegmentedStore, SessionStore, Trace};

#[allow(unused_imports)] // doc links
use crate::engine::Simulator;

/// A producer of watermarked, day-ordered session batches — anything
/// [`Simulator::simulate`] can consume. See the [module docs](self) for
/// the watermark contract implementations must uphold.
///
/// `for_each_batch` takes `self` by value: a source is consumed by exactly
/// one run. The borrowed implementations (`&SessionStore`, `&Trace`,
/// `&SegmentedStore`, `&mut SegmentStream`) make the common cases free to
/// re-create.
pub trait SessionSource {
    /// The replay horizon in seconds (windows stop here).
    fn horizon_secs(&self) -> u64;

    /// Number of users the sessions' user ids index into.
    fn population_len(&self) -> usize;

    /// Feeds every batch to `sink` as `(batch, watermark)`, in watermark
    /// order, honouring the contract in the [module docs](self).
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64));
}

impl SessionSource for &SessionStore {
    fn horizon_secs(&self) -> u64 {
        SessionStore::horizon_secs(self)
    }

    fn population_len(&self) -> usize {
        SessionStore::population_len(self)
    }

    /// The whole store as one final batch.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        sink(self, u64::MAX);
    }
}

impl SessionSource for &Trace {
    fn horizon_secs(&self) -> u64 {
        self.horizon_seconds()
    }

    fn population_len(&self) -> usize {
        self.population().len()
    }

    /// Columnarises the trace, then feeds it as one final batch.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        sink(&SessionStore::from_trace(self), u64::MAX);
    }
}

impl SessionSource for &SegmentedStore {
    fn horizon_secs(&self) -> u64 {
        SegmentedStore::horizon_secs(self)
    }

    fn population_len(&self) -> usize {
        SegmentedStore::population_len(self)
    }

    /// One batch per day segment, watermarked at each day's end (segment
    /// `d` holds exactly the sessions starting in day `d`).
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        for (day, segment) in self.segments().iter().enumerate() {
            sink(segment, (day as u64 + 1) * SegmentedStore::SEGMENT_SECS);
        }
    }
}

impl SessionSource for &mut SegmentStream<'_> {
    fn horizon_secs(&self) -> u64 {
        self.config().horizon_seconds()
    }

    fn population_len(&self) -> usize {
        self.population().len()
    }

    /// Generates, feeds and drops one day segment at a time, so peak
    /// memory holds a single day of the trace.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        loop {
            let day = u64::from(self.next_day());
            let Some(segment) = self.next_segment() else {
                return;
            };
            sink(&segment, (day + 1) * SegmentedStore::SEGMENT_SECS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_trace::{TraceConfig, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003).unwrap(), 5)
            .generate()
            .unwrap()
    }

    /// Drains a source into `(batch length, watermark)` pairs plus the
    /// trait-reported metadata, through the trait interface only.
    fn drain(source: impl SessionSource) -> (u64, usize, Vec<(usize, u64)>) {
        let horizon = source.horizon_secs();
        let population = source.population_len();
        let mut out = Vec::new();
        source.for_each_batch(&mut |batch, watermark| out.push((batch.len(), watermark)));
        (horizon, population, out)
    }

    #[test]
    fn monolithic_sources_emit_one_final_batch() {
        let trace = trace();
        let store = SessionStore::from_trace(&trace);
        let expect = (
            trace.horizon_seconds(),
            trace.population().len(),
            vec![(store.len(), u64::MAX)],
        );
        assert_eq!(drain(&store), expect);
        assert_eq!(drain(&trace), expect);
    }

    #[test]
    fn segmented_sources_watermark_each_day_end() {
        let trace = trace();
        let seg = SegmentedStore::from_trace(&trace);
        let (horizon, population, got) = drain(&seg);
        assert_eq!(horizon, trace.horizon_seconds());
        assert_eq!(population, trace.population().len());
        assert_eq!(got.len(), seg.num_segments());
        for (d, &(len, watermark)) in got.iter().enumerate() {
            assert_eq!(len, seg.segment(d).len());
            assert_eq!(watermark, (d as u64 + 1) * SegmentedStore::SEGMENT_SECS);
        }
        assert_eq!(got.iter().map(|&(n, _)| n).sum::<usize>(), seg.len());

        let generator = TraceGenerator::new(trace.config().clone(), 5);
        let mut stream = generator.segments().unwrap();
        assert_eq!(drain(&mut stream), (horizon, population, got));
    }
}
