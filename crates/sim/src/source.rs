//! The [`SessionSource`] abstraction: where sessions come from.
//!
//! The engine itself only ever consumes **watermarked, start-ordered
//! session batches** — it does not care whether they were materialised up
//! front, generated a day at a time, or received over a live channel. This
//! module names that contract as a trait so [`Simulator::simulate`] is the
//! single entry point behind which every feeding mode meets:
//!
//! * [`&SessionStore`](consume_local_trace::SessionStore) — the whole
//!   horizon as one batch (the sweep runner's share-one-store shape);
//! * [`&Trace`](consume_local_trace::Trace) — columnarised on the fly,
//!   then one batch;
//! * [`&SegmentedStore`](consume_local_trace::SegmentedStore) — one batch
//!   per day segment, watermarked at each day's end;
//! * [`&mut SegmentStream`](consume_local_trace::SegmentStream) — ditto,
//!   but each day is generated, fed and dropped (bounded peak memory);
//! * [`&mut MetroStream`](consume_local_trace::metro::MetroStream) — the
//!   multi-city form: one merged metro day per batch (union stream), or a
//!   single city's days for the swarm-sharded mode ([`crate::shard`]);
//! * [`OnlineSource`](crate::online::OnlineSource) — batches cut by the
//!   sender's watermarks as events arrive over the bounded channel.
//!
//! Whatever the source, the report is byte-identical for the same sessions
//! (pinned by `tests/segmented.rs` and `tests/online.rs`): the watermark
//! contract below is exactly what the resumable per-swarm machines need to
//! make batch boundaries invisible.
//!
//! # The watermark contract
//!
//! [`SessionSource::for_each_batch`] hands the sink pairs
//! `(batch, watermark)` such that
//!
//! 1. batches arrive in watermark order (watermarks are monotone);
//! 2. every session in a batch starts in
//!    `[previous watermark, watermark)` (first batch: from 0);
//! 3. after a batch with watermark `w`, **no** later batch contains a
//!    session starting before `w`.
//!
//! Within a batch, sessions are in canonical trace order (start, user,
//! content) — [`SessionStore`] construction enforces that. Watermarks need
//! not align to days or windows, and `u64::MAX` (or anything at or past
//! the horizon) marks a final batch.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

use consume_local_trace::metro::MetroStream;
use consume_local_trace::{SegmentStream, SegmentedStore, SessionStore, Trace};

use crate::engine::Simulator;
use crate::report::SimReport;

/// A producer of watermarked, day-ordered session batches — anything
/// [`Simulator::simulate`] can consume. See the [module docs](self) for
/// the watermark contract implementations must uphold.
///
/// `for_each_batch` takes `self` by value: a source is consumed by exactly
/// one run. The borrowed implementations (`&SessionStore`, `&Trace`,
/// `&SegmentedStore`, `&mut SegmentStream`) make the common cases free to
/// re-create.
pub trait SessionSource {
    /// The replay horizon in seconds (windows stop here).
    fn horizon_secs(&self) -> u64;

    /// Number of users the sessions' user ids index into.
    fn population_len(&self) -> usize;

    /// Feeds every batch to `sink` as `(batch, watermark)`, in watermark
    /// order, honouring the contract in the [module docs](self).
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64));
}

impl SessionSource for &SessionStore {
    fn horizon_secs(&self) -> u64 {
        SessionStore::horizon_secs(self)
    }

    fn population_len(&self) -> usize {
        SessionStore::population_len(self)
    }

    /// The whole store as one final batch.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        sink(self, u64::MAX);
    }
}

impl SessionSource for &Trace {
    fn horizon_secs(&self) -> u64 {
        self.horizon_seconds()
    }

    fn population_len(&self) -> usize {
        self.population().len()
    }

    /// Columnarises the trace, then feeds it as one final batch.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        sink(&SessionStore::from_trace(self), u64::MAX);
    }
}

impl SessionSource for &SegmentedStore {
    fn horizon_secs(&self) -> u64 {
        SegmentedStore::horizon_secs(self)
    }

    fn population_len(&self) -> usize {
        SegmentedStore::population_len(self)
    }

    /// One batch per day segment, watermarked at each day's end (segment
    /// `d` holds exactly the sessions starting in day `d`).
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        for (day, segment) in self.segments().iter().enumerate() {
            sink(segment, (day as u64 + 1) * SegmentedStore::SEGMENT_SECS);
        }
    }
}

impl SessionSource for &mut SegmentStream<'_> {
    fn horizon_secs(&self) -> u64 {
        self.config().horizon_seconds()
    }

    fn population_len(&self) -> usize {
        self.population().len()
    }

    /// Generates, feeds and drops one day segment at a time, so peak
    /// memory holds a single day of the trace.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        loop {
            let day = u64::from(self.next_day());
            let Some(segment) = self.next_segment() else {
                return;
            };
            sink(&segment, (day + 1) * SegmentedStore::SEGMENT_SECS);
        }
    }
}

impl SessionSource for &mut MetroStream<'_> {
    fn horizon_secs(&self) -> u64 {
        MetroStream::horizon_secs(self)
    }

    fn population_len(&self) -> usize {
        MetroStream::population_len(self)
    }

    /// One merged multi-city batch per day, watermarked at the day's end —
    /// the union (or per-city shard) form of the metro presets. Peak memory
    /// holds one day of each participating city.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        loop {
            let day = u64::from(self.next_day());
            let Some(segment) = self.next_segment() else {
                return;
            };
            sink(&segment, (day + 1) * SegmentedStore::SEGMENT_SECS);
        }
    }
}

/// A typed failure from a [`FallibleSessionSource`].
///
/// Transient failures are the retryable kind (a flaky upstream, a full
/// buffer, a timed-out poll); [`RetryPolicy`] decides how many attempts a
/// batch gets and how long the driver backs off between them — in
/// **virtual ticks**, never wall clock, so retry behaviour is as
/// deterministic as the rest of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceError {
    /// A retryable failure; the same batch may be requested again.
    Transient {
        /// Implementation-defined code identifying the failure.
        code: u32,
    },
    /// The retry policy gave up on a transient failure.
    Exhausted {
        /// The code of the final transient failure.
        code: u32,
        /// Attempts made (equals the policy's `max_attempts`).
        attempts: u32,
        /// Total virtual ticks spent backing off before giving up.
        waited_ticks: u64,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient { code } => {
                write!(f, "transient source failure (code {code})")
            }
            SourceError::Exhausted {
                code,
                attempts,
                waited_ticks,
            } => write!(
                f,
                "source failed after {attempts} attempts and {waited_ticks} backoff ticks \
                 (last code {code})"
            ),
        }
    }
}

impl std::error::Error for SourceError {}

/// How a driver retries [`SourceError::Transient`] failures: bounded
/// attempts with exponential backoff measured in **virtual ticks** (the
/// driver's own time unit — the replay tick for the online driver, a plain
/// counter elsewhere). No wall clock is ever consulted, so a retried run
/// is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per batch (the first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, doubled per further failure
    /// (saturating).
    pub base_backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ticks: 1,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and `base_backoff_ticks`
    /// initial backoff.
    pub fn new(max_attempts: u32, base_backoff_ticks: u64) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_backoff_ticks,
        }
    }

    /// The backoff after the `attempt`-th failure (1-based):
    /// `base · 2^(attempt−1)`, saturating.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(63);
        self.base_backoff_ticks.saturating_mul(1u64 << doublings)
    }
}

/// What a retried drive actually did — surfaced alongside the report by
/// [`Simulator::try_simulate`] so callers can alert on flakiness that
/// stayed under the give-up threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient failures that were retried (and eventually succeeded).
    pub retries: u64,
    /// Total virtual ticks spent backing off.
    pub waited_ticks: u64,
}

/// A [`SessionSource`] that can fail transiently: batches are *pulled* one
/// at a time so the driver can retry exactly the batch that failed.
///
/// The success contract is the watermark contract of [`SessionSource`];
/// `Ok(None)` ends the stream. A failed `next_batch` call must be safe to
/// retry — the source must not lose or duplicate the batch it failed to
/// deliver.
pub trait FallibleSessionSource {
    /// The replay horizon in seconds.
    fn horizon_secs(&self) -> u64;

    /// Number of users the sessions' user ids index into.
    fn population_len(&self) -> usize;

    /// Pulls the next `(batch, watermark)` pair, `Ok(None)` at end of
    /// stream.
    ///
    /// # Errors
    ///
    /// [`SourceError::Transient`] for retryable failures.
    fn next_batch(&mut self) -> Result<Option<(SessionStore, u64)>, SourceError>;
}

/// A deterministic [`FallibleSessionSource`] for tests and harnesses:
/// prebuilt watermarked batches, plus a script of planned transient
/// failures per batch ordinal. Each planned failure surfaces once, then
/// the batch is delivered — so a retrying driver drains the source exactly
/// when its policy outlasts the longest failure run.
#[derive(Debug)]
pub struct ScriptedSource {
    horizon_secs: u64,
    population_len: usize,
    batches: VecDeque<(SessionStore, u64)>,
    next_ordinal: usize,
    failures: HashMap<usize, (u32, u32)>,
}

impl ScriptedSource {
    /// A source delivering `batches` in order under the given envelope.
    pub fn new(
        horizon_secs: u64,
        population_len: usize,
        batches: Vec<(SessionStore, u64)>,
    ) -> Self {
        Self {
            horizon_secs,
            population_len,
            batches: batches.into(),
            next_ordinal: 0,
            failures: HashMap::new(),
        }
    }

    /// Plans `times` transient failures (with `code`) before batch
    /// `ordinal` (0-based, end-of-stream included as the ordinal one past
    /// the last batch) is delivered.
    pub fn fail_before(mut self, ordinal: usize, times: u32, code: u32) -> Self {
        self.failures.insert(ordinal, (times, code));
        self
    }
}

impl FallibleSessionSource for ScriptedSource {
    fn horizon_secs(&self) -> u64 {
        self.horizon_secs
    }

    fn population_len(&self) -> usize {
        self.population_len
    }

    fn next_batch(&mut self) -> Result<Option<(SessionStore, u64)>, SourceError> {
        if let Some((times, code)) = self.failures.get_mut(&self.next_ordinal) {
            if *times > 0 {
                *times -= 1;
                return Err(SourceError::Transient { code: *code });
            }
        }
        self.next_ordinal += 1;
        Ok(self.batches.pop_front())
    }
}

impl Simulator {
    /// Runs the simulation over a [`FallibleSessionSource`], retrying
    /// transient failures per `retry`. On success the report is
    /// byte-identical to [`Simulator::simulate`] over the same batches —
    /// retries change only the [`RetryStats`] — because a retried batch is
    /// re-pulled, never skipped or reordered.
    ///
    /// # Errors
    ///
    /// [`SourceError::Exhausted`] when one batch fails `max_attempts`
    /// times in a row; the partial run is discarded.
    pub fn try_simulate(
        &self,
        mut source: impl FallibleSessionSource,
        retry: &RetryPolicy,
    ) -> Result<(SimReport, RetryStats), SourceError> {
        let mut run = self.begin(source.horizon_secs(), source.population_len());
        let mut stats = RetryStats::default();
        loop {
            match pull_with_retry(&mut source, retry, &mut stats)? {
                Some((batch, watermark)) => run.push_batch(&batch, watermark),
                None => return Ok((run.finish(), stats)),
            }
        }
    }
}

/// One batch pull under a retry policy: bounded attempts, exponential
/// virtual-tick backoff accounted into `stats`.
fn pull_with_retry(
    source: &mut impl FallibleSessionSource,
    retry: &RetryPolicy,
    stats: &mut RetryStats,
) -> Result<Option<(SessionStore, u64)>, SourceError> {
    let mut failures = 0u32;
    let mut waited = 0u64;
    loop {
        match source.next_batch() {
            Ok(next) => return Ok(next),
            Err(SourceError::Transient { code }) => {
                failures += 1;
                if failures >= retry.max_attempts {
                    return Err(SourceError::Exhausted {
                        code,
                        attempts: failures,
                        waited_ticks: waited,
                    });
                }
                let backoff = retry.backoff_ticks(failures);
                waited += backoff;
                stats.retries += 1;
                stats.waited_ticks += backoff;
            }
            Err(e @ SourceError::Exhausted { .. }) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_trace::{TraceConfig, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003).unwrap(), 5)
            .generate()
            .unwrap()
    }

    /// Drains a source into `(batch length, watermark)` pairs plus the
    /// trait-reported metadata, through the trait interface only.
    fn drain(source: impl SessionSource) -> (u64, usize, Vec<(usize, u64)>) {
        let horizon = source.horizon_secs();
        let population = source.population_len();
        let mut out = Vec::new();
        source.for_each_batch(&mut |batch, watermark| out.push((batch.len(), watermark)));
        (horizon, population, out)
    }

    #[test]
    fn monolithic_sources_emit_one_final_batch() {
        let trace = trace();
        let store = SessionStore::from_trace(&trace);
        let expect = (
            trace.horizon_seconds(),
            trace.population().len(),
            vec![(store.len(), u64::MAX)],
        );
        assert_eq!(drain(&store), expect);
        assert_eq!(drain(&trace), expect);
    }

    #[test]
    fn segmented_sources_watermark_each_day_end() {
        let trace = trace();
        let seg = SegmentedStore::from_trace(&trace);
        let (horizon, population, got) = drain(&seg);
        assert_eq!(horizon, trace.horizon_seconds());
        assert_eq!(population, trace.population().len());
        assert_eq!(got.len(), seg.num_segments());
        for (d, &(len, watermark)) in got.iter().enumerate() {
            assert_eq!(len, seg.segment(d).len());
            assert_eq!(watermark, (d as u64 + 1) * SegmentedStore::SEGMENT_SECS);
        }
        assert_eq!(got.iter().map(|&(n, _)| n).sum::<usize>(), seg.len());

        let generator = TraceGenerator::new(trace.config().clone(), 5);
        let mut stream = generator.segments().unwrap();
        assert_eq!(drain(&mut stream), (horizon, population, got));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::new(10, 3);
        assert_eq!(p.backoff_ticks(1), 3);
        assert_eq!(p.backoff_ticks(2), 6);
        assert_eq!(p.backoff_ticks(5), 48);
        assert_eq!(p.backoff_ticks(200), u64::MAX); // saturated
        assert_eq!(RetryPolicy::new(0, 1).max_attempts, 1);
    }

    fn day_batches(trace: &Trace) -> Vec<(SessionStore, u64)> {
        SegmentedStore::from_trace(trace)
            .segments()
            .iter()
            .enumerate()
            .map(|(d, s)| (s.clone(), (d as u64 + 1) * SegmentedStore::SEGMENT_SECS))
            .collect()
    }

    #[test]
    fn retried_run_is_byte_identical_to_clean_run() {
        let trace = trace();
        let sim = Simulator::new(crate::SimConfig {
            seed: 7,
            ..Default::default()
        });
        let clean = sim.simulate(&trace);
        // Flake twice before batch 1 and once before end-of-stream; a
        // 3-attempt policy outlasts both.
        let source = ScriptedSource::new(
            trace.horizon_seconds(),
            trace.population().len(),
            day_batches(&trace),
        )
        .fail_before(1, 2, 42)
        .fail_before(5, 1, 7);
        let (report, stats) = sim
            .try_simulate(source, &RetryPolicy::new(3, 10))
            .expect("policy outlasts the scripted failures");
        assert_eq!(report, clean, "retries must not perturb the report");
        assert_eq!(stats.retries, 3);
        // Batch 1: backoffs 10 + 20; end-of-stream: 10.
        assert_eq!(stats.waited_ticks, 40);
    }

    #[test]
    fn retry_gives_up_with_typed_exhaustion() {
        let trace = trace();
        let sim = Simulator::new(crate::SimConfig::default());
        let source = ScriptedSource::new(
            trace.horizon_seconds(),
            trace.population().len(),
            day_batches(&trace),
        )
        .fail_before(0, 99, 13);
        let err = sim
            .try_simulate(source, &RetryPolicy::new(2, 5))
            .unwrap_err();
        assert_eq!(
            err,
            SourceError::Exhausted {
                code: 13,
                attempts: 2,
                waited_ticks: 5,
            }
        );
        assert!(err.to_string().contains("after 2 attempts"));
    }
}
