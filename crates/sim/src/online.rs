//! Online serving mode: a live event-stream front-end for the engine.
//!
//! The batch paths hand [`Simulator::simulate`]
//! a source whose sessions already exist. This module covers the other
//! deployment shape — a long-running service where sessions *arrive*: a
//! producer thread pushes events into a bounded [`channel`] as they happen,
//! and the consumer side is an [`OnlineSource`] the engine drains like any
//! other [`SessionSource`]. Three properties make that safe:
//!
//! * **Backpressure, never loss.** The channel is bounded
//!   (`std::sync::mpsc::sync_channel`); a producer that outruns the
//!   simulation blocks in [`OnlineSender::send_session`] until the consumer
//!   catches up. Nothing is dropped or reordered.
//! * **Watermarks cut the batches.** The producer calls
//!   [`OnlineSender::advance_watermark`] to promise "no later event starts
//!   before `w`". Each watermark seals the sessions buffered so far into a
//!   canonical [`SessionStore`] batch, which is what lets the engine retire
//!   finished swarms and close days *while the stream is still open*
//!   ([`Simulator::simulate_days`]).
//!   Late events (start before the current watermark) are rejected at the
//!   sender with [`OnlineError::LateSession`] rather than silently skewing
//!   results.
//! * **Byte-identical results.** Because the online path feeds the same
//!   resumable per-swarm machines through the same [`SessionSource`]
//!   contract, a replayed trace produces a [`SimReport`]
//!   equal to the batch run of the same sessions — at any worker count,
//!   any channel capacity and any replay speed (pinned by
//!   `tests/online.rs`).
//!
//! [`replay`] drives the whole arrangement from an existing trace: a
//! producer thread feeds a [`SessionStore`]'s records at
//! [`ReplaySpeed::Times`] real time (or [`ReplaySpeed::MaxThroughput`] for
//! as-fast-as-possible ingest, the events/sec benchmark mode), watermarking
//! once per simulated tick, while the calling thread simulates.
//!
//! # Example
//!
//! ```
//! use consume_local_sim::{online, SimConfig, Simulator};
//! use consume_local_trace::{SessionStore, TraceConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003)?, 7)
//!     .generate()?;
//! let store = SessionStore::from_trace(&trace);
//! let sim = Simulator::new(SimConfig::default());
//!
//! // Max-throughput replay: identical report, plus stream statistics.
//! let (report, stats) = online::replay(&sim, &store, &online::ReplayConfig::default());
//! assert_eq!(report, sim.simulate(&store));
//! assert_eq!(stats.events, store.len() as u64);
//! assert_eq!(stats.days_closed, u64::from(trace.config().days));
//! # Ok(())
//! # }
//! ```

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use consume_local_trace::{SessionRecord, SessionStore};

use crate::engine::{DayClose, SegmentedRun, Simulator};
use crate::par::parallel_join;
use crate::report::SimReport;
use crate::source::{RetryPolicy, RetryStats, SessionSource};

pub mod faults;

/// What flows through the bounded channel: events, and the promises that
/// seal them into batches.
#[derive(Debug)]
enum Envelope {
    /// One arriving session.
    Session(SessionRecord),
    /// "No later event starts before this second."
    Watermark(u64),
}

/// Errors the sending side of an online channel can hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineError {
    /// The session starts before the current watermark, violating the
    /// promise [`OnlineSender::advance_watermark`] already made. The event
    /// was **not** enqueued; admitting it would silently skew results, so
    /// the producer must decide (drop it, or crash-and-replay from a
    /// watermark-aligned checkpoint).
    LateSession {
        /// The rejected session's start, in seconds.
        start_secs: u64,
        /// The watermark it arrived behind.
        watermark: u64,
    },
    /// The consuming side hung up (the simulation finished or died); no
    /// further events can be delivered.
    Disconnected,
    /// The channel is at capacity ([`OnlineSender::try_send`] only): the
    /// event was **not** enqueued. The producer should back off and retry —
    /// or switch to the blocking [`OnlineSender::send_session`].
    Full,
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LateSession {
                start_secs,
                watermark,
            } => write!(
                f,
                "late session: starts at {start_secs}s, behind watermark {watermark}s"
            ),
            Self::Disconnected => write!(f, "online channel disconnected"),
            Self::Full => write!(f, "online channel full: event not enqueued"),
        }
    }
}

impl std::error::Error for OnlineError {}

/// Creates a bounded online ingest channel: the producer half feeds events
/// and watermarks, the consumer half is a [`SessionSource`] for
/// [`Simulator::simulate`](crate::Simulator::simulate) /
/// [`simulate_days`](crate::Simulator::simulate_days).
///
/// `capacity` bounds the number of in-flight envelopes (events plus
/// watermarks): a producer that outruns the simulation blocks — that is the
/// backpressure. `capacity = 0` is a rendezvous channel (every send waits
/// for the consumer).
///
/// `horizon_secs` and `population_len` describe the stream the way a
/// [`SessionStore`] would: windows stop at the horizon, and user ids index
/// into `population_len` users.
///
/// # Example
///
/// ```
/// use consume_local_sim::{online, par::parallel_join, SimConfig, Simulator};
/// use consume_local_trace::{SessionStore, TraceConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003)?, 7)
///     .generate()?;
/// let store = SessionStore::from_trace(&trace);
/// let sim = Simulator::new(SimConfig::default());
///
/// let (mut tx, source) = online::channel(store.horizon_secs(), store.population_len(), 64);
/// let (sent, report) = parallel_join(
///     move || {
///         for i in 0..store.len() {
///             tx.send_session(store.record(i)).unwrap();
///         }
///         store.len() // sender drops here: end of stream
///     },
///     || sim.simulate(source),
/// );
/// assert_eq!(report.total_windows() > 0, sent > 0);
/// # Ok(())
/// # }
/// ```
pub fn channel(
    horizon_secs: u64,
    population_len: usize,
    capacity: usize,
) -> (OnlineSender, OnlineSource) {
    let (tx, rx) = sync_channel(capacity);
    (
        OnlineSender { tx, watermark: 0 },
        OnlineSource {
            rx,
            horizon_secs,
            population_len,
        },
    )
}

/// The producer half of an online ingest [`channel`].
///
/// Dropping the sender ends the stream: the consumer flushes any buffered
/// events as a final batch and the simulation completes.
#[derive(Debug)]
pub struct OnlineSender {
    tx: SyncSender<Envelope>,
    watermark: u64,
}

impl OnlineSender {
    /// Enqueues one arriving session, blocking while the channel is full
    /// (backpressure).
    ///
    /// Events need not be sorted — batches are put into canonical order
    /// when a watermark seals them — but each must start at or after the
    /// current watermark, or it is rejected as
    /// [`OnlineError::LateSession`].
    pub fn send_session(&mut self, session: SessionRecord) -> Result<(), OnlineError> {
        let start_secs = session.start.as_secs();
        if start_secs < self.watermark {
            return Err(OnlineError::LateSession {
                start_secs,
                watermark: self.watermark,
            });
        }
        self.tx
            .send(Envelope::Session(session))
            .map_err(|_| OnlineError::Disconnected)
    }

    /// Enqueues one arriving session without blocking.
    ///
    /// Like [`send_session`](OnlineSender::send_session) but returns
    /// [`OnlineError::Full`] instead of waiting when the channel is at
    /// capacity — the event is **not** enqueued and the caller may retry,
    /// drop, or spill it. Late sessions are still rejected as
    /// [`OnlineError::LateSession`] before the channel is touched.
    pub fn try_send(&mut self, session: SessionRecord) -> Result<(), OnlineError> {
        let start_secs = session.start.as_secs();
        if start_secs < self.watermark {
            return Err(OnlineError::LateSession {
                start_secs,
                watermark: self.watermark,
            });
        }
        self.tx
            .try_send(Envelope::Session(session))
            .map_err(|e| match e {
                std::sync::mpsc::TrySendError::Full(_) => OnlineError::Full,
                std::sync::mpsc::TrySendError::Disconnected(_) => OnlineError::Disconnected,
            })
    }

    /// Enqueues one arriving session, retrying bounded backpressure per
    /// `retry`: each [`OnlineError::Full`] costs one attempt, yields the
    /// CPU and accounts the policy's exponential backoff in **virtual
    /// ticks** (never wall clock — retry accounting stays deterministic
    /// even though the draining itself is scheduler-paced). Returns what
    /// the send cost; gives up with [`OnlineError::Full`] after
    /// `max_attempts` full channel probes so a stalled consumer surfaces
    /// as a typed error instead of a silent hang.
    ///
    /// Late sessions are rejected as [`OnlineError::LateSession`]
    /// immediately — retrying cannot make a late event timely.
    ///
    /// # Errors
    ///
    /// [`OnlineError::Full`] after exhausting attempts,
    /// [`OnlineError::LateSession`] / [`OnlineError::Disconnected`]
    /// immediately.
    pub fn send_with_retry(
        &mut self,
        session: SessionRecord,
        retry: &RetryPolicy,
    ) -> Result<RetryStats, OnlineError> {
        let mut stats = RetryStats::default();
        let mut failures = 0u32;
        loop {
            match self.try_send(session) {
                Ok(()) => return Ok(stats),
                Err(OnlineError::Full) => {
                    failures += 1;
                    if failures >= retry.max_attempts {
                        return Err(OnlineError::Full);
                    }
                    stats.retries += 1;
                    stats.waited_ticks += retry.backoff_ticks(failures);
                    std::thread::yield_now();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Promises that no later event starts before `watermark` seconds,
    /// sealing everything buffered before it into a batch the engine may
    /// finish (swarm retirement, day closes). Blocks while the channel is
    /// full.
    ///
    /// Watermarks are monotone: a value at or below the current one is a
    /// no-op, not an error, so periodic wall-clock-driven senders need not
    /// special-case idle stretches. A watermark at or past the horizon
    /// seals the whole run.
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<(), OnlineError> {
        if watermark <= self.watermark {
            return Ok(());
        }
        self.watermark = watermark;
        self.tx
            .send(Envelope::Watermark(watermark))
            .map_err(|_| OnlineError::Disconnected)
    }

    /// The current watermark (0 until the first
    /// [`advance_watermark`](OnlineSender::advance_watermark)).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

/// The consumer half of an online ingest [`channel`]: a [`SessionSource`]
/// whose batches are cut by the producer's watermarks.
#[derive(Debug)]
pub struct OnlineSource {
    rx: Receiver<Envelope>,
    horizon_secs: u64,
    population_len: usize,
}

impl SessionSource for OnlineSource {
    fn horizon_secs(&self) -> u64 {
        self.horizon_secs
    }

    fn population_len(&self) -> usize {
        self.population_len
    }

    /// Blocks on the channel; every watermark emits one batch (possibly
    /// empty — the day-close cadence must not depend on traffic), and
    /// disconnection flushes any remaining buffered events as a final
    /// batch.
    fn for_each_batch(self, sink: &mut dyn FnMut(&SessionStore, u64)) {
        let mut pending: Vec<SessionRecord> = Vec::new();
        let mut batch: Vec<SessionRecord> = Vec::new();
        while let Ok(envelope) = self.rx.recv() {
            match envelope {
                Envelope::Session(s) => pending.push(s),
                Envelope::Watermark(w) => {
                    // The sender checked events against *its* watermark, so
                    // everything starting before `w` is sealed by it; later
                    // starts stay buffered for a later batch.
                    batch.clear();
                    pending.retain(|s| {
                        let sealed = s.start.as_secs() < w;
                        if sealed {
                            batch.push(*s);
                        }
                        !sealed
                    });
                    let store =
                        SessionStore::from_records(&batch, self.horizon_secs, self.population_len);
                    sink(&store, w);
                }
            }
        }
        if !pending.is_empty() {
            let store =
                SessionStore::from_records(&pending, self.horizon_secs, self.population_len);
            sink(&store, u64::MAX);
        }
    }
}

/// How fast [`replay`] feeds a trace relative to simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplaySpeed {
    /// `Times(n)`: one simulated tick every `tick_secs / n` wall seconds —
    /// `Times(1.0)` is real time. Must be finite and positive.
    Times(f64),
    /// No pacing at all: the producer runs flat out and only backpressure
    /// throttles it. This is the sustained events/sec benchmark mode.
    MaxThroughput,
}

/// Configuration for [`replay`] / [`resume_replay`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Replay speed (default: [`ReplaySpeed::MaxThroughput`]).
    pub speed: ReplaySpeed,
    /// Simulated seconds per watermark tick (default: 3600, one hour).
    /// Smaller ticks mean fresher day-closes and smaller batches.
    pub tick_secs: u64,
    /// Channel capacity in envelopes (default: 1024).
    pub capacity: usize,
    /// Resume point in simulated seconds (default: 0, a fresh run). Only
    /// [`resume_replay`] honours it: events starting before it are already
    /// inside the restored run's checkpoint and are not re-fed; set it to
    /// the snapshot's [`SegmentedRun::watermark`]. [`replay`] requires 0.
    pub resume_from: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            speed: ReplaySpeed::MaxThroughput,
            tick_secs: 3_600,
            capacity: 1_024,
            resume_from: 0,
        }
    }
}

/// What [`replay`] observed on the stream (all deterministic — wall time is
/// deliberately absent; benches measure it outside).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Sessions fed through the channel.
    pub events: u64,
    /// Watermarks emitted (one per simulated tick through the horizon).
    pub watermarks: u64,
    /// Days the engine closed while the stream was live or finishing.
    pub days_closed: u64,
}

/// Replays a store through an online [`channel`] at `config.speed`,
/// simulating as events arrive. Returns the report — byte-identical to
/// `sim.simulate(&store)` — and the stream statistics.
///
/// The producer runs on a scoped thread; the calling thread simulates.
/// Sleep-based pacing and day-close observation hooks are injectable via
/// [`replay_with`] (this wrapper sleeps for [`ReplaySpeed::Times`] and
/// ignores day closes).
///
/// # Panics
///
/// Panics if `config.tick_secs` is 0, or if a [`ReplaySpeed::Times`] factor
/// is not finite and positive.
pub fn replay(
    sim: &Simulator,
    store: &SessionStore,
    config: &ReplayConfig,
) -> (SimReport, ReplayStats) {
    replay_with(
        sim,
        store,
        config,
        |secs| std::thread::sleep(std::time::Duration::from_secs_f64(secs)),
        |_| {},
    )
}

/// [`replay`] with an injectable pacer and day-close observer.
///
/// `pace(wall_secs)` runs on the producer thread once per simulated tick
/// under [`ReplaySpeed::Times`] (never under
/// [`ReplaySpeed::MaxThroughput`]); tests substitute a recorder for the
/// default sleep. `on_day_close` runs on the consumer (calling) thread as
/// each day seals, exactly as
/// [`Simulator::simulate_days`] reports
/// them.
pub fn replay_with(
    sim: &Simulator,
    store: &SessionStore,
    config: &ReplayConfig,
    pace: impl FnMut(f64) + Send,
    mut on_day_close: impl FnMut(DayClose),
) -> (SimReport, ReplayStats) {
    assert_eq!(
        config.resume_from, 0,
        "replay starts fresh runs; use resume_replay for a restored run"
    );
    let (sender, source) = channel(
        store.horizon_secs(),
        store.population_len(),
        config.capacity,
    );
    let producer = feed_producer(store, config, sender, pace);
    let (mut stats, (report, days_closed)) = parallel_join(producer, || {
        let mut days_closed = 0u64;
        let report = sim.simulate_days(source, |close| {
            days_closed += 1;
            on_day_close(close);
        });
        (report, days_closed)
    });
    stats.days_closed = days_closed;
    (report, stats)
}

/// Resumes a crashed online run: drives a [`SegmentedRun`] restored by
/// [`Simulator::resume`](crate::Simulator::resume) over the **tail** of the
/// event stream — only events starting at or after `config.resume_from`
/// (set it to the restored run's [`SegmentedRun::watermark`]) are re-fed,
/// exactly what a journalling upstream replays after a consumer crash. The
/// final report is byte-identical to an uninterrupted [`replay`] of the
/// whole store (pinned by `tests/recovery.rs`), and [`ReplayStats`] counts
/// only the re-fed tail.
///
/// # Panics
///
/// Panics if `config.tick_secs` is 0, a [`ReplaySpeed::Times`] factor is
/// not finite and positive, or `config.resume_from` does not equal the
/// restored run's watermark.
pub fn resume_replay(
    run: SegmentedRun,
    store: &SessionStore,
    config: &ReplayConfig,
) -> (SimReport, ReplayStats) {
    resume_replay_with(run, store, config, |_| {})
}

/// [`resume_replay`] with a day-close observer: days the restored run
/// already closed before the crash are **not** re-emitted — the observer
/// sees exactly the closes the uninterrupted run would still have had
/// ahead of it.
pub fn resume_replay_with(
    run: SegmentedRun,
    store: &SessionStore,
    config: &ReplayConfig,
    mut on_day_close: impl FnMut(DayClose),
) -> (SimReport, ReplayStats) {
    assert_eq!(
        config.resume_from,
        run.watermark(),
        "resume_from must equal the restored run's watermark: behind it the \
         source would violate the watermark contract, ahead of it events \
         would be silently lost"
    );
    let (sender, source) = channel(
        store.horizon_secs(),
        store.population_len(),
        config.capacity,
    );
    let producer = feed_producer(store, config, sender, |secs| {
        std::thread::sleep(std::time::Duration::from_secs_f64(secs))
    });
    let (mut stats, (report, days_closed)) = parallel_join(producer, || {
        let mut days_closed = 0u64;
        let report = run.simulate_remaining_days(source, |close| {
            days_closed += 1;
            on_day_close(close);
        });
        (report, days_closed)
    });
    stats.days_closed = days_closed;
    (report, stats)
}

/// The shared producer loop of [`replay_with`] / [`resume_replay_with`]:
/// one watermark per tick, emitted just before the first event that
/// crosses it (paced), plus trailing ticks to cover the horizon so every
/// day closes through the same cadence. Events starting before
/// `config.resume_from` are skipped and ticks start past it. If the
/// consumer hangs up early the partial stats are still meaningful.
fn feed_producer<'a>(
    store: &'a SessionStore,
    config: &ReplayConfig,
    mut sender: OnlineSender,
    mut pace: impl FnMut(f64) + Send + 'a,
) -> impl FnOnce() -> ReplayStats + Send + 'a {
    assert!(config.tick_secs > 0, "tick_secs must be positive");
    let wall_secs_per_tick = match config.speed {
        ReplaySpeed::Times(n) => {
            assert!(
                n.is_finite() && n > 0.0,
                "replay speed factor must be finite and positive, got {n}"
            );
            Some(config.tick_secs as f64 / n)
        }
        ReplaySpeed::MaxThroughput => None,
    };
    let horizon = store.horizon_secs();
    let tick = config.tick_secs;
    let resume_from = config.resume_from;
    move || {
        let mut stats = ReplayStats::default();
        // The first tick strictly past the resume point (`resume_from` is
        // itself a watermark the restored run already holds).
        let mut next_tick = (resume_from / tick + 1) * tick;
        for i in 0..store.len() {
            let record = store.record(i);
            if record.start.as_secs() < resume_from {
                continue;
            }
            while record.start.as_secs() >= next_tick {
                if let Some(wall) = wall_secs_per_tick {
                    pace(wall);
                }
                if sender.advance_watermark(next_tick).is_err() {
                    return stats;
                }
                stats.watermarks += 1;
                next_tick += tick;
            }
            if sender.send_session(record).is_err() {
                return stats;
            }
            stats.events += 1;
        }
        while next_tick < horizon + tick {
            if let Some(wall) = wall_secs_per_tick {
                pace(wall);
            }
            if sender.advance_watermark(next_tick).is_err() {
                return stats;
            }
            stats.watermarks += 1;
            next_tick += tick;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use consume_local_trace::{TraceConfig, TraceGenerator};

    fn store() -> SessionStore {
        let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003).unwrap(), 7)
            .generate()
            .unwrap();
        SessionStore::from_trace(&trace)
    }

    #[test]
    fn watermarks_cut_batches_and_disconnect_flushes() {
        let store = store();
        let records = store.to_records();
        let day = consume_local_trace::SegmentedStore::SEGMENT_SECS;
        let (mut tx, source) = channel(store.horizon_secs(), store.population_len(), 8);
        let (_, batches) = parallel_join(
            move || {
                for r in &records {
                    tx.send_session(*r).unwrap();
                }
                // Seal the first two days, leave the rest to disconnect.
                tx.advance_watermark(day).unwrap();
                tx.advance_watermark(2 * day).unwrap();
            },
            || {
                let mut out: Vec<(usize, u64)> = Vec::new();
                let mut total: Vec<SessionRecord> = Vec::new();
                source.for_each_batch(&mut |batch, watermark| {
                    out.push((batch.len(), watermark));
                    total.extend(batch.to_records());
                });
                (out, total)
            },
        );
        let (shape, fed) = batches;
        let seg = consume_local_trace::SegmentedStore::from_records(
            &store.to_records(),
            store.horizon_secs(),
            store.population_len(),
        );
        assert_eq!(shape.len(), 3);
        assert_eq!(shape[0], (seg.segment(0).len(), day));
        assert_eq!(shape[1], (seg.segment(1).len(), 2 * day));
        assert_eq!(
            shape[2],
            (
                store.len() - seg.segment(0).len() - seg.segment(1).len(),
                u64::MAX
            )
        );
        // Nothing dropped, nothing reordered across batch seams.
        assert_eq!(fed, store.to_records());
    }

    #[test]
    fn empty_watermark_batches_are_emitted() {
        let (mut tx, source) = channel(86_400, 4, 4);
        let (_, shape) = parallel_join(
            move || {
                tx.advance_watermark(3_600).unwrap();
                tx.advance_watermark(3_600).unwrap(); // no-op: not monotone progress
                tx.advance_watermark(7_200).unwrap();
            },
            || {
                let mut out = Vec::new();
                source.for_each_batch(&mut |batch, watermark| out.push((batch.len(), watermark)));
                out
            },
        );
        assert_eq!(shape, vec![(0, 3_600), (0, 7_200)]);
    }

    #[test]
    fn late_sessions_are_rejected_at_the_sender() {
        let store = store();
        let (mut tx, source) = channel(store.horizon_secs(), store.population_len(), 4);
        tx.advance_watermark(1_000).unwrap();
        let mut late = store.record(0);
        late.start = consume_local_trace::SimTime(999);
        assert_eq!(
            tx.send_session(late),
            Err(OnlineError::LateSession {
                start_secs: 999,
                watermark: 1_000
            })
        );
        assert_eq!(tx.watermark(), 1_000);
        drop(source);
        assert_eq!(tx.advance_watermark(2_000), Err(OnlineError::Disconnected));
        let mut ok = store.record(0);
        ok.start = consume_local_trace::SimTime(5_000);
        assert_eq!(tx.send_session(ok), Err(OnlineError::Disconnected));
        let msg = OnlineError::LateSession {
            start_secs: 999,
            watermark: 1_000,
        }
        .to_string();
        assert!(msg.contains("999") && msg.contains("1000"), "{msg}");
        assert!(OnlineError::Disconnected
            .to_string()
            .contains("disconnected"));
    }

    #[test]
    fn try_send_reports_backpressure_without_blocking() {
        let store = store();
        let (mut tx, source) = channel(store.horizon_secs(), store.population_len(), 1);
        // Capacity 1: the first event fits, the second is backpressure.
        assert_eq!(tx.try_send(store.record(0)), Ok(()));
        assert_eq!(tx.try_send(store.record(1)), Err(OnlineError::Full));
        assert_eq!(tx.try_send(store.record(1)), Err(OnlineError::Full));
        // Once the consumer drains, try_send succeeds again.
        let (sent, fed) = parallel_join(
            move || {
                loop {
                    match tx.try_send(store.record(1)) {
                        Ok(()) => break,
                        Err(OnlineError::Full) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
                2usize
            },
            || {
                let mut n = 0usize;
                source.for_each_batch(&mut |batch, _| n += batch.len());
                n
            },
        );
        assert_eq!((sent, fed), (2, 2));
        assert!(OnlineError::Full.to_string().contains("full"));
    }

    #[test]
    fn try_send_rejects_late_sessions_first() {
        let store = store();
        let (mut tx, source) = channel(store.horizon_secs(), store.population_len(), 1);
        tx.advance_watermark(1_000).unwrap();
        let mut late = store.record(0);
        late.start = consume_local_trace::SimTime(999);
        assert_eq!(
            tx.try_send(late),
            Err(OnlineError::LateSession {
                start_secs: 999,
                watermark: 1_000
            })
        );
        drop(source);
        let mut ok = store.record(0);
        ok.start = consume_local_trace::SimTime(5_000);
        assert_eq!(tx.try_send(ok), Err(OnlineError::Disconnected));
    }

    #[test]
    fn replay_matches_batch_report_and_counts_the_stream() {
        let store = store();
        let sim = Simulator::new(SimConfig::default());
        let expect = sim.simulate(&store);
        let config = ReplayConfig::default();
        let (report, stats) = replay(&sim, &store, &config);
        assert_eq!(report, expect);
        assert_eq!(stats.events, store.len() as u64);
        assert_eq!(
            stats.watermarks,
            store.horizon_secs().div_ceil(config.tick_secs)
        );
        assert_eq!(
            stats.days_closed,
            store
                .horizon_secs()
                .div_ceil(consume_local_trace::SegmentedStore::SEGMENT_SECS)
        );
    }

    #[test]
    fn paced_replay_sleeps_tick_over_factor() {
        let store = store();
        let sim = Simulator::new(SimConfig::default());
        let mut paces: Vec<f64> = Vec::new();
        let config = ReplayConfig {
            speed: ReplaySpeed::Times(1e9), // enormous speed-up: no real waiting
            tick_secs: 21_600,
            capacity: 16,
            ..ReplayConfig::default()
        };
        let mut closes = Vec::new();
        let (report, stats) = replay_with(
            &sim,
            &store,
            &config,
            |secs| paces.push(secs),
            |close| closes.push(close.day),
        );
        assert_eq!(report, sim.simulate(&store));
        assert_eq!(paces.len() as u64, stats.watermarks);
        assert!(paces.iter().all(|&s| s == 21_600.0 / 1e9));
        let days: Vec<u32> = (0..closes.len() as u32).collect();
        assert_eq!(closes, days, "days close in order, exactly once each");
    }

    #[test]
    fn send_with_retry_gives_up_on_a_stalled_consumer() {
        let store = store();
        let (mut tx, source) = channel(store.horizon_secs(), store.population_len(), 1);
        // Nothing drains `source`: the first event fills the channel and
        // every later probe sees Full.
        assert_eq!(
            tx.send_with_retry(store.record(0), &RetryPolicy::new(4, 2)),
            Ok(RetryStats::default())
        );
        assert_eq!(
            tx.send_with_retry(store.record(1), &RetryPolicy::new(4, 2)),
            Err(OnlineError::Full)
        );
        drop(source);
        // A hung-up consumer is a hard error, not a retryable one.
        assert_eq!(
            tx.send_with_retry(store.record(1), &RetryPolicy::new(4, 2)),
            Err(OnlineError::Disconnected)
        );
    }

    #[test]
    fn send_with_retry_rejects_late_sessions_immediately() {
        let store = store();
        let (mut tx, _source) = channel(store.horizon_secs(), store.population_len(), 4);
        tx.advance_watermark(1_000).unwrap();
        let mut late = store.record(0);
        late.start = consume_local_trace::SimTime(999);
        assert_eq!(
            tx.send_with_retry(late, &RetryPolicy::new(5, 1)),
            Err(OnlineError::LateSession {
                start_secs: 999,
                watermark: 1_000
            })
        );
    }

    #[test]
    fn send_with_retry_succeeds_once_the_consumer_drains() {
        let store = store();
        let (mut tx, source) = channel(store.horizon_secs(), store.population_len(), 1);
        assert!(tx
            .send_with_retry(store.record(0), &RetryPolicy::default())
            .is_ok());
        // An effectively unbounded policy outlasts any consumer pause; the
        // retry accounting reports how rough the ride was.
        let (sent, fed) = parallel_join(
            move || {
                let stats = tx
                    .send_with_retry(store.record(1), &RetryPolicy::new(u32::MAX, 1))
                    .expect("drains eventually");
                assert!(stats.waited_ticks >= stats.retries);
                2usize
            },
            || {
                let mut n = 0usize;
                source.for_each_batch(&mut |batch, _| n += batch.len());
                n
            },
        );
        assert_eq!((sent, fed), (2, 2));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn replay_rejects_nonpositive_speed() {
        let store = store();
        let sim = Simulator::new(SimConfig::default());
        let config = ReplayConfig {
            speed: ReplaySpeed::Times(0.0),
            ..ReplayConfig::default()
        };
        let _ = replay(&sim, &store, &config);
    }
}
